#include "ppref/infer/conjunction.h"

#include <algorithm>

#include "ppref/common/check.h"
#include "ppref/infer/top_prob.h"

namespace ppref::infer {
namespace {

LabelId MaxLabel(const ItemLabeling& labeling) {
  LabelId max_label = 0;
  for (LabelId label : labeling.LabelUniverse()) {
    max_label = std::max(max_label, label);
  }
  return max_label;
}

}  // namespace

PatternInstance Conjoin(const PatternInstance& a, const PatternInstance& b) {
  PPREF_CHECK_MSG(a.labeling.item_count() == b.labeling.item_count(),
                  "conjunction requires a common item universe");
  // Shift b's labels above everything a uses (labels or pattern nodes).
  LabelId shift = MaxLabel(a.labeling) + 1;
  for (unsigned node = 0; node < a.pattern.NodeCount(); ++node) {
    shift = std::max(shift, a.pattern.NodeLabel(node) + 1);
  }

  PatternInstance result;
  result.labeling = ItemLabeling(a.labeling.item_count());
  for (rim::ItemId item = 0; item < a.labeling.item_count(); ++item) {
    for (LabelId label : a.labeling.LabelsOf(item)) {
      result.labeling.AddLabel(item, label);
    }
    for (LabelId label : b.labeling.LabelsOf(item)) {
      result.labeling.AddLabel(item, label + shift);
    }
  }
  for (unsigned node = 0; node < a.pattern.NodeCount(); ++node) {
    result.pattern.AddNode(a.pattern.NodeLabel(node));
  }
  const unsigned offset = a.pattern.NodeCount();
  for (unsigned node = 0; node < b.pattern.NodeCount(); ++node) {
    result.pattern.AddNode(b.pattern.NodeLabel(node) + shift);
  }
  for (unsigned from = 0; from < a.pattern.NodeCount(); ++from) {
    for (unsigned to : a.pattern.Children(from)) {
      result.pattern.AddEdge(from, to);
    }
  }
  for (unsigned from = 0; from < b.pattern.NodeCount(); ++from) {
    for (unsigned to : b.pattern.Children(from)) {
      result.pattern.AddEdge(offset + from, offset + to);
    }
  }
  return result;
}

double ConjunctionProb(const rim::RimModel& model, const PatternInstance& a,
                       const PatternInstance& b,
                       const PatternProbOptions& options) {
  const PatternInstance joint = Conjoin(a, b);
  return PatternProb(LabeledRimModel(model, joint.labeling), joint.pattern,
                     options);
}

double ConditionalPatternProb(const rim::RimModel& model,
                              const PatternInstance& target,
                              const PatternInstance& given,
                              const PatternProbOptions& options) {
  const double given_prob = PatternProb(
      LabeledRimModel(model, given.labeling), given.pattern, options);
  if (given_prob <= 0.0) return 0.0;
  // Both PatternProb calls poll options.control internally; this check
  // covers the seam between them so a stop never starts the second DP.
  if (options.control != nullptr) options.control->Check();
  return ConjunctionProb(model, target, given, options) / given_prob;
}

}  // namespace ppref::infer
