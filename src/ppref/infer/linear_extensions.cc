#include "ppref/infer/linear_extensions.h"

#include <unordered_map>

#include "ppref/common/check.h"
#include "ppref/common/combinatorics.h"

namespace ppref::infer {

PartialOrder::PartialOrder(unsigned item_count)
    : item_count_(item_count),
      precedes_(item_count, std::vector<bool>(item_count, false)) {
  PPREF_CHECK_MSG(item_count <= 20, "PartialOrder supports at most 20 items");
}

void PartialOrder::Add(rim::ItemId before, rim::ItemId after) {
  PPREF_CHECK(before < item_count_ && after < item_count_);
  PPREF_CHECK_MSG(before != after, "irreflexivity violated on item " << before);
  precedes_[before][after] = true;
}

void PartialOrder::Close() {
  for (unsigned k = 0; k < item_count_; ++k) {
    for (unsigned i = 0; i < item_count_; ++i) {
      if (!precedes_[i][k]) continue;
      for (unsigned j = 0; j < item_count_; ++j) {
        if (precedes_[k][j]) precedes_[i][j] = true;
      }
    }
  }
  for (unsigned i = 0; i < item_count_; ++i) {
    PPREF_CHECK_MSG(!precedes_[i][i], "cycle through item " << i);
  }
}

bool PartialOrder::Precedes(rim::ItemId before, rim::ItemId after) const {
  PPREF_CHECK(before < item_count_ && after < item_count_);
  return precedes_[before][after];
}

std::vector<std::pair<rim::ItemId, rim::ItemId>> PartialOrder::Pairs() const {
  std::vector<std::pair<rim::ItemId, rim::ItemId>> pairs;
  for (rim::ItemId a = 0; a < item_count_; ++a) {
    for (rim::ItemId b = 0; b < item_count_; ++b) {
      if (precedes_[a][b]) pairs.emplace_back(a, b);
    }
  }
  return pairs;
}

bool PartialOrder::IsLinearExtension(const rim::Ranking& ranking) const {
  PPREF_CHECK(ranking.size() == item_count_);
  for (rim::ItemId a = 0; a < item_count_; ++a) {
    for (rim::ItemId b = 0; b < item_count_; ++b) {
      if (precedes_[a][b] && !ranking.Prefers(a, b)) return false;
    }
  }
  return true;
}

std::uint64_t CountLinearExtensions(const PartialOrder& order) {
  const unsigned n = order.size();
  // Bitmask of predecessors per item (everything that must precede it).
  std::vector<std::uint32_t> predecessors(n, 0);
  for (rim::ItemId a = 0; a < n; ++a) {
    for (rim::ItemId b = 0; b < n; ++b) {
      if (order.Precedes(a, b)) predecessors[b] |= (1u << a);
    }
  }
  // f(S) = number of ways to order the items of S so that each item appears
  // after all its predecessors; defined for downsets S (predecessor-closed).
  std::unordered_map<std::uint32_t, std::uint64_t> memo;
  memo.emplace(0u, 1u);
  // Iterate masks in increasing order; any downset's sub-downsets have
  // smaller masks, so a single pass suffices — but visiting all 2^n masks
  // and filtering to downsets keeps the code simple and exact.
  const std::uint32_t full = (n == 32) ? 0xFFFFFFFFu : ((1u << n) - 1);
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    // Check S = mask is a downset: every member's predecessors are inside.
    bool downset = true;
    for (unsigned i = 0; i < n && downset; ++i) {
      if ((mask & (1u << i)) && (predecessors[i] & ~mask)) downset = false;
    }
    if (!downset) continue;
    std::uint64_t count = 0;
    for (unsigned i = 0; i < n; ++i) {
      if (!(mask & (1u << i))) continue;
      // Item i can come last in S iff i is maximal in S: no member of S
      // requires i as a predecessor. Then S \ {i} is again a downset, whose
      // count is already memoized (smaller mask).
      bool i_is_maximal = true;
      for (unsigned j = 0; j < n; ++j) {
        if (j != i && (mask & (1u << j)) && (predecessors[j] & (1u << i))) {
          i_is_maximal = false;
          break;
        }
      }
      if (!i_is_maximal) continue;
      const std::uint32_t rest = mask & ~(1u << i);
      const auto it = memo.find(rest);
      PPREF_CHECK_MSG(it != memo.end(), "sub-downset missing from memo");
      count += it->second;
    }
    memo.emplace(mask, count);
  }
  return memo.at(full);
}

std::uint64_t CountLinearExtensionsBruteForce(const PartialOrder& order) {
  std::uint64_t count = 0;
  ForEachPermutation(order.size(), [&](const std::vector<unsigned>& perm) {
    rim::Ranking ranking(std::vector<rim::ItemId>(perm.begin(), perm.end()));
    if (order.IsLinearExtension(ranking)) ++count;
  });
  return count;
}

}  // namespace ppref::infer
