/// \file top_prob.h
/// \brief The TopProb dynamic program (Fig. 5) and the Pr(g | σ, Π, λ)
/// driver — §5 of the paper.
///
/// `TopMatchingProb` computes p_γ: the probability that a given
/// γ : nodes(g) -> items is *the* top matching of g in a random ranking of
/// the model (Eq. (3)). `PatternProb` computes Pr(g | σ, Π, λ) (Eq. (1)) by
/// summing p_γ over all candidate γ (Eq. (2)); distinct γ induce disjoint
/// ranking sets by the uniqueness of the top matching (Lemma 5.3), so the
/// sum is exact.
///
/// Indexing: the paper is 1-based; this code is 0-based throughout. The DP
/// state δ maps each pattern node to the current prefix position of its
/// image item; insertion of reference item t chooses a slot j in
/// [0, prefix size], and the paper's adjusted insertion probability
/// Υ(i, j, δ) = Π(i, j − #{unscanned placeholders before j}) becomes
/// `Prob(t, j - pending_before_j)`.
///
/// Complexity (Thm 5.9): O(m^{k+2}) per γ with k = |nodes(g)|, and there
/// are O(m^k) candidate γ, i.e. Pr(g) costs O(m^{2k+2}) in the worst case —
/// polynomial in m for a fixed pattern (Thm 5.10).

#ifndef PPREF_INFER_TOP_PROB_H_
#define PPREF_INFER_TOP_PROB_H_

#include <optional>
#include <utility>
#include <vector>

#include "ppref/common/deadline.h"
#include "ppref/infer/labeled_rim.h"
#include "ppref/infer/matching.h"
#include "ppref/infer/pattern.h"

namespace ppref::infer {

namespace internal {
class DpPlan;
}  // namespace internal

/// p_γ (Eq. (3)): probability that `gamma` is the top matching of `pattern`
/// in a random ranking of `model`. Returns 0 when `gamma` violates labels,
/// maps edge-related nodes to the same item, or the pattern is cyclic.
double TopMatchingProb(const LabeledRimModel& model, const LabelPattern& pattern,
                       const Matching& gamma);

/// Enumerates all candidate top matchings: label-consistent γ with
/// γ(u) != γ(v) whenever v is reachable from u. Every actual top matching of
/// every ranking is in this set.
std::vector<Matching> CandidateTopMatchings(const LabeledRimModel& model,
                                            const LabelPattern& pattern);

/// Tuning knobs for PatternProb; the defaults match the paper's algorithm.
struct PatternProbOptions {
  /// Skip candidate γ mapping two path-connected nodes to one item (their
  /// p_γ is provably 0). Disabled only by the ablation benchmark.
  bool prune_candidates = true;
  /// Matching-level parallelism: fan the candidate γ out over worker
  /// threads, each with its own DP scratch against one shared plan.
  /// Contract: `threads == 0` means "auto" — use every hardware thread;
  /// any other value is clamped to `std::thread::hardware_concurrency()`
  /// (see ppref::ClampThreads). An effective count <= 1 runs serially.
  /// Per-γ results are reduced in enumeration order, so every thread count
  /// yields a bit-identical result to the serial path.
  unsigned threads = 1;
  /// Optional stop conditions (deadline / cancellation), borrowed. When
  /// non-null, the DP polls it periodically and aborts by throwing
  /// DeadlineExceededError / CancelledError — partial results are
  /// discarded, never returned. nullptr (the default) runs to completion
  /// with zero polling cost.
  const RunControl* control = nullptr;
};

/// Pr(g | σ, Π, λ) (Eq. (1)): probability that a random ranking matches the
/// pattern. Returns 1 for the empty pattern and 0 for cyclic patterns or
/// patterns mentioning absent labels.
double PatternProb(const LabeledRimModel& model, const LabelPattern& pattern);

/// PatternProb with explicit options.
double PatternProb(const LabeledRimModel& model, const LabelPattern& pattern,
                   const PatternProbOptions& options);

/// The maximum-probability explanation of the pattern: the candidate γ with
/// the largest p_γ, together with that probability — "which concrete items
/// most likely realize the pattern". Returns nullopt when no candidate has
/// positive probability (absent labels, cyclic pattern); the empty pattern
/// yields the empty matching with probability 1. Ties resolve to the first
/// candidate in enumeration order regardless of `options.threads`.
std::optional<std::pair<Matching, double>> MostProbableTopMatching(
    const LabeledRimModel& model, const LabelPattern& pattern);

/// MostProbableTopMatching with explicit options.
std::optional<std::pair<Matching, double>> MostProbableTopMatching(
    const LabeledRimModel& model, const LabelPattern& pattern,
    const PatternProbOptions& options);

/// PatternProb executed against a caller-supplied compiled plan — the
/// plan-injection entry point the serve layer's plan cache uses to amortize
/// compilation *across* calls (PR-2's compile-once / run-many split, lifted
/// from one call to a session of calls). The plan's model and pattern are
/// the inputs; a plan with an empty tracked set is fastest, but any tracked
/// set gives the same probability (the extra α/β state is summed out).
double PatternProbWithPlan(const internal::DpPlan& plan,
                           const PatternProbOptions& options = {});

/// MostProbableTopMatching executed against a caller-supplied compiled plan.
/// Same tie-breaking and determinism guarantees as the plain overloads.
std::optional<std::pair<Matching, double>> MostProbableTopMatchingWithPlan(
    const internal::DpPlan& plan, const PatternProbOptions& options = {});

}  // namespace ppref::infer

#endif  // PPREF_INFER_TOP_PROB_H_
