/// \file marginals.h
/// \brief Common marginal queries over RIM models, built on dedicated
/// polynomial-time dynamic programs.
///
/// These are the "existing inference" primitives the paper contrasts with
/// (queries over individual items rather than labels): pairwise preference
/// marginals Pr(a ≻ b) and single-item position distributions. They double
/// as fast paths for singleton-label patterns, and tests cross-check them
/// against the general TopProb machinery.

#ifndef PPREF_INFER_MARGINALS_H_
#define PPREF_INFER_MARGINALS_H_

#include <vector>

#include "ppref/rim/rim_model.h"

namespace ppref::infer {

/// Pr(item a is preferred to item b) under the model. O(m²) dynamic
/// program: tracks the position of the earlier-inserted item until the later
/// one arrives; insertions after both cannot change their relative order.
double PairwiseMarginal(const rim::RimModel& model, rim::ItemId a,
                        rim::ItemId b);

/// The full matrix M[a][b] = Pr(a ≻ b); diagonal is 0.
std::vector<std::vector<double>> PairwiseMarginalMatrix(
    const rim::RimModel& model);

/// PairwiseMarginalMatrix with the rows computed on `threads` workers. Each
/// cell is an independent DP, so any thread count yields a bit-identical
/// matrix.
std::vector<std::vector<double>> PairwiseMarginalMatrix(
    const rim::RimModel& model, unsigned threads);

/// Distribution of the final position of `item`: result[p] = Pr(position p).
/// O(m²) dynamic program over the item's position as later items insert.
std::vector<double> PositionDistribution(const rim::RimModel& model,
                                         rim::ItemId item);

/// Pr(`item` lands in the top k positions) — cumulative of
/// PositionDistribution.
double TopKProb(const rim::RimModel& model, rim::ItemId item, unsigned k);

}  // namespace ppref::infer

#endif  // PPREF_INFER_MARGINALS_H_
