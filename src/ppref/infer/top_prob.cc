#include "ppref/infer/top_prob.h"

#include "ppref/infer/internal/dp_engine.h"

namespace ppref::infer {

double TopMatchingProb(const LabeledRimModel& model, const LabelPattern& pattern,
                       const Matching& gamma) {
  return internal::RunTopProbDp(model, pattern, gamma, /*tracked=*/{},
                                /*condition=*/nullptr);
}

std::vector<Matching> CandidateTopMatchings(const LabeledRimModel& model,
                                            const LabelPattern& pattern) {
  return internal::EnumerateCandidates(model, pattern);
}

double PatternProb(const LabeledRimModel& model, const LabelPattern& pattern) {
  return PatternProb(model, pattern, PatternProbOptions{});
}

double PatternProb(const LabeledRimModel& model, const LabelPattern& pattern,
                   const PatternProbOptions& options) {
  if (pattern.NodeCount() == 0) return 1.0;  // The empty pattern always matches.
  double total = 0.0;
  for (const Matching& gamma : internal::EnumerateCandidates(
           model, pattern, options.prune_candidates)) {
    total += TopMatchingProb(model, pattern, gamma);
  }
  return total;
}

std::optional<std::pair<Matching, double>> MostProbableTopMatching(
    const LabeledRimModel& model, const LabelPattern& pattern) {
  if (pattern.NodeCount() == 0) return std::make_pair(Matching{}, 1.0);
  std::optional<std::pair<Matching, double>> best;
  for (const Matching& gamma : internal::EnumerateCandidates(model, pattern)) {
    const double prob = TopMatchingProb(model, pattern, gamma);
    if (prob > 0.0 && (!best.has_value() || prob > best->second)) {
      best = std::make_pair(gamma, prob);
    }
  }
  return best;
}

}  // namespace ppref::infer
