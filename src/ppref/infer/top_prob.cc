#include "ppref/infer/top_prob.h"

#include <algorithm>

#include "ppref/common/parallel.h"
#include "ppref/infer/internal/dp_engine.h"
#include "ppref/infer/internal/dp_plan.h"

namespace ppref::infer {
namespace {

/// Runs `plan` once per candidate γ on `threads` workers and returns the
/// per-γ probabilities in enumeration order. Reducing that vector in order
/// makes every consumer bit-identical to its serial path.
std::vector<double> CandidateProbs(const internal::DpPlan& plan,
                                   const std::vector<Matching>& candidates,
                                   unsigned threads,
                                   const RunControl* control) {
  std::vector<double> probs(candidates.size(), 0.0);
  std::vector<internal::DpPlan::Scratch> scratches(
      std::max<std::size_t>(1, std::min<std::size_t>(threads,
                                                     candidates.size())));
  ParallelForWorkers(candidates.size(), threads, control,
                     [&](unsigned worker, std::size_t i) {
                       probs[i] = plan.TopProb(candidates[i], nullptr,
                                               scratches[worker], control);
                     });
  return probs;
}

}  // namespace

double TopMatchingProb(const LabeledRimModel& model, const LabelPattern& pattern,
                       const Matching& gamma) {
  return internal::RunTopProbDp(model, pattern, gamma, /*tracked=*/{},
                                /*condition=*/nullptr);
}

std::vector<Matching> CandidateTopMatchings(const LabeledRimModel& model,
                                            const LabelPattern& pattern) {
  return internal::EnumerateCandidates(model, pattern);
}

double PatternProb(const LabeledRimModel& model, const LabelPattern& pattern) {
  return PatternProb(model, pattern, PatternProbOptions{});
}

double PatternProb(const LabeledRimModel& model, const LabelPattern& pattern,
                   const PatternProbOptions& options) {
  if (pattern.NodeCount() == 0) return 1.0;  // The empty pattern always matches.
  const internal::DpPlan plan(model, pattern, /*tracked=*/{});
  return PatternProbWithPlan(plan, options);
}

double PatternProbWithPlan(const internal::DpPlan& plan,
                           const PatternProbOptions& options) {
  const LabeledRimModel& model = plan.model();
  const LabelPattern& pattern = plan.pattern();
  if (pattern.NodeCount() == 0) return 1.0;
  const unsigned threads = ClampThreads(options.threads);
  if (threads <= 1) {
    // Serial path: stream candidates, one plan + one scratch for all γ.
    internal::DpPlan::Scratch scratch;
    double total = 0.0;
    internal::ForEachCandidate(
        model, pattern,
        [&](const Matching& gamma) {
          total += plan.TopProb(gamma, /*condition=*/nullptr, scratch,
                                options.control);
        },
        options.prune_candidates);
    return total;
  }
  const std::vector<Matching> candidates = internal::EnumerateCandidates(
      model, pattern, options.prune_candidates);
  const std::vector<double> probs =
      CandidateProbs(plan, candidates, threads, options.control);
  double total = 0.0;
  for (double prob : probs) total += prob;
  return total;
}

std::optional<std::pair<Matching, double>> MostProbableTopMatching(
    const LabeledRimModel& model, const LabelPattern& pattern) {
  return MostProbableTopMatching(model, pattern, PatternProbOptions{});
}

std::optional<std::pair<Matching, double>> MostProbableTopMatching(
    const LabeledRimModel& model, const LabelPattern& pattern,
    const PatternProbOptions& options) {
  if (pattern.NodeCount() == 0) return std::make_pair(Matching{}, 1.0);
  const internal::DpPlan plan(model, pattern, /*tracked=*/{});
  return MostProbableTopMatchingWithPlan(plan, options);
}

std::optional<std::pair<Matching, double>> MostProbableTopMatchingWithPlan(
    const internal::DpPlan& plan, const PatternProbOptions& options) {
  const LabeledRimModel& model = plan.model();
  const LabelPattern& pattern = plan.pattern();
  if (pattern.NodeCount() == 0) return std::make_pair(Matching{}, 1.0);
  const unsigned threads = ClampThreads(options.threads);
  std::optional<std::pair<Matching, double>> best;
  if (threads <= 1) {
    internal::DpPlan::Scratch scratch;
    internal::ForEachCandidate(model, pattern, [&](const Matching& gamma) {
      const double prob = plan.TopProb(gamma, /*condition=*/nullptr, scratch,
                                       options.control);
      if (prob > 0.0 && (!best.has_value() || prob > best->second)) {
        best = std::make_pair(gamma, prob);
      }
    });
    return best;
  }
  const std::vector<Matching> candidates =
      internal::EnumerateCandidates(model, pattern);
  const std::vector<double> probs =
      CandidateProbs(plan, candidates, threads, options.control);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (probs[i] > 0.0 && (!best.has_value() || probs[i] > best->second)) {
      best = std::make_pair(candidates[i], probs[i]);
    }
  }
  return best;
}

}  // namespace ppref::infer
