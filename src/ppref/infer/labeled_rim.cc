#include "ppref/infer/labeled_rim.h"

#include "ppref/common/check.h"

namespace ppref::infer {

LabeledRimModel::LabeledRimModel(rim::RimModel model, ItemLabeling labeling)
    : model_(std::move(model)), labeling_(std::move(labeling)) {
  PPREF_CHECK_MSG(model_.size() == labeling_.item_count(),
                  "model has " << model_.size() << " items but labeling covers "
                               << labeling_.item_count());
}

}  // namespace ppref::infer
