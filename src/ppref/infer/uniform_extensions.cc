#include "ppref/infer/uniform_extensions.h"

#include <cmath>

#include "ppref/common/check.h"
#include "ppref/infer/matching.h"

namespace ppref::infer {

UniformExtensions::UniformExtensions(PartialOrder order)
    : order_(std::move(order)) {
  const unsigned n = order_.size();
  PPREF_CHECK_MSG(n >= 1 && n <= 20, "UniformExtensions supports 1..20 items");
  predecessors_.assign(n, 0);
  for (rim::ItemId a = 0; a < n; ++a) {
    for (rim::ItemId b = 0; b < n; ++b) {
      if (order_.Precedes(a, b)) predecessors_[b] |= (1u << a);
    }
  }
  // Fill counts for every downset, ascending masks (sub-downsets first).
  downset_counts_.emplace(0u, 1u);
  const std::uint32_t full = (1u << n) - 1;
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    bool downset = true;
    for (unsigned i = 0; i < n && downset; ++i) {
      if ((mask & (1u << i)) && (predecessors_[i] & ~mask)) downset = false;
    }
    if (!downset) continue;
    std::uint64_t count = 0;
    for (unsigned i = 0; i < n; ++i) {
      if (!(mask & (1u << i))) continue;
      bool maximal = true;
      for (unsigned j = 0; j < n; ++j) {
        if (j != i && (mask & (1u << j)) && (predecessors_[j] & (1u << i))) {
          maximal = false;
          break;
        }
      }
      if (maximal) count += downset_counts_.at(mask & ~(1u << i));
    }
    downset_counts_.emplace(mask, count);
  }
}

std::uint64_t UniformExtensions::CountFor(std::uint32_t mask) const {
  return downset_counts_.at(mask);
}

std::uint64_t UniformExtensions::ExtensionCount() const {
  return CountFor((1u << order_.size()) - 1);
}

double UniformExtensions::PairwiseMarginal(rim::ItemId a, rim::ItemId b) const {
  PPREF_CHECK(a < order_.size() && b < order_.size() && a != b);
  if (order_.Precedes(a, b)) return 1.0;
  if (order_.Precedes(b, a)) return 0.0;
  PartialOrder augmented = order_;
  augmented.Add(a, b);
  augmented.Close();
  const UniformExtensions with_pair(augmented);
  return static_cast<double>(with_pair.ExtensionCount()) /
         static_cast<double>(ExtensionCount());
}

rim::Ranking UniformExtensions::Sample(Rng& rng) const {
  const unsigned n = order_.size();
  std::uint32_t remaining = (1u << n) - 1;
  std::vector<rim::ItemId> reversed;  // built back to front
  reversed.reserve(n);
  while (remaining != 0) {
    // Maximal items of the remaining downset, weighted by sub-counts.
    std::vector<rim::ItemId> maximal;
    std::vector<double> weights;
    for (unsigned i = 0; i < n; ++i) {
      if (!(remaining & (1u << i))) continue;
      bool is_maximal = true;
      for (unsigned j = 0; j < n; ++j) {
        if (j != i && (remaining & (1u << j)) &&
            (predecessors_[j] & (1u << i))) {
          is_maximal = false;
          break;
        }
      }
      if (is_maximal) {
        maximal.push_back(i);
        weights.push_back(
            static_cast<double>(CountFor(remaining & ~(1u << i))));
      }
    }
    const rim::ItemId chosen = maximal[rng.NextWeighted(weights)];
    reversed.push_back(chosen);
    remaining &= ~(1u << chosen);
  }
  std::vector<rim::ItemId> order(reversed.rbegin(), reversed.rend());
  return rim::Ranking(std::move(order));
}

void UniformExtensions::ForEachExtension(
    double max_extensions,
    const std::function<void(const rim::Ranking&)>& visit) const {
  PPREF_CHECK_MSG(static_cast<double>(ExtensionCount()) <= max_extensions,
                  "enumerating " << ExtensionCount()
                                 << " extensions exceeds the cap "
                                 << max_extensions);
  const unsigned n = order_.size();
  std::vector<rim::ItemId> suffix;  // built back to front
  std::function<void(std::uint32_t)> recurse = [&](std::uint32_t remaining) {
    if (remaining == 0) {
      std::vector<rim::ItemId> order(suffix.rbegin(), suffix.rend());
      visit(rim::Ranking(std::move(order)));
      return;
    }
    for (unsigned i = 0; i < n; ++i) {
      if (!(remaining & (1u << i))) continue;
      bool is_maximal = true;
      for (unsigned j = 0; j < n; ++j) {
        if (j != i && (remaining & (1u << j)) &&
            (predecessors_[j] & (1u << i))) {
          is_maximal = false;
          break;
        }
      }
      if (!is_maximal) continue;
      suffix.push_back(i);
      recurse(remaining & ~(1u << i));
      suffix.pop_back();
    }
  };
  recurse((1u << n) - 1);
}

double UniformExtensions::PatternProbExact(const LabelPattern& pattern,
                                           const ItemLabeling& labeling,
                                           double max_extensions) const {
  PPREF_CHECK(labeling.item_count() == order_.size());
  std::uint64_t hits = 0;
  ForEachExtension(max_extensions, [&](const rim::Ranking& tau) {
    if (Matches(pattern, labeling, tau)) ++hits;
  });
  return static_cast<double>(hits) / static_cast<double>(ExtensionCount());
}

McEstimate UniformExtensions::PatternProbSampled(const LabelPattern& pattern,
                                                 const ItemLabeling& labeling,
                                                 unsigned samples,
                                                 Rng& rng) const {
  PPREF_CHECK(samples > 0);
  PPREF_CHECK(labeling.item_count() == order_.size());
  unsigned hits = 0;
  for (unsigned s = 0; s < samples; ++s) {
    if (Matches(pattern, labeling, Sample(rng))) ++hits;
  }
  McEstimate estimate;
  estimate.estimate = static_cast<double>(hits) / samples;
  estimate.std_error = std::sqrt(
      estimate.estimate * (1.0 - estimate.estimate) / samples);
  return estimate;
}

}  // namespace ppref::infer
