#include "ppref/infer/monte_carlo.h"

#include <cmath>

#include "ppref/common/check.h"
#include "ppref/infer/matching.h"
#include "ppref/rim/sampler.h"

namespace ppref::infer {
namespace {

McEstimate FromBernoulliCount(unsigned hits, unsigned samples) {
  McEstimate result;
  const double p = static_cast<double>(hits) / samples;
  result.estimate = p;
  result.std_error = std::sqrt(p * (1.0 - p) / samples);
  return result;
}

}  // namespace

McEstimate PatternProbMonteCarlo(const LabeledRimModel& model,
                                 const LabelPattern& pattern, unsigned samples,
                                 Rng& rng) {
  PPREF_CHECK(samples > 0);
  unsigned hits = 0;
  for (unsigned s = 0; s < samples; ++s) {
    const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
    if (Matches(pattern, model.labeling(), tau)) ++hits;
  }
  return FromBernoulliCount(hits, samples);
}

McEstimate PatternMinMaxProbMonteCarlo(const LabeledRimModel& model,
                                       const LabelPattern& pattern,
                                       const std::vector<LabelId>& tracked,
                                       const MinMaxCondition& condition,
                                       unsigned samples, Rng& rng) {
  PPREF_CHECK(samples > 0);
  unsigned hits = 0;
  for (unsigned s = 0; s < samples; ++s) {
    const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
    if (Matches(pattern, model.labeling(), tau) &&
        condition(RealizedMinMax(model.labeling(), tau, tracked))) {
      ++hits;
    }
  }
  return FromBernoulliCount(hits, samples);
}

}  // namespace ppref::infer
