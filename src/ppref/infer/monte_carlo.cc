#include "ppref/infer/monte_carlo.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "ppref/common/check.h"
#include "ppref/common/hash.h"
#include "ppref/common/parallel.h"
#include "ppref/infer/matching.h"
#include "ppref/rim/sampler.h"

namespace ppref::infer {
namespace {

/// Samples per seeding block of the McOptions entry points. Fixed so the
/// block decomposition (and therefore every estimate) is independent of the
/// thread count; large enough that per-block Rng setup is noise.
constexpr unsigned kMcBlockSamples = 1024;

McEstimate FromBernoulliCount(unsigned hits, unsigned samples) {
  McEstimate result;
  const double p = static_cast<double>(hits) / samples;
  result.estimate = p;
  result.std_error = std::sqrt(p * (1.0 - p) / samples);
  return result;
}

/// Runs `block_hits(rng, begin, end)` over the fixed block decomposition of
/// `options.samples` draws and returns the summed hit count. Blocks fan out
/// over ClampThreads(options.threads) workers; each uses its own generator
/// seeded from (options.seed, block index), so the total is thread-count
/// independent (integer addition commutes).
unsigned BlockedHits(
    const McOptions& options,
    const std::function<unsigned(Rng&, unsigned, unsigned)>& block_hits) {
  PPREF_CHECK(options.samples > 0);
  const unsigned blocks =
      (options.samples + kMcBlockSamples - 1) / kMcBlockSamples;
  std::vector<unsigned> hits(blocks, 0);
  ParallelFor(blocks, ClampThreads(options.threads), [&](std::size_t b) {
    if (options.control != nullptr) options.control->Check();
    Rng rng(HashCombine(options.seed, b));
    const unsigned begin = static_cast<unsigned>(b) * kMcBlockSamples;
    const unsigned end = std::min(options.samples, begin + kMcBlockSamples);
    hits[b] = block_hits(rng, begin, end);
  });
  unsigned total = 0;
  for (unsigned h : hits) total += h;
  return total;
}

}  // namespace

McEstimate PatternProbMonteCarlo(const LabeledRimModel& model,
                                 const LabelPattern& pattern, unsigned samples,
                                 Rng& rng) {
  PPREF_CHECK(samples > 0);
  unsigned hits = 0;
  for (unsigned s = 0; s < samples; ++s) {
    const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
    if (Matches(pattern, model.labeling(), tau)) ++hits;
  }
  return FromBernoulliCount(hits, samples);
}

McEstimate PatternMinMaxProbMonteCarlo(const LabeledRimModel& model,
                                       const LabelPattern& pattern,
                                       const std::vector<LabelId>& tracked,
                                       const MinMaxCondition& condition,
                                       unsigned samples, Rng& rng) {
  PPREF_CHECK(samples > 0);
  unsigned hits = 0;
  for (unsigned s = 0; s < samples; ++s) {
    const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
    if (Matches(pattern, model.labeling(), tau) &&
        condition(RealizedMinMax(model.labeling(), tau, tracked))) {
      ++hits;
    }
  }
  return FromBernoulliCount(hits, samples);
}

McEstimate PatternProbMonteCarlo(const LabeledRimModel& model,
                                 const LabelPattern& pattern,
                                 const McOptions& options) {
  const unsigned hits =
      BlockedHits(options, [&](Rng& rng, unsigned begin, unsigned end) {
        unsigned h = 0;
        for (unsigned s = begin; s < end; ++s) {
          const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
          if (Matches(pattern, model.labeling(), tau)) ++h;
        }
        return h;
      });
  return FromBernoulliCount(hits, options.samples);
}

McEstimate PatternMinMaxProbMonteCarlo(const LabeledRimModel& model,
                                       const LabelPattern& pattern,
                                       const std::vector<LabelId>& tracked,
                                       const MinMaxCondition& condition,
                                       const McOptions& options) {
  PPREF_CHECK(condition != nullptr);
  const unsigned hits =
      BlockedHits(options, [&](Rng& rng, unsigned begin, unsigned end) {
        unsigned h = 0;
        for (unsigned s = begin; s < end; ++s) {
          const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
          if (Matches(pattern, model.labeling(), tau) &&
              condition(RealizedMinMax(model.labeling(), tau, tracked))) {
            ++h;
          }
        }
        return h;
      });
  return FromBernoulliCount(hits, options.samples);
}

McTopMatching TopMatchingMonteCarlo(const LabeledRimModel& model,
                                    const LabelPattern& pattern,
                                    const McOptions& options) {
  PPREF_CHECK(options.samples > 0);
  const unsigned blocks =
      (options.samples + kMcBlockSamples - 1) / kMcBlockSamples;
  // Per-block histograms over realized top matchings, merged in block order.
  // std::map keys are ordered, so the modal pick (ties to the smallest γ)
  // is deterministic in (seed, samples) and thread-count independent.
  std::vector<std::map<Matching, unsigned>> histograms(blocks);
  ParallelFor(blocks, ClampThreads(options.threads), [&](std::size_t b) {
    if (options.control != nullptr) options.control->Check();
    Rng rng(HashCombine(options.seed, b));
    const unsigned begin = static_cast<unsigned>(b) * kMcBlockSamples;
    const unsigned end = std::min(options.samples, begin + kMcBlockSamples);
    for (unsigned s = begin; s < end; ++s) {
      const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
      const std::optional<Matching> top =
          TopMatching(pattern, model.labeling(), tau);
      if (top.has_value()) ++histograms[b][*top];
    }
  });
  std::map<Matching, unsigned> merged;
  for (const auto& histogram : histograms) {
    for (const auto& [gamma, count] : histogram) merged[gamma] += count;
  }
  McTopMatching result;
  unsigned best = 0;
  for (const auto& [gamma, count] : merged) {
    if (count > best) {
      best = count;
      result.matching = gamma;
    }
  }
  result.frequency = static_cast<double>(best) / options.samples;
  result.std_error = std::sqrt(result.frequency * (1.0 - result.frequency) /
                               options.samples);
  return result;
}

}  // namespace ppref::infer
