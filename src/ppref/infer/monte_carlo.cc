#include "ppref/infer/monte_carlo.h"

#include <map>
#include <vector>

#include "ppref/common/check.h"
#include "ppref/hard/estimator.h"
#include "ppref/hard/sampler.h"
#include "ppref/infer/matching.h"
#include "ppref/rim/sampler.h"

namespace ppref::infer {
namespace {

/// Samples per seeding block of the McOptions entry points. Fixed so the
/// block decomposition (and therefore every estimate) is independent of the
/// thread count; large enough that per-block Rng setup is noise.
constexpr unsigned kMcBlockSamples = 1024;

McEstimate FromBernoulliCount(unsigned hits, unsigned samples) {
  const hard::BernoulliEstimate point =
      hard::EstimateFromBernoulliCount(hits, samples);
  McEstimate result;
  result.estimate = point.estimate;
  result.std_error = point.std_error;
  return result;
}

/// Runs `block_hits(rng, begin, end)` over the fixed block decomposition of
/// `options.samples` draws and returns the summed hit count — the shared
/// seeded-block core (hard/sampler.h), which fans blocks over
/// ClampThreads(options.threads) workers with per-block generators seeded
/// from (options.seed, block index) and reduces in block order, so the
/// total is thread-count independent.
unsigned BlockedHits(
    const McOptions& options,
    const std::function<unsigned(Rng&, unsigned, unsigned)>& block_hits) {
  PPREF_CHECK(options.samples > 0);
  return hard::SeededBlockHits(options.samples, kMcBlockSamples, options.seed,
                               options.threads, options.control, block_hits);
}

}  // namespace

McEstimate PatternProbMonteCarlo(const LabeledRimModel& model,
                                 const LabelPattern& pattern, unsigned samples,
                                 Rng& rng) {
  PPREF_CHECK(samples > 0);
  unsigned hits = 0;
  for (unsigned s = 0; s < samples; ++s) {
    const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
    if (Matches(pattern, model.labeling(), tau)) ++hits;
  }
  return FromBernoulliCount(hits, samples);
}

McEstimate PatternMinMaxProbMonteCarlo(const LabeledRimModel& model,
                                       const LabelPattern& pattern,
                                       const std::vector<LabelId>& tracked,
                                       const MinMaxCondition& condition,
                                       unsigned samples, Rng& rng) {
  PPREF_CHECK(samples > 0);
  unsigned hits = 0;
  for (unsigned s = 0; s < samples; ++s) {
    const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
    if (Matches(pattern, model.labeling(), tau) &&
        condition(RealizedMinMax(model.labeling(), tau, tracked))) {
      ++hits;
    }
  }
  return FromBernoulliCount(hits, samples);
}

McEstimate PatternProbMonteCarlo(const LabeledRimModel& model,
                                 const LabelPattern& pattern,
                                 const McOptions& options) {
  const unsigned hits =
      BlockedHits(options, [&](Rng& rng, unsigned begin, unsigned end) {
        unsigned h = 0;
        for (unsigned s = begin; s < end; ++s) {
          const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
          if (Matches(pattern, model.labeling(), tau)) ++h;
        }
        return h;
      });
  return FromBernoulliCount(hits, options.samples);
}

McEstimate PatternMinMaxProbMonteCarlo(const LabeledRimModel& model,
                                       const LabelPattern& pattern,
                                       const std::vector<LabelId>& tracked,
                                       const MinMaxCondition& condition,
                                       const McOptions& options) {
  PPREF_CHECK(condition != nullptr);
  const unsigned hits =
      BlockedHits(options, [&](Rng& rng, unsigned begin, unsigned end) {
        unsigned h = 0;
        for (unsigned s = begin; s < end; ++s) {
          const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
          if (Matches(pattern, model.labeling(), tau) &&
              condition(RealizedMinMax(model.labeling(), tau, tracked))) {
            ++h;
          }
        }
        return h;
      });
  return FromBernoulliCount(hits, options.samples);
}

McTopMatching TopMatchingMonteCarlo(const LabeledRimModel& model,
                                    const LabelPattern& pattern,
                                    const McOptions& options) {
  PPREF_CHECK(options.samples > 0);
  const unsigned blocks =
      hard::SeededBlockCount(options.samples, kMcBlockSamples);
  // Per-block histograms over realized top matchings, merged in block order.
  // std::map keys are ordered, so the modal pick (ties to the smallest γ)
  // is deterministic in (seed, samples) and thread-count independent.
  std::vector<std::map<Matching, unsigned>> histograms(blocks);
  hard::RunSeededBlocks(
      0, blocks, options.samples, kMcBlockSamples, options.seed,
      options.threads, options.control,
      [&](const hard::SampleBlock& block, Rng& rng) {
        for (unsigned s = block.begin; s < block.end; ++s) {
          const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
          const std::optional<Matching> top =
              TopMatching(pattern, model.labeling(), tau);
          if (top.has_value()) ++histograms[block.index][*top];
        }
      });
  std::map<Matching, unsigned> merged;
  for (const auto& histogram : histograms) {
    for (const auto& [gamma, count] : histogram) merged[gamma] += count;
  }
  McTopMatching result;
  unsigned best = 0;
  for (const auto& [gamma, count] : merged) {
    if (count > best) {
      best = count;
      result.matching = gamma;
    }
  }
  const hard::BernoulliEstimate frequency =
      hard::EstimateFromBernoulliCount(best, options.samples);
  result.frequency = frequency.estimate;
  result.std_error = frequency.std_error;
  return result;
}

}  // namespace ppref::infer
