#include "ppref/infer/minmax_condition.h"

#include "ppref/common/check.h"

namespace ppref::infer {

MinMaxCondition AllBefore(unsigned earlier, unsigned later) {
  return [earlier, later](const MinMaxValues& values) {
    PPREF_CHECK(earlier < values.max_position.size());
    PPREF_CHECK(later < values.min_position.size());
    const auto& beta = values.max_position[earlier];
    const auto& alpha = values.min_position[later];
    if (!beta.has_value() || !alpha.has_value()) return true;  // vacuous
    return *beta < *alpha;
  };
}

MinMaxCondition TopK(unsigned index, unsigned k) {
  return [index, k](const MinMaxValues& values) {
    PPREF_CHECK(index < values.min_position.size());
    const auto& alpha = values.min_position[index];
    return alpha.has_value() && *alpha + 1 <= k;
  };
}

MinMaxCondition BottomK(unsigned index, unsigned k, unsigned m) {
  return [index, k, m](const MinMaxValues& values) {
    PPREF_CHECK(index < values.max_position.size());
    const auto& beta = values.max_position[index];
    return beta.has_value() && *beta + k >= m;
  };
}

MinMaxCondition AllWithinTopK(unsigned index, unsigned k) {
  return [index, k](const MinMaxValues& values) {
    PPREF_CHECK(index < values.max_position.size());
    const auto& beta = values.max_position[index];
    return !beta.has_value() || *beta + 1 <= k;
  };
}

MinMaxCondition BestBeforeBest(unsigned first, unsigned second) {
  return [first, second](const MinMaxValues& values) {
    PPREF_CHECK(first < values.min_position.size());
    PPREF_CHECK(second < values.min_position.size());
    const auto& a = values.min_position[first];
    const auto& b = values.min_position[second];
    return a.has_value() && b.has_value() && *a < *b;
  };
}

MinMaxCondition WorstBeforeWorst(unsigned first, unsigned second) {
  return [first, second](const MinMaxValues& values) {
    PPREF_CHECK(first < values.max_position.size());
    PPREF_CHECK(second < values.max_position.size());
    const auto& a = values.max_position[first];
    const auto& b = values.max_position[second];
    return a.has_value() && b.has_value() && *a < *b;
  };
}

MinMaxCondition And(std::vector<MinMaxCondition> conditions) {
  return [conditions = std::move(conditions)](const MinMaxValues& values) {
    for (const auto& condition : conditions) {
      if (!condition(values)) return false;
    }
    return true;
  };
}

MinMaxCondition Or(std::vector<MinMaxCondition> conditions) {
  return [conditions = std::move(conditions)](const MinMaxValues& values) {
    for (const auto& condition : conditions) {
      if (condition(values)) return true;
    }
    return false;
  };
}

MinMaxCondition Not(MinMaxCondition condition) {
  return [condition = std::move(condition)](const MinMaxValues& values) {
    return !condition(values);
  };
}

MinMaxValues RealizedMinMax(const ItemLabeling& labeling,
                            const rim::Ranking& ranking,
                            const std::vector<LabelId>& tracked) {
  MinMaxValues values;
  values.min_position.resize(tracked.size());
  values.max_position.resize(tracked.size());
  for (rim::Position pos = 0; pos < ranking.size(); ++pos) {
    const rim::ItemId item = ranking.At(pos);
    for (std::size_t ti = 0; ti < tracked.size(); ++ti) {
      if (!labeling.HasLabel(item, tracked[ti])) continue;
      auto& alpha = values.min_position[ti];
      auto& beta = values.max_position[ti];
      if (!alpha.has_value() || pos < *alpha) alpha = pos;
      if (!beta.has_value() || pos > *beta) beta = pos;
    }
  }
  return values;
}

}  // namespace ppref::infer
