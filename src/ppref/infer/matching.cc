#include "ppref/infer/matching.h"

#include <algorithm>

#include "ppref/common/check.h"

namespace ppref::infer {
namespace {

/// Recursion for AllMatchings: assigns nodes in index order.
void EnumerateMatchings(const LabelPattern& pattern, const ItemLabeling& labeling,
                        const rim::Ranking& ranking, Matching& partial,
                        unsigned next_node, std::vector<Matching>& out) {
  const unsigned k = pattern.NodeCount();
  if (next_node == k) {
    out.push_back(partial);
    return;
  }
  const LabelId label = pattern.NodeLabel(next_node);
  for (rim::ItemId item = 0; item < labeling.item_count(); ++item) {
    if (!labeling.HasLabel(item, label)) continue;
    // Check edges against already-assigned neighbors.
    bool consistent = true;
    for (unsigned parent : pattern.Parents(next_node)) {
      if (parent < next_node &&
          !ranking.Prefers(partial[parent], item)) {
        consistent = false;
        break;
      }
    }
    if (consistent) {
      for (unsigned child : pattern.Children(next_node)) {
        if (child < next_node && !ranking.Prefers(item, partial[child])) {
          consistent = false;
          break;
        }
      }
    }
    if (!consistent) continue;
    partial[next_node] = item;
    EnumerateMatchings(pattern, labeling, ranking, partial, next_node + 1, out);
  }
}

}  // namespace

bool IsMatching(const LabelPattern& pattern, const ItemLabeling& labeling,
                const rim::Ranking& ranking, const Matching& gamma) {
  PPREF_CHECK(gamma.size() == pattern.NodeCount());
  for (unsigned node = 0; node < pattern.NodeCount(); ++node) {
    if (!labeling.HasLabel(gamma[node], pattern.NodeLabel(node))) return false;
    for (unsigned child : pattern.Children(node)) {
      if (!ranking.Prefers(gamma[node], gamma[child])) return false;
    }
  }
  return true;
}

std::optional<Matching> TopMatching(const LabelPattern& pattern,
                                    const ItemLabeling& labeling,
                                    const rim::Ranking& ranking) {
  const unsigned k = pattern.NodeCount();
  if (k == 0) return Matching{};  // The empty matching always exists.
  const std::vector<unsigned> topo = pattern.TopologicalOrder();
  if (topo.empty()) return std::nullopt;  // Cyclic patterns never match.

  // positions_by_label[label occurrence] is resolved on demand: for each
  // node we scan the ranking positions of items carrying the node's label,
  // in increasing position order.
  const unsigned m = ranking.size();
  Matching gamma(k);
  std::vector<rim::Position> node_position(k);
  for (unsigned node : topo) {
    // Earliest legal position: strictly after every parent's image.
    rim::Position lower = 0;  // first admissible position
    for (unsigned parent : pattern.Parents(node)) {
      lower = std::max(lower, node_position[parent] + 1);
    }
    const LabelId label = pattern.NodeLabel(node);
    bool found = false;
    for (rim::Position p = lower; p < m; ++p) {
      if (labeling.HasLabel(ranking.At(p), label)) {
        gamma[node] = ranking.At(p);
        node_position[node] = p;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  return gamma;
}

bool Matches(const LabelPattern& pattern, const ItemLabeling& labeling,
             const rim::Ranking& ranking) {
  return TopMatching(pattern, labeling, ranking).has_value();
}

std::vector<Matching> AllMatchings(const LabelPattern& pattern,
                                   const ItemLabeling& labeling,
                                   const rim::Ranking& ranking) {
  std::vector<Matching> out;
  Matching partial(pattern.NodeCount());
  if (!pattern.IsAcyclic() && pattern.NodeCount() > 0) return out;
  EnumerateMatchings(pattern, labeling, ranking, partial, 0, out);
  return out;
}

}  // namespace ppref::infer
