#include "ppref/infer/label_distributions.h"

#include <algorithm>
#include <optional>

#include "ppref/common/check.h"
#include "ppref/common/parallel.h"
#include "ppref/infer/internal/dp_engine.h"
#include "ppref/infer/internal/dp_plan.h"

namespace ppref::infer {

namespace {

/// Folds one (α, β, probability) contribution into `result`.
void Accumulate(const MinMaxValues& values, double prob,
                LabelPositionDistributions& result) {
  const auto& alpha = values.min_position[0];
  const auto& beta = values.max_position[0];
  if (!alpha.has_value()) {
    result.absent_prob += prob;
    return;
  }
  PPREF_CHECK(beta.has_value());
  result.joint[*alpha][*beta] += prob;
  result.min_marginal[*alpha] += prob;
  result.max_marginal[*beta] += prob;
}

LabelPositionDistributions EmptyDistributions(unsigned m) {
  LabelPositionDistributions result;
  result.joint.assign(m, std::vector<double>(m, 0.0));
  result.min_marginal.assign(m, 0.0);
  result.max_marginal.assign(m, 0.0);
  return result;
}

/// One aggregated (α, β) outcome of a DP run; the parallel path records
/// these per γ and replays them in enumeration order, producing the exact
/// accumulation sequence of the serial path.
struct Outcome {
  std::optional<unsigned> alpha;
  std::optional<unsigned> beta;
  double prob;
};

}  // namespace

LabelPositionDistributions LabelPositions(const LabeledRimModel& model,
                                          LabelId label) {
  LabelPositionDistributions result = EmptyDistributions(model.size());
  internal::RunTopProbDpDistribution(
      model, LabelPattern{}, /*gamma=*/{}, {label},
      [&](const MinMaxValues& values, double prob) {
        Accumulate(values, prob, result);
      });
  return result;
}

LabelPositionDistributions PatternLabelPositions(const LabeledRimModel& model,
                                                 const LabelPattern& pattern,
                                                 LabelId label) {
  return PatternLabelPositions(model, pattern, label, PatternProbOptions{});
}

LabelPositionDistributions PatternLabelPositions(
    const LabeledRimModel& model, const LabelPattern& pattern, LabelId label,
    const PatternProbOptions& options) {
  LabelPositionDistributions result = EmptyDistributions(model.size());
  const internal::DpPlan plan(model, pattern, {label});
  const auto accumulate = [&result](const MinMaxValues& values, double prob) {
    Accumulate(values, prob, result);
  };
  if (pattern.NodeCount() == 0) {
    internal::DpPlan::Scratch scratch;
    plan.Distribution(/*gamma=*/{}, accumulate, scratch);
    return result;
  }
  // Candidate top matchings partition the pattern-matching rankings
  // (Lemma 5.3), so their distributions add up.
  const unsigned threads = ClampThreads(options.threads);
  if (threads <= 1) {
    internal::DpPlan::Scratch scratch;
    internal::ForEachCandidate(
        model, pattern,
        [&](const Matching& gamma) {
          plan.Distribution(gamma, accumulate, scratch);
        },
        options.prune_candidates);
    return result;
  }
  const std::vector<Matching> candidates = internal::EnumerateCandidates(
      model, pattern, options.prune_candidates);
  std::vector<std::vector<Outcome>> outcomes(candidates.size());
  std::vector<internal::DpPlan::Scratch> scratches(
      std::max<std::size_t>(1, std::min<std::size_t>(threads,
                                                     candidates.size())));
  ParallelForWorkers(
      candidates.size(), threads, [&](unsigned worker, std::size_t i) {
        plan.Distribution(
            candidates[i],
            [&](const MinMaxValues& values, double prob) {
              outcomes[i].push_back(Outcome{values.min_position[0],
                                            values.max_position[0], prob});
            },
            scratches[worker]);
      });
  for (const std::vector<Outcome>& per_gamma : outcomes) {
    for (const Outcome& outcome : per_gamma) {
      MinMaxValues values;
      values.min_position = {outcome.alpha};
      values.max_position = {outcome.beta};
      Accumulate(values, outcome.prob, result);
    }
  }
  return result;
}

}  // namespace ppref::infer
