#include "ppref/infer/label_distributions.h"

#include "ppref/common/check.h"
#include "ppref/infer/internal/dp_engine.h"

namespace ppref::infer {

namespace {

/// Accumulates one DP distribution run into `result`.
void Accumulate(const LabeledRimModel& model, const LabelPattern& pattern,
                const Matching& gamma, LabelId label,
                LabelPositionDistributions& result) {
  internal::RunTopProbDpDistribution(
      model, pattern, gamma, {label},
      [&](const MinMaxValues& values, double prob) {
        const auto& alpha = values.min_position[0];
        const auto& beta = values.max_position[0];
        if (!alpha.has_value()) {
          result.absent_prob += prob;
          return;
        }
        PPREF_CHECK(beta.has_value());
        result.joint[*alpha][*beta] += prob;
        result.min_marginal[*alpha] += prob;
        result.max_marginal[*beta] += prob;
      });
}

LabelPositionDistributions EmptyDistributions(unsigned m) {
  LabelPositionDistributions result;
  result.joint.assign(m, std::vector<double>(m, 0.0));
  result.min_marginal.assign(m, 0.0);
  result.max_marginal.assign(m, 0.0);
  return result;
}

}  // namespace

LabelPositionDistributions LabelPositions(const LabeledRimModel& model,
                                          LabelId label) {
  LabelPositionDistributions result = EmptyDistributions(model.size());
  Accumulate(model, LabelPattern{}, /*gamma=*/{}, label, result);
  return result;
}

LabelPositionDistributions PatternLabelPositions(const LabeledRimModel& model,
                                                 const LabelPattern& pattern,
                                                 LabelId label) {
  LabelPositionDistributions result = EmptyDistributions(model.size());
  if (pattern.NodeCount() == 0) {
    Accumulate(model, pattern, {}, label, result);
    return result;
  }
  // Candidate top matchings partition the pattern-matching rankings
  // (Lemma 5.3), so their distributions add up.
  for (const Matching& gamma : internal::EnumerateCandidates(model, pattern)) {
    Accumulate(model, pattern, gamma, label, result);
  }
  return result;
}

}  // namespace ppref::infer
