#include "ppref/infer/marginals.h"

#include "ppref/common/check.h"
#include "ppref/common/parallel.h"

namespace ppref::infer {
namespace {

/// Distribution of the prefix position of reference item `start` right after
/// step `upto` of the insertion process (inclusive); `start <= upto`.
/// Entry p is Pr(item sits at position p among the first upto+1 items).
std::vector<double> PrefixPositionDistribution(const rim::RimModel& model,
                                               unsigned start, unsigned upto) {
  const rim::InsertionFunction& pi = model.insertion();
  std::vector<double> dist(pi.Row(start));  // positions after the item inserts
  for (unsigned t = start + 1; t <= upto; ++t) {
    std::vector<double> next(t + 1, 0.0);
    double shift_prob = 0.0;  // Pr(slot <= p), built incrementally
    for (unsigned p = 0; p < dist.size(); ++p) {
      shift_prob += pi.Prob(t, p);  // slots 0..p push the item back
      next[p + 1] += dist[p] * shift_prob;
      next[p] += dist[p] * (1.0 - shift_prob);
    }
    dist.swap(next);
  }
  return dist;
}

}  // namespace

double PairwiseMarginal(const rim::RimModel& model, rim::ItemId a,
                        rim::ItemId b) {
  PPREF_CHECK(a != b);
  const unsigned t_a = model.reference().PositionOf(a);
  const unsigned t_b = model.reference().PositionOf(b);
  const unsigned first = std::min(t_a, t_b);
  const unsigned second = std::max(t_a, t_b);
  const std::vector<double> dist =
      PrefixPositionDistribution(model, first, second - 1);
  const rim::InsertionFunction& pi = model.insertion();

  // Pr(the second-inserted item lands before the first) given the first sits
  // at position p is Σ_{j <= p} Π(second, j).
  double second_before_first = 0.0;
  double cumulative = 0.0;
  for (unsigned p = 0; p < dist.size(); ++p) {
    cumulative += pi.Prob(second, p);
    second_before_first += dist[p] * cumulative;
  }
  // Relative order is fixed from step `second` on: later insertions shift
  // both items together.
  return (t_a == first) ? 1.0 - second_before_first : second_before_first;
}

std::vector<std::vector<double>> PairwiseMarginalMatrix(
    const rim::RimModel& model) {
  return PairwiseMarginalMatrix(model, /*threads=*/1);
}

std::vector<std::vector<double>> PairwiseMarginalMatrix(
    const rim::RimModel& model, unsigned threads) {
  const unsigned m = model.size();
  std::vector<std::vector<double>> matrix(m, std::vector<double>(m, 0.0));
  // Row a fills the upper-triangle cells (a, b > a) and mirrors them; rows
  // touch disjoint cells, so they fan out without synchronization.
  // ClampThreads: 0 = auto, matching every other threads knob.
  ParallelFor(m, ClampThreads(threads), [&](std::size_t a) {
    for (rim::ItemId b = static_cast<rim::ItemId>(a) + 1; b < m; ++b) {
      matrix[a][b] = PairwiseMarginal(model, static_cast<rim::ItemId>(a), b);
      matrix[b][a] = 1.0 - matrix[a][b];
    }
  });
  return matrix;
}

std::vector<double> PositionDistribution(const rim::RimModel& model,
                                         rim::ItemId item) {
  PPREF_CHECK(item < model.size());
  const unsigned start = model.reference().PositionOf(item);
  return PrefixPositionDistribution(model, start, model.size() - 1);
}

double TopKProb(const rim::RimModel& model, rim::ItemId item, unsigned k) {
  const std::vector<double> dist = PositionDistribution(model, item);
  double total = 0.0;
  for (unsigned p = 0; p < std::min<std::size_t>(k, dist.size()); ++p) {
    total += dist[p];
  }
  return total;
}

}  // namespace ppref::infer
