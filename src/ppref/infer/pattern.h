/// \file pattern.h
/// \brief Label patterns — §4.3 of the paper.
///
/// A label pattern g is a directed graph whose nodes are labels; an edge
/// l -> l' asserts that (the item matched to) l is preferred to (the item
/// matched to) l'. Nodes are identified by dense `LabelId`s; each label
/// appears at most once as a node, so "node" and "label" are used
/// interchangeably, exactly as in the paper.
///
/// Internally nodes are indexed 0..k-1 in insertion order; every algorithm
/// in `ppref/infer/` works with node indices and uses `NodeLabel()` to map
/// back to labels.

#ifndef PPREF_INFER_PATTERN_H_
#define PPREF_INFER_PATTERN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ppref::infer {

/// Dense label identifier. The universe Δ of the paper is infinite; any
/// 32-bit id may be used. Dictionaries mapping names to ids live in the
/// layers above (see ppd::reduction).
using LabelId = std::uint32_t;

/// A directed graph over labels. Matching semantics are defined in
/// matching.h; probability computations in top_prob.h.
class LabelPattern {
 public:
  /// Adds a node carrying `label` and returns its index. The label must not
  /// already be a node of the pattern.
  unsigned AddNode(LabelId label);

  /// Adds the edge from node `from` to node `to` (both node indices):
  /// "from's item is preferred to to's item". Parallel edges are ignored;
  /// self-loops are rejected (they are unsatisfiable and the paper's
  /// patterns never need them — a cyclic pattern has probability 0 anyway,
  /// which callers detect via IsAcyclic()).
  void AddEdge(unsigned from, unsigned to);

  /// Number of nodes k = |nodes(g)|.
  unsigned NodeCount() const { return static_cast<unsigned>(labels_.size()); }

  /// Number of (distinct) edges.
  unsigned EdgeCount() const;

  /// The label carried by node `node`.
  LabelId NodeLabel(unsigned node) const;

  /// Index of the node carrying `label`, if present.
  std::optional<unsigned> NodeOf(LabelId label) const;

  /// Parent node indices of `node` (paper's pa_g).
  const std::vector<unsigned>& Parents(unsigned node) const;

  /// Child node indices of `node` (paper's ch_g).
  const std::vector<unsigned>& Children(unsigned node) const;

  /// True iff the edge from -> to is present.
  bool HasEdge(unsigned from, unsigned to) const;

  /// True iff the pattern has no directed cycle. Cyclic patterns match no
  /// ranking (probability 0).
  bool IsAcyclic() const;

  /// A topological order of node indices; empty when cyclic.
  std::vector<unsigned> TopologicalOrder() const;

  /// reach[u][v] = true iff v is reachable from u via one or more edges.
  /// Used by the TopProb driver to prune candidate matchings (an edge path
  /// u ->* v forces strictly distinct, strictly ordered items).
  std::vector<std::vector<bool>> Reachability() const;

  /// Renders nodes and edges for diagnostics.
  std::string ToString() const;

 private:
  std::vector<LabelId> labels_;                // labels_[node] = label
  std::vector<std::vector<unsigned>> parents_;
  std::vector<std::vector<unsigned>> children_;
};

}  // namespace ppref::infer

#endif  // PPREF_INFER_PATTERN_H_
