/// \file brute_force.h
/// \brief Exhaustive-enumeration oracles for labeled-RIM inference.
///
/// These evaluate the defining sums of §4.3/§5 directly by enumerating all
/// m! rankings. They are exponential and exist to validate the polynomial
/// algorithms (tests) and to exhibit the cost gap (benchmarks); keep m <= ~9.

#ifndef PPREF_INFER_BRUTE_FORCE_H_
#define PPREF_INFER_BRUTE_FORCE_H_

#include <vector>

#include "ppref/infer/labeled_rim.h"
#include "ppref/infer/matching.h"
#include "ppref/infer/minmax_condition.h"
#include "ppref/infer/pattern.h"

namespace ppref::infer {

/// Pr(g | σ, Π, λ) by direct summation over rnk(items(σ)) — Eq. (1).
double PatternProbBruteForce(const LabeledRimModel& model,
                             const LabelPattern& pattern);

/// p_γ by direct summation: mass of rankings whose top matching is `gamma`.
double TopMatchingProbBruteForce(const LabeledRimModel& model,
                                 const LabelPattern& pattern,
                                 const Matching& gamma);

/// Pr(g ∧ φ) by direct summation — the quantity of Thm 5.11.
double PatternMinMaxProbBruteForce(const LabeledRimModel& model,
                                   const LabelPattern& pattern,
                                   const std::vector<LabelId>& tracked,
                                   const MinMaxCondition& condition);

}  // namespace ppref::infer

#endif  // PPREF_INFER_BRUTE_FORCE_H_
