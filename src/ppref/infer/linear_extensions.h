/// \file linear_extensions.h
/// \brief Counting linear extensions of a partial order — the #P-hard
/// problem behind the paper's hardness reduction (Lemma 4.6).
///
/// The reduction shows conf_{Q_h}([E]) = (m! − |rnk(A|≻)|) / m! when the
/// single session carries the uniform RIM model MAL(σ, 1). The exact
/// counter here (exponential-time DP over downsets) lets tests and bench E6
/// verify that identity end-to-end.

#ifndef PPREF_INFER_LINEAR_EXTENSIONS_H_
#define PPREF_INFER_LINEAR_EXTENSIONS_H_

#include <cstdint>
#include <vector>

#include "ppref/rim/ranking.h"

namespace ppref::infer {

/// A strict partial order over items {0, ..., n-1}, n <= 20.
class PartialOrder {
 public:
  explicit PartialOrder(unsigned item_count);

  /// Asserts `before` ≻ `after` (before precedes after). The stored relation
  /// keeps direct pairs; Close() takes the transitive closure.
  void Add(rim::ItemId before, rim::ItemId after);

  /// Takes the transitive closure in place. PPREF_CHECKs irreflexivity
  /// (a cycle would make the relation reflexive after closure).
  void Close();

  /// True iff `before` ≻ `after` holds (direct pairs only unless Close()d).
  bool Precedes(rim::ItemId before, rim::ItemId after) const;

  /// Number of items n.
  unsigned size() const { return item_count_; }

  /// All pairs (before, after) currently stored.
  std::vector<std::pair<rim::ItemId, rim::ItemId>> Pairs() const;

  /// True iff `ranking` is a linear extension: a ≻ b implies a ranked
  /// above b.
  bool IsLinearExtension(const rim::Ranking& ranking) const;

 private:
  unsigned item_count_;
  std::vector<std::vector<bool>> precedes_;
};

/// |rnk(A|≻)|: the number of linear extensions, via DP over downsets
/// (O(2^n · n) time/space). Requires n <= 20.
std::uint64_t CountLinearExtensions(const PartialOrder& order);

/// Reference implementation enumerating all n! permutations; test oracle.
std::uint64_t CountLinearExtensionsBruteForce(const PartialOrder& order);

}  // namespace ppref::infer

#endif  // PPREF_INFER_LINEAR_EXTENSIONS_H_
