/// \file labeled_rim.h
/// \brief Labeled RIM models RIM_L(σ, Π, λ) — §4.3 of the paper.

#ifndef PPREF_INFER_LABELED_RIM_H_
#define PPREF_INFER_LABELED_RIM_H_

#include "ppref/infer/labeling.h"
#include "ppref/rim/rim_model.h"

namespace ppref::infer {

/// A RIM model whose items carry label sets: the object the paper's
/// inference problem (computing Pr(g | σ, Π, λ)) is defined over.
class LabeledRimModel {
 public:
  /// The labeling must cover exactly the model's items.
  LabeledRimModel(rim::RimModel model, ItemLabeling labeling);

  /// Number of items m.
  unsigned size() const { return model_.size(); }

  /// The underlying RIM(σ, Π) model.
  const rim::RimModel& model() const { return model_; }

  /// The labeling λ.
  const ItemLabeling& labeling() const { return labeling_; }

 private:
  rim::RimModel model_;
  ItemLabeling labeling_;
};

}  // namespace ppref::infer

#endif  // PPREF_INFER_LABELED_RIM_H_
