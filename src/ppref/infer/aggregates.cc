#include "ppref/infer/aggregates.h"

#include <algorithm>
#include <numeric>

#include "ppref/common/check.h"
#include "ppref/infer/marginals.h"

namespace ppref::infer {

double ExpectedKendallTau(const rim::RimModel& model,
                          const rim::Ranking& sigma) {
  PPREF_CHECK(sigma.size() == model.size());
  double expected = 0.0;
  for (rim::Position i = 0; i < sigma.size(); ++i) {
    for (rim::Position j = i + 1; j < sigma.size(); ++j) {
      // sigma ranks At(i) above At(j); a disagreement inverts them.
      expected += PairwiseMarginal(model, sigma.At(j), sigma.At(i));
    }
  }
  return expected;
}

rim::Ranking ModalRanking(const rim::RimModel& model) {
  std::vector<rim::ItemId> order;
  order.reserve(model.size());
  for (unsigned t = 0; t < model.size(); ++t) {
    const std::vector<double>& row = model.insertion().Row(t);
    const auto best = std::max_element(row.begin(), row.end());
    const auto slot = static_cast<std::ptrdiff_t>(best - row.begin());
    order.insert(order.begin() + slot, model.reference().At(t));
  }
  return rim::Ranking(std::move(order));
}

std::vector<double> ExpectedPositions(const rim::RimModel& model) {
  std::vector<double> expected(model.size(), 0.0);
  for (rim::ItemId item = 0; item < model.size(); ++item) {
    const std::vector<double> dist = PositionDistribution(model, item);
    for (unsigned p = 0; p < dist.size(); ++p) {
      expected[item] += p * dist[p];
    }
  }
  return expected;
}

rim::Ranking ConsensusByExpectedPosition(const rim::RimModel& model) {
  const std::vector<double> expected = ExpectedPositions(model);
  std::vector<rim::ItemId> order(model.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](rim::ItemId a, rim::ItemId b) {
                     return expected[a] < expected[b];
                   });
  return rim::Ranking(std::move(order));
}

std::vector<double> KendallDistanceDistribution(const rim::RimModel& model) {
  const unsigned m = model.size();
  std::vector<double> distribution = {1.0};  // Pr(d = 0) before any step
  for (unsigned t = 1; t < m; ++t) {
    // Step t contributes displacement e = t - slot with probability
    // Π(t, t - e), e in [0, t].
    std::vector<double> next(distribution.size() + t, 0.0);
    for (std::size_t d = 0; d < distribution.size(); ++d) {
      if (distribution[d] == 0.0) continue;
      for (unsigned e = 0; e <= t; ++e) {
        next[d + e] += distribution[d] * model.insertion().Prob(t, t - e);
      }
    }
    distribution.swap(next);
  }
  return distribution;
}

}  // namespace ppref::infer
