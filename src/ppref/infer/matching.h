/// \file matching.h
/// \brief Matchings of label patterns in concrete rankings — §4.3 and §5.1.
///
/// A matching γ maps pattern nodes to items so that labels and edges are
/// preserved. The *top matching* (Lemma 5.3) is the unique pointwise
/// position-minimal matching; it exists whenever any matching exists, and is
/// computed here greedily along a topological order (the construction used
/// in the paper's proof of Lemma 5.3).

#ifndef PPREF_INFER_MATCHING_H_
#define PPREF_INFER_MATCHING_H_

#include <optional>
#include <vector>

#include "ppref/infer/labeling.h"
#include "ppref/infer/pattern.h"
#include "ppref/rim/ranking.h"

namespace ppref::infer {

/// γ: node index -> item; `Matching[node]` is the item matched to `node`.
using Matching = std::vector<rim::ItemId>;

/// True iff `gamma` is a matching of `pattern` in `ranking` w.r.t.
/// `labeling`: labels match and edges map to strict preferences.
bool IsMatching(const LabelPattern& pattern, const ItemLabeling& labeling,
                const rim::Ranking& ranking, const Matching& gamma);

/// True iff (τ, λ) |= g: at least one matching exists. Computed via the
/// greedy top-matching construction (O(k·m) after indexing).
bool Matches(const LabelPattern& pattern, const ItemLabeling& labeling,
             const rim::Ranking& ranking);

/// The unique top matching of `pattern` in `ranking`, or nullopt when no
/// matching exists. Greedy over a topological order: each node takes the
/// earliest-positioned item carrying its label strictly after all its
/// parents' images; an induction shows the result is pointwise minimal among
/// all matchings and independent of the topological order chosen.
std::optional<Matching> TopMatching(const LabelPattern& pattern,
                                    const ItemLabeling& labeling,
                                    const rim::Ranking& ranking);

/// Exhaustive enumeration of Γ(g, τ): all matchings, in lexicographic node
/// assignment order. Exponential in |nodes(g)|; test/benchmark oracle only.
std::vector<Matching> AllMatchings(const LabelPattern& pattern,
                                   const ItemLabeling& labeling,
                                   const rim::Ranking& ranking);

}  // namespace ppref::infer

#endif  // PPREF_INFER_MATCHING_H_
