/// \file aggregates.h
/// \brief Exact rank-aggregation statistics over RIM models — the
/// "preference-to-preference" operations motivated in §1 (and the vision
/// paper the framework builds on), computed in closed form from the
/// polynomial-time marginal DPs.

#ifndef PPREF_INFER_AGGREGATES_H_
#define PPREF_INFER_AGGREGATES_H_

#include <vector>

#include "ppref/rim/rim_model.h"

namespace ppref::infer {

/// E[d(τ, sigma)]: the expected Kendall tau distance between a random
/// ranking of the model and a fixed ranking `sigma`, computed exactly as the
/// sum of pairwise disagreement probabilities. O(m²) pairwise DPs.
double ExpectedKendallTau(const rim::RimModel& model, const rim::Ranking& sigma);

/// The single most probable ranking of the model. Insertion slots are
/// chosen independently, so the mode simply takes each row's argmax slot
/// (ties broken toward the earlier slot).
rim::Ranking ModalRanking(const rim::RimModel& model);

/// E[position of each item] (0-based), from the exact position
/// distributions; the per-item "expected Borda score" is (m-1) minus this.
std::vector<double> ExpectedPositions(const rim::RimModel& model);

/// A consensus ranking: items sorted by increasing expected position (ties
/// by item id). For Mallows models this recovers the reference ranking.
rim::Ranking ConsensusByExpectedPosition(const rim::RimModel& model);

/// The exact distribution of d(τ, σ) for the model's *own* reference σ:
/// result[d] = Pr(Kendall distance d), d = 0 .. m(m-1)/2. The per-step
/// insertion displacements are independent and sum to the distance, so a
/// convolution over the Π rows computes this in O(m³).
std::vector<double> KendallDistanceDistribution(const rim::RimModel& model);

}  // namespace ppref::infer

#endif  // PPREF_INFER_AGGREGATES_H_
