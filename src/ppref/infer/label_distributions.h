/// \file label_distributions.h
/// \brief Exact joint distributions of a label's extreme positions.
///
/// For a label l, α(l)/β(l) are the positions of the highest- and lowest-
/// ranked items carrying l (§5.5). One TopProbMinMax-style DP run yields
/// the full joint distribution Pr(α = i, β = j), from which callers answer
/// every min/max query about l without re-running inference.

#ifndef PPREF_INFER_LABEL_DISTRIBUTIONS_H_
#define PPREF_INFER_LABEL_DISTRIBUTIONS_H_

#include <vector>

#include "ppref/infer/labeled_rim.h"
#include "ppref/infer/pattern.h"
#include "ppref/infer/top_prob.h"

namespace ppref::infer {

/// Joint and marginal distributions of one label's extreme positions.
struct LabelPositionDistributions {
  /// joint[i][j] = Pr(α = i and β = j); zero whenever j < i.
  std::vector<std::vector<double>> joint;
  /// min_marginal[i] = Pr(α = i); max_marginal[j] = Pr(β = j).
  std::vector<double> min_marginal;
  std::vector<double> max_marginal;
  /// Pr(no item carries the label) — 1 exactly when the label is absent.
  double absent_prob = 0.0;
};

/// Computes the distributions for `label` under the model. O(m) DP steps
/// over O(m²) (α, β) states.
LabelPositionDistributions LabelPositions(const LabeledRimModel& model,
                                          LabelId label);

/// Joint (unnormalized) distributions restricted to pattern-matching
/// rankings: entry (i, j) is Pr(pattern matches ∧ α = i ∧ β = j), so the
/// total mass equals PatternProb(model, pattern). Divide by that mass for
/// the conditional distribution given the pattern.
LabelPositionDistributions PatternLabelPositions(const LabeledRimModel& model,
                                                 const LabelPattern& pattern,
                                                 LabelId label);

/// PatternLabelPositions with explicit options: `options.threads` runs the
/// per-candidate-γ DPs on worker threads and merges their contributions in
/// enumeration order, so the result is bit-identical to the serial path.
LabelPositionDistributions PatternLabelPositions(
    const LabeledRimModel& model, const LabelPattern& pattern, LabelId label,
    const PatternProbOptions& options);

}  // namespace ppref::infer

#endif  // PPREF_INFER_LABEL_DISTRIBUTIONS_H_
