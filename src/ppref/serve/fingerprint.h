/// \file fingerprint.h
/// \brief Stable 64-bit content fingerprints of inference inputs — the cache
/// keys of the serve layer.
///
/// A fingerprint identifies the *mathematical object*, not the C++ object:
/// two values that define the same distribution/pattern hash equal no matter
/// how or in what order they were built, and any single-parameter
/// perturbation (an insertion probability, a dispersion, a label, an edge)
/// changes the hash. Canonicalization rules:
///
///  - `RimModel`: reference order verbatim + every insertion row verbatim
///    (doubles by bit pattern). The pair (σ, Π) *is* the model.
///  - `ItemLabeling`: per item, the label set sorted — `AddLabel` order is
///    presentation, not content.
///  - `LabelPattern`: node labels sorted, then edges as (label, label) pairs
///    sorted — `AddNode`/`AddEdge` order and node index assignment are
///    presentation. (Each label occurs at most once as a node, so sorted
///    label pairs are a canonical edge list.)
///  - tracked-label vectors: verbatim order. Order is semantic — the i-th
///    tracked label owns the i-th (α, β) slot a MinMaxCondition reads.
///
/// Keys are 64-bit; collisions are possible in principle (~2^-64 per pair)
/// and accepted, as in every content-addressed cache of this size.

#ifndef PPREF_SERVE_FINGERPRINT_H_
#define PPREF_SERVE_FINGERPRINT_H_

#include <cstdint>
#include <vector>

#include "ppref/infer/labeled_rim.h"
#include "ppref/infer/labeling.h"
#include "ppref/infer/pattern.h"
#include "ppref/rim/rim_model.h"

namespace ppref::serve {

/// Fingerprint of RIM(σ, Π).
std::uint64_t FingerprintModel(const rim::RimModel& model);

/// Fingerprint of the model's *structure* only: size and reference order,
/// excluding every insertion probability. This is the circuit-cache
/// dimension of a model — a compiled circuit is a pure function of the DP's
/// control flow, which never reads Π, so two models differing only in Π
/// share one circuit and re-bind it per evaluation.
std::uint64_t FingerprintModelStructure(const rim::RimModel& model);

/// Fingerprint of λ (per-item label sets, order-insensitive within an item).
std::uint64_t FingerprintLabeling(const infer::ItemLabeling& labeling);

/// Fingerprint of RIM_L(σ, Π, λ): model and labeling combined.
std::uint64_t FingerprintLabeledModel(const infer::LabeledRimModel& model);

/// Fingerprint of a label pattern g (construction-order independent).
std::uint64_t FingerprintPattern(const infer::LabelPattern& pattern);

/// Fingerprint of a tracked-label vector (order-sensitive — see above).
std::uint64_t FingerprintTracked(const std::vector<infer::LabelId>& tracked);

/// The plan-cache key of a compiled `DpPlan`: one (model, pattern, tracked)
/// triple, combining the three fingerprints above in a fixed order.
std::uint64_t PlanKey(const infer::LabeledRimModel& model,
                      const infer::LabelPattern& pattern,
                      const std::vector<infer::LabelId>& tracked);

/// The circuit-cache key: (model structure, labeling, pattern) — everything
/// the compiled circuit depends on, and nothing it doesn't. Deliberately
/// excludes the insertion probabilities (see FingerprintModelStructure), so
/// a φ-sweep over one model hits a single cached circuit.
std::uint64_t CircuitKey(const infer::LabeledRimModel& model,
                         const infer::LabelPattern& pattern);

}  // namespace ppref::serve

#endif  // PPREF_SERVE_FINGERPRINT_H_
