#include "ppref/serve/workload.h"

#include "ppref/common/random.h"
#include "ppref/infer/labeling.h"
#include "ppref/rim/mallows.h"
#include "ppref/rim/ranking.h"

namespace ppref::serve {

SyntheticWorkload MakeSyntheticWorkload(std::size_t unique,
                                        unsigned base_items) {
  SyntheticWorkload workload;
  workload.models.reserve(unique);
  workload.patterns.reserve(unique);
  for (std::size_t i = 0; i < unique; ++i) {
    const unsigned m = base_items + static_cast<unsigned>(i % 4) * 4;
    const unsigned k = 2 + static_cast<unsigned>(i % 2);
    const double phi =
        0.3 + 0.6 * static_cast<double>(i) / static_cast<double>(unique);
    infer::ItemLabeling labeling(m);
    for (unsigned item = 0; item < m; ++item) {
      labeling.AddLabel(item, item % (k + 1));
    }
    workload.models.emplace_back(
        rim::MallowsModel(rim::Ranking::Identity(m), phi).rim(),
        std::move(labeling));
    infer::LabelPattern pattern;
    for (infer::LabelId label = 0; label < k; ++label) pattern.AddNode(label);
    for (unsigned e = 0; e + 1 < k; ++e) pattern.AddEdge(e, e + 1);
    workload.patterns.push_back(std::move(pattern));
  }
  return workload;
}

std::vector<Request> MakeSyntheticTrace(const SyntheticWorkload& workload,
                                        std::size_t requests,
                                        std::uint64_t seed,
                                        std::uint64_t deadline_ns,
                                        std::vector<std::size_t>* pair_out) {
  const std::size_t unique = workload.models.size();
  Rng rng(seed);
  std::vector<Request> trace(requests);
  if (pair_out != nullptr) pair_out->resize(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    std::size_t pair = rng.NextIndex(unique);
    if (rng.NextUnit() < 0.5) pair /= 2;
    if (pair_out != nullptr) (*pair_out)[i] = pair;
    trace[i].kind = (i % 4 == 3) ? Request::Kind::kTopMatching
                                 : Request::Kind::kPatternProb;
    trace[i].model = &workload.models[pair];
    trace[i].pattern = &workload.patterns[pair];
    trace[i].control.deadline_ns = deadline_ns;
  }
  return trace;
}

}  // namespace ppref::serve
