/// \file stats.h
/// \brief The per-server observability surface: a plain struct snapshot.
///
/// Counters answer the capacity-planning questions a serving deployment
/// asks: are plans being reused (plan hit rate), are whole answers being
/// reused (result hit rate), is the cache thrashing (evictions), where do
/// the cycles go (compile vs. execute nanoseconds), and how deep is the
/// instantaneous load (in-flight depth).
///
/// Since the `ppref::obs` subsystem landed, this struct is a *view*: the
/// server's counters live as named instruments in an `obs::MetricsRegistry`
/// (scrapeable as Prometheus text / JSON with latency histograms on top),
/// and `Server::Snapshot()` reads them back into this struct. All counters
/// are cumulative since server construction. A snapshot taken while workers
/// still publish has monitoring consistency (every event counted once,
/// cross-counter skew of the few requests in flight); one taken after the
/// submitting calls returned — e.g. an end-of-run summary — observes all of
/// their updates, because every `Evaluate*` call joins its workers before
/// returning.

#ifndef PPREF_SERVE_STATS_H_
#define PPREF_SERVE_STATS_H_

#include <cstdint>

#include "ppref/serve/lru_cache.h"

namespace ppref::serve {

/// Point-in-time server statistics.
struct ServerStats {
  /// Plan cache: a hit skips DpPlan compilation.
  CacheStats plan_cache;
  /// Result cache: a hit skips the entire DP execution.
  CacheStats result_cache;
  /// Circuit cache: compiled arithmetic circuits keyed on model *structure*
  /// (Π excluded) — a hit answers a whole parameter sweep without touching
  /// the DP again.
  CacheStats circuit_cache;
  /// Hard-tier cache: adaptive Monte-Carlo estimates and consensus rankings,
  /// keyed on (fingerprint, sampling configuration). Only deterministic
  /// answers (target met or budget cap) are ever inserted.
  CacheStats hard_cache;

  /// Requests accepted, via any entry point (batch requests count singly).
  std::uint64_t requests = 0;
  /// Batches accepted via EvaluateBatch.
  std::uint64_t batches = 0;
  /// Requests answered by sharing a duplicate within the same batch.
  std::uint64_t batch_deduped = 0;
  /// Parameter-sweep requests accepted via PatternProbSweep (each counts
  /// once, however many points it carries).
  std::uint64_t sweep_requests = 0;
  /// Parameter points evaluated against a cached circuit.
  std::uint64_t sweep_points = 0;

  // Hard-query tier (ppref/hard/):

  /// Hard adaptive-estimate queries accepted (each pattern of a pooled
  /// batch counts once).
  std::uint64_t hard_requests = 0;
  /// Pooled hard batches accepted via HardPatternProbBatch.
  std::uint64_t hard_batches = 0;
  /// Worlds consumed by freshly sampled hard answers (cache hits add none).
  std::uint64_t hard_samples = 0;
  /// Hard answers that reached their precision target before the cap.
  std::uint64_t hard_target_met = 0;
  /// Hard answers stopped early by a deadline budget (never cached).
  std::uint64_t hard_deadline_limited = 0;
  /// Consensus top-k queries accepted via ConsensusTopK.
  std::uint64_t consensus_requests = 0;

  /// Circuits compiled by this server (circuit-cache misses).
  std::uint64_t circuit_compiles = 0;
  /// Nanoseconds spent compiling circuits.
  std::uint64_t circuit_compile_ns = 0;
  /// Nanoseconds spent evaluating cached circuits over sweep points.
  std::uint64_t circuit_eval_ns = 0;

  /// Nanoseconds spent compiling DpPlans (plan-cache misses).
  std::uint64_t compile_ns = 0;
  /// Nanoseconds spent executing DPs (result-cache misses).
  std::uint64_t execute_ns = 0;

  // Persistent store (all zero unless `ServerOptions::store` is set):

  /// Store records loaded and decoded on a cache miss (warm-from-disk).
  std::uint64_t store_hits = 0;
  /// Cache misses the store could not answer either.
  std::uint64_t store_misses = 0;
  /// Store payloads that failed to decode (treated as misses).
  std::uint64_t store_corrupt = 0;
  /// Nanoseconds spent decoding store records.
  std::uint64_t store_load_ns = 0;
  /// Records written behind to the store (plans, circuits, exact results).
  std::uint64_t store_writes = 0;

  /// Requests currently being served (admitted, not yet answered).
  std::uint64_t in_flight = 0;
  /// High-water mark of `in_flight`.
  std::uint64_t in_flight_peak = 0;

  // Fault-tolerance disposition counters (status entry points only):

  /// Requests shed by admission control (kResourceExhausted before any work).
  std::uint64_t shed = 0;
  /// Requests rejected by validation (kInvalidArgument).
  std::uint64_t invalid = 0;
  /// Requests stopped by their deadline mid-computation.
  std::uint64_t deadline_exceeded = 0;
  /// Requests stopped by caller cancellation.
  std::uint64_t cancelled = 0;
  /// Failed requests answered with a Monte-Carlo fallback (approximate).
  std::uint64_t degraded = 0;
  /// Unexpected exceptions mapped to kInternal.
  std::uint64_t internal_errors = 0;
};

}  // namespace ppref::serve

#endif  // PPREF_SERVE_STATS_H_
