/// \file workload.h
/// \brief Reproducible synthetic serving workloads — the shared trace
/// generator behind `ppref_serve`, `ppref_chaos`, `ppref_bench_net`, and the
/// network end-to-end tests.
///
/// The pool is a family of labeled Mallows models (sizes and dispersions
/// varied deterministically) with 2- or 3-node chain patterns; the trace is a
/// hot-biased draw over the pool (half the draws collapse onto the hot half),
/// so its repeat profile resembles a production query mix rather than a
/// uniform sweep. Everything is a pure function of its arguments: the same
/// (unique, base_items, seed) always produces byte-identical models,
/// patterns, and request order, which is what lets separate processes — a
/// daemon and its clients, or a test and its in-process oracle — agree on
/// the expected answers bit-for-bit.

#ifndef PPREF_SERVE_WORKLOAD_H_
#define PPREF_SERVE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "ppref/infer/labeled_rim.h"
#include "ppref/infer/pattern.h"
#include "ppref/serve/server.h"

namespace ppref::serve {

/// The unique (model, pattern) pool a trace draws from. Requests index into
/// these vectors, so the pool must outlive every trace built over it.
struct SyntheticWorkload {
  std::vector<infer::LabeledRimModel> models;
  std::vector<infer::LabelPattern> patterns;
};

/// Builds the pool: `unique` labeled Mallows models over
/// base_items + (i % 4) * 4 items with dispersion sweeping 0.3 → 0.9, item
/// i carrying label i % (k + 1), and a k-node chain pattern (k alternating
/// 2, 3).
SyntheticWorkload MakeSyntheticWorkload(std::size_t unique,
                                        unsigned base_items = 16);

/// A hot-biased request trace over the pool: pair = NextIndex(unique),
/// halved with probability 0.5; every 4th request is kTopMatching, the rest
/// kPatternProb. `deadline_ns` is stamped into every request's control. When
/// `pair_out` is non-null it receives the drawn pool index per request.
std::vector<Request> MakeSyntheticTrace(const SyntheticWorkload& workload,
                                        std::size_t requests,
                                        std::uint64_t seed,
                                        std::uint64_t deadline_ns = 0,
                                        std::vector<std::size_t>* pair_out =
                                            nullptr);

}  // namespace ppref::serve

#endif  // PPREF_SERVE_WORKLOAD_H_
