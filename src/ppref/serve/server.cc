#include "ppref/serve/server.h"

#include <algorithm>
#include <exception>
#include <unordered_map>

#include "ppref/circuit/circuit.h"
#include "ppref/circuit/compile.h"
#include "ppref/common/check.h"
#include "ppref/common/clock.h"
#include "ppref/common/fault_injection.h"
#include "ppref/common/hash.h"
#include "ppref/common/parallel.h"
#include "ppref/hard/consensus.h"
#include "ppref/hard/estimator.h"
#include "ppref/hard/world_pool.h"
#include "ppref/infer/internal/dp_plan.h"
#include "ppref/infer/matching.h"
#include "ppref/infer/monte_carlo.h"
#include "ppref/infer/top_prob.h"
#include "ppref/infer/top_prob_minmax.h"
#include "ppref/obs/export.h"
#include "ppref/rim/sampler.h"
#include "ppref/serve/fingerprint.h"
#include "ppref/store/codec.h"
#include "ppref/store/store.h"

namespace ppref::serve {
namespace {

// Result-key domain tags: one per request kind, mixed on top of the plan
// key so the two answers about one (model, pattern) never collide.
// kKeyMcSeed salts the degradation sampler's seed so the fallback stream
// is decorrelated from the result key itself while staying a pure function
// of it (repeat the request, get the identical approximate answer).
enum : std::uint64_t {
  kKeyPatternProb = 0x5051ull,
  kKeyTopMatching = 0x5052ull,
  kKeyMinMax = 0x5053ull,
  kKeyMcSeed = 0x5054ull,
  kKeySweep = 0x5055ull,
  kKeyHard = 0x5056ull,
  kKeyConsensus = 0x5057ull,
};

/// The hard tier's deadline → precision mapping: a tight deadline buys a
/// deterministically coarser answer. A pure function of the deadline
/// *value* (never the clock), so repeating the request reproduces the
/// identical estimate. 0 = no floor.
double DeadlineTargetFloor(std::uint64_t deadline_ns) {
  if (deadline_ns == 0) return 0.0;
  if (deadline_ns < 1'000'000) return 0.05;     // < 1ms
  if (deadline_ns < 10'000'000) return 0.02;    // < 10ms
  if (deadline_ns < 100'000'000) return 0.01;   // < 100ms
  return 0.0;
}

const std::vector<infer::LabelId> kNoTracked;

/// Sentinel slot for requests that never reach the dedup table (shed or
/// invalid): they carry their own terminal response.
constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

std::uint64_t StageIdx(obs::Stage stage) {
  return static_cast<unsigned>(stage);
}

}  // namespace

/// A compiled plan together with owned copies of its borrowed inputs.
/// Never moved after construction: `plan` holds pointers to the `model`
/// and `pattern` members, which is why cache values are shared_ptrs to
/// in-place-constructed entries.
struct Server::CachedPlan {
  infer::LabeledRimModel model;
  infer::LabelPattern pattern;
  std::vector<infer::LabelId> tracked;
  infer::internal::DpPlan plan;

  CachedPlan(const infer::LabeledRimModel& model_in,
             const infer::LabelPattern& pattern_in,
             const std::vector<infer::LabelId>& tracked_in)
      : model(model_in),
        pattern(pattern_in),
        tracked(tracked_in),
        plan(model, pattern, tracked) {}

  /// Restores from a decoded store record: the owned members are moved into
  /// place first (their addresses are stable from here on), then the plan is
  /// rebuilt against them — `DpPlan::FromDerived` borrows model and pattern
  /// exactly like the compiling constructor. When the derived bytes do not
  /// match the decoded inputs (format drift), the plan is compiled fresh
  /// from them instead; `restored` reports which path ran.
  CachedPlan(store::DecodedPlan decoded, bool& restored)
      : model(std::move(decoded.model)),
        pattern(std::move(decoded.pattern)),
        tracked(std::move(decoded.tracked)),
        plan(Rebuild(model, pattern, tracked, decoded.derived, restored)) {}

  CachedPlan(const CachedPlan&) = delete;
  CachedPlan& operator=(const CachedPlan&) = delete;

 private:
  static infer::internal::DpPlan Rebuild(
      const infer::LabeledRimModel& model, const infer::LabelPattern& pattern,
      const std::vector<infer::LabelId>& tracked, std::string_view derived,
      bool& restored) {
    if (auto plan =
            infer::internal::DpPlan::FromDerived(model, pattern, tracked,
                                                 derived)) {
      restored = true;
      return *std::move(plan);
    }
    restored = false;
    return infer::internal::DpPlan(model, pattern, tracked);
  }
};

/// A compiled arithmetic circuit, cached by (model structure, labeling,
/// pattern) — never by Π. Unlike `CachedPlan`, a circuit borrows nothing:
/// its leaves reference Π(t, j) symbolically and are re-bound per
/// evaluation, which is the whole point of caching it.
struct Server::CachedCircuit {
  circuit::Circuit circuit;

  explicit CachedCircuit(circuit::Circuit circuit_in)
      : circuit(std::move(circuit_in)) {}

  CachedCircuit(const CachedCircuit&) = delete;
  CachedCircuit& operator=(const CachedCircuit&) = delete;
};

/// A memoized answer. `top_matching` is engaged only for kTopMatching
/// requests whose best candidate has positive probability (plus the empty
/// pattern's empty matching).
struct Server::CachedResult {
  double probability = 0.0;
  std::optional<infer::Matching> top_matching;
};

/// A memoized hard-tier answer. The key's domain tag decides which half is
/// meaningful: adaptive estimates fill the scalar fields, consensus entries
/// fill `ranking` (full length m — truncation to k happens per response)
/// and the distance statistics. Only answers that are exact functions of
/// the seed are ever inserted, so `deadline_limited` has no field here.
struct Server::CachedHard {
  double estimate = 0.0;
  double std_error = 0.0;
  std::uint64_t n_samples = 0;
  bool target_met = false;
  std::vector<rim::ItemId> ranking;
  double mean_footrule = 0.0;
  double footrule_std_error = 0.0;
  double mean_kendall = 0.0;
  double kendall_std_error = 0.0;
};

/// The terminal disposition of one guarded computation: a status, the
/// answer (exact or approximate), and whether the answer may be published
/// to the result cache (only exact kOk answers are).
struct Server::Outcome {
  Status status;
  CachedResult result;
  bool approximate = false;
  double std_error = 0.0;
  bool cache_ok = false;
};

/// The server's registry-backed instruments. Counters are the `ServerStats`
/// surface (always on, one relaxed add per event — the same cost as the
/// plain atomics they replaced); gauges are refreshed at scrape time;
/// histograms are recorded only under `ServerOptions::latency_histograms`.
struct Server::Instruments {
  // ServerStats counters.
  obs::Counter& requests;
  obs::Counter& batches;
  obs::Counter& batch_deduped;
  obs::Counter& sweep_requests;
  obs::Counter& sweep_points;
  obs::Counter& circuit_compiles;
  obs::Counter& compile_ns;
  obs::Counter& execute_ns;
  obs::Counter& circuit_compile_ns;
  obs::Counter& circuit_eval_ns;
  obs::Counter& shed;
  obs::Counter& invalid;
  obs::Counter& deadline_exceeded;
  obs::Counter& cancelled;
  obs::Counter& degraded;
  obs::Counter& internal_errors;

  // Hard-query tier.
  obs::Counter& hard_requests;
  obs::Counter& hard_batches;
  obs::Counter& hard_samples;
  obs::Counter& hard_target_met;
  obs::Counter& hard_deadline_limited;
  obs::Counter& consensus_requests;

  // Persistent-store counters (all stay zero without a configured store).
  obs::Counter& store_hits;
  obs::Counter& store_misses;
  obs::Counter& store_corrupt;
  obs::Counter& store_load_ns;
  obs::Counter& store_writes;

  // Scrape-time gauges, synced from their sources by SyncScrapeGauges.
  obs::Gauge& in_flight;
  obs::Gauge& in_flight_peak;
  obs::Gauge& plan_cache_hits;
  obs::Gauge& plan_cache_misses;
  obs::Gauge& plan_cache_insertions;
  obs::Gauge& plan_cache_evictions;
  obs::Gauge& result_cache_hits;
  obs::Gauge& result_cache_misses;
  obs::Gauge& result_cache_insertions;
  obs::Gauge& result_cache_evictions;
  obs::Gauge& circuit_cache_hits;
  obs::Gauge& circuit_cache_misses;
  obs::Gauge& circuit_cache_insertions;
  obs::Gauge& circuit_cache_evictions;
  obs::Gauge& hard_cache_hits;
  obs::Gauge& hard_cache_misses;
  obs::Gauge& hard_cache_insertions;
  obs::Gauge& hard_cache_evictions;
  obs::Gauge& traces_published;
  obs::Gauge& store_records;
  obs::Gauge& store_segments;
  obs::Gauge& store_mapped_bytes;
  obs::Gauge& store_disk_bytes;
  obs::Gauge& store_last_flush_age_ns;

  // Latency histograms (nanoseconds).
  obs::Histogram& request_ns;
  obs::Histogram& batch_ns;
  obs::Histogram& admission_ns;
  obs::Histogram& dedup_fold_ns;
  obs::Histogram& queue_ns;
  obs::Histogram& plan_compile_ns;
  obs::Histogram& dp_execute_ns;
  obs::Histogram& mc_fallback_ns;
  obs::Histogram& scatter_ns;
  obs::Histogram& circuit_compile_hist_ns;
  obs::Histogram& circuit_point_ns;
  obs::Histogram& hard_sample_ns;
  obs::Histogram& consensus_ns;

  explicit Instruments(obs::MetricsRegistry& r)
      : requests(r.GetCounter("ppref_serve_requests_total",
                              "Requests accepted, via any entry point")),
        batches(r.GetCounter("ppref_serve_batches_total",
                             "Batches accepted via EvaluateBatch")),
        batch_deduped(r.GetCounter(
            "ppref_serve_batch_deduped_total",
            "Requests answered by sharing a duplicate within their batch")),
        sweep_requests(r.GetCounter("ppref_serve_sweep_requests_total",
                                    "Parameter sweeps accepted")),
        sweep_points(r.GetCounter(
            "ppref_serve_sweep_points_total",
            "Parameter points evaluated against cached circuits")),
        circuit_compiles(r.GetCounter(
            "ppref_serve_circuit_compiles_total",
            "Arithmetic circuits compiled (circuit-cache misses)")),
        compile_ns(r.GetCounter("ppref_serve_compile_ns_total",
                                "Nanoseconds spent compiling DpPlans")),
        execute_ns(r.GetCounter("ppref_serve_execute_ns_total",
                                "Nanoseconds spent executing DPs")),
        circuit_compile_ns(
            r.GetCounter("ppref_serve_circuit_compile_ns_total",
                         "Nanoseconds spent compiling circuits")),
        circuit_eval_ns(r.GetCounter(
            "ppref_serve_circuit_eval_ns_total",
            "Nanoseconds spent evaluating cached circuits over sweeps")),
        shed(r.GetCounter("ppref_serve_shed_total",
                          "Requests shed by admission control")),
        invalid(r.GetCounter("ppref_serve_invalid_total",
                             "Requests rejected by validation")),
        deadline_exceeded(
            r.GetCounter("ppref_serve_deadline_exceeded_total",
                         "Requests stopped by their deadline")),
        cancelled(r.GetCounter("ppref_serve_cancelled_total",
                               "Requests stopped by caller cancellation")),
        degraded(r.GetCounter(
            "ppref_serve_degraded_total",
            "Failed requests answered with a Monte-Carlo fallback")),
        internal_errors(
            r.GetCounter("ppref_serve_internal_errors_total",
                         "Unexpected exceptions mapped to kInternal")),
        hard_requests(r.GetCounter(
            "ppref_hard_requests_total",
            "Hard adaptive-estimate queries accepted (pooled patterns "
            "count singly)")),
        hard_batches(r.GetCounter("ppref_hard_batches_total",
                                  "Pooled hard batches accepted")),
        hard_samples(r.GetCounter(
            "ppref_hard_samples_total",
            "Worlds sampled by the hard tier (summed n_samples)")),
        hard_target_met(r.GetCounter(
            "ppref_hard_target_met_total",
            "Hard answers that reached their precision target")),
        hard_deadline_limited(r.GetCounter(
            "ppref_hard_deadline_limited_total",
            "Hard answers stopped early by a deadline budget")),
        consensus_requests(r.GetCounter("ppref_hard_consensus_requests_total",
                                        "Consensus top-k queries accepted")),
        store_hits(r.GetCounter(
            "ppref_serve_store_hits_total",
            "Cache misses answered by decoding a persistent-store record")),
        store_misses(r.GetCounter(
            "ppref_serve_store_misses_total",
            "Cache misses the persistent store could not answer either")),
        store_corrupt(r.GetCounter(
            "ppref_serve_store_corrupt_total",
            "Persistent-store payloads that failed to decode")),
        store_load_ns(r.GetCounter(
            "ppref_serve_store_load_ns_total",
            "Nanoseconds spent decoding persistent-store records")),
        store_writes(r.GetCounter(
            "ppref_serve_store_writes_total",
            "Records written behind to the persistent store")),
        in_flight(r.GetGauge("ppref_serve_in_flight",
                             "Requests currently being served")),
        in_flight_peak(r.GetGauge("ppref_serve_in_flight_peak",
                                  "High-water mark of in-flight depth")),
        plan_cache_hits(
            r.GetGauge("ppref_serve_plan_cache_hits", "Plan cache hits")),
        plan_cache_misses(
            r.GetGauge("ppref_serve_plan_cache_misses", "Plan cache misses")),
        plan_cache_insertions(r.GetGauge("ppref_serve_plan_cache_insertions",
                                         "Plan cache insertions")),
        plan_cache_evictions(r.GetGauge("ppref_serve_plan_cache_evictions",
                                        "Plan cache evictions")),
        result_cache_hits(
            r.GetGauge("ppref_serve_result_cache_hits", "Result cache hits")),
        result_cache_misses(r.GetGauge("ppref_serve_result_cache_misses",
                                       "Result cache misses")),
        result_cache_insertions(
            r.GetGauge("ppref_serve_result_cache_insertions",
                       "Result cache insertions")),
        result_cache_evictions(r.GetGauge("ppref_serve_result_cache_evictions",
                                          "Result cache evictions")),
        circuit_cache_hits(r.GetGauge("ppref_serve_circuit_cache_hits",
                                      "Circuit cache hits")),
        circuit_cache_misses(r.GetGauge("ppref_serve_circuit_cache_misses",
                                        "Circuit cache misses")),
        circuit_cache_insertions(
            r.GetGauge("ppref_serve_circuit_cache_insertions",
                       "Circuit cache insertions")),
        circuit_cache_evictions(
            r.GetGauge("ppref_serve_circuit_cache_evictions",
                       "Circuit cache evictions")),
        hard_cache_hits(
            r.GetGauge("ppref_hard_cache_hits", "Hard cache hits")),
        hard_cache_misses(
            r.GetGauge("ppref_hard_cache_misses", "Hard cache misses")),
        hard_cache_insertions(r.GetGauge("ppref_hard_cache_insertions",
                                         "Hard cache insertions")),
        hard_cache_evictions(r.GetGauge("ppref_hard_cache_evictions",
                                        "Hard cache evictions")),
        traces_published(
            r.GetGauge("ppref_serve_traces_published",
                       "Trace records ever published (including "
                       "overwritten ones)")),
        store_records(r.GetGauge("ppref_serve_store_records",
                                 "Live records in the persistent store")),
        store_segments(r.GetGauge("ppref_serve_store_segments",
                                  "Persistent-store segment files")),
        store_mapped_bytes(
            r.GetGauge("ppref_serve_store_mapped_bytes",
                       "Persistent-store bytes served via mmap")),
        store_disk_bytes(r.GetGauge("ppref_serve_store_disk_bytes",
                                    "Persistent-store bytes on disk")),
        store_last_flush_age_ns(
            r.GetGauge("ppref_serve_store_last_flush_age_ns",
                       "Nanoseconds since the store's last flush")),
        request_ns(r.GetHistogram("ppref_serve_request_latency_ns",
                                  "End-to-end request latency")),
        batch_ns(r.GetHistogram("ppref_serve_batch_latency_ns",
                                "End-to-end batch latency")),
        admission_ns(r.GetHistogram("ppref_serve_stage_admission_ns",
                                    "Admission control + shedding")),
        dedup_fold_ns(r.GetHistogram(
            "ppref_serve_stage_dedup_fold_ns",
            "Validation, dedup folding, and result-cache probes")),
        queue_ns(r.GetHistogram("ppref_serve_stage_queue_ns",
                                "Wait for a worker to pick a unit up")),
        plan_compile_ns(r.GetHistogram("ppref_serve_stage_plan_compile_ns",
                                       "DpPlan compilation")),
        dp_execute_ns(r.GetHistogram("ppref_serve_stage_dp_execute_ns",
                                     "Exact DP execution")),
        mc_fallback_ns(r.GetHistogram("ppref_serve_stage_mc_fallback_ns",
                                      "Monte-Carlo degradation sampling")),
        scatter_ns(r.GetHistogram("ppref_serve_stage_scatter_ns",
                                  "Result publication + response scatter")),
        circuit_compile_hist_ns(
            r.GetHistogram("ppref_serve_stage_circuit_compile_ns",
                           "Arithmetic-circuit compilation")),
        circuit_point_ns(
            r.GetHistogram("ppref_serve_stage_circuit_eval_ns",
                           "Cached-circuit evaluation, per sweep point")),
        hard_sample_ns(
            r.GetHistogram("ppref_hard_stage_sample_ns",
                           "Adaptive Monte-Carlo sampling, per hard query")),
        consensus_ns(r.GetHistogram(
            "ppref_hard_stage_consensus_ns",
            "Consensus sampling + footrule aggregation, per query")) {}
};

/// Scoped in-flight depth accounting: admission increments, completion
/// decrements, and the peak watermark is maintained with a CAS loop.
/// Legacy entry points admit unconditionally through this; the status
/// entry points go through TryAdmit/AdmissionRelease instead, which
/// respect max_in_flight.
class Server::InFlight {
 public:
  InFlight(Server& server, std::uint64_t count) : server_(server), count_(count) {
    const std::uint64_t now =
        server_.in_flight_.fetch_add(count_, std::memory_order_relaxed) + count_;
    std::uint64_t peak = server_.in_flight_peak_.load(std::memory_order_relaxed);
    while (peak < now && !server_.in_flight_peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  ~InFlight() { server_.in_flight_.fetch_sub(count_, std::memory_order_relaxed); }

 private:
  Server& server_;
  std::uint64_t count_;
};

/// RAII release of TryAdmit'ed slots (release exactly what was granted,
/// which may be fewer than requested under load shedding).
class Server::AdmissionRelease {
 public:
  AdmissionRelease(Server& server, std::size_t granted)
      : server_(server), granted_(granted) {}
  ~AdmissionRelease() {
    server_.in_flight_.fetch_sub(granted_, std::memory_order_relaxed);
  }

  AdmissionRelease(const AdmissionRelease&) = delete;
  AdmissionRelease& operator=(const AdmissionRelease&) = delete;

 private:
  Server& server_;
  std::size_t granted_;
};

Server::Server(ServerOptions options)
    : options_(options),
      effective_threads_(ClampThreads(options.threads)),
      plan_cache_(options.plan_cache_capacity, options.cache_shards),
      result_cache_(options.result_cache_capacity, options.cache_shards),
      circuit_cache_(options.circuit_cache_capacity, options.cache_shards),
      hard_cache_(options.hard_cache_capacity, options.cache_shards),
      owned_registry_(options.registry == nullptr
                          ? std::make_unique<obs::MetricsRegistry>()
                          : nullptr),
      registry_(options.registry != nullptr ? options.registry
                                            : owned_registry_.get()),
      instruments_(std::make_unique<Instruments>(*registry_)),
      tracer_(options.trace_capacity, options.trace_sample_permyriad) {}

Server::~Server() = default;

Status Server::Validate(const Request& request) const {
  if (request.model == nullptr) {
    return Status::InvalidArgument("request.model is null");
  }
  if (request.pattern == nullptr) {
    return Status::InvalidArgument("request.pattern is null");
  }
  if (request.kind != Request::Kind::kPatternProb &&
      request.kind != Request::Kind::kTopMatching) {
    return Status::InvalidArgument("unknown request kind");
  }
  if (request.model->size() >= infer::internal::kUnsetPosition) {
    return Status::InvalidArgument(
        "model too large for the 16-bit DP position encoding");
  }
  // A pattern node whose label no item carries can never match; the DP
  // handles it (probability 0), but at the serving boundary it is far more
  // likely a malformed request than a deliberate query, so refuse it with a
  // diagnostic instead of silently answering 0.
  const infer::ItemLabeling& labeling = request.model->labeling();
  for (unsigned node = 0; node < request.pattern->NodeCount(); ++node) {
    const infer::LabelId label = request.pattern->NodeLabel(node);
    if (labeling.ItemsWith(label).empty()) {
      return Status::InvalidArgument("pattern label " + std::to_string(label) +
                                     " matches no item of the model");
    }
  }
  return Status::Ok();
}

std::size_t Server::TryAdmit(std::size_t want) {
  std::size_t granted = want;
  if (options_.max_in_flight == 0) {
    in_flight_.fetch_add(want, std::memory_order_relaxed);
  } else {
    // CAS loop: claim as many of `want` slots as fit under the limit.
    std::uint64_t current = in_flight_.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t room =
          current >= options_.max_in_flight
              ? 0
              : static_cast<std::uint64_t>(options_.max_in_flight) - current;
      granted = static_cast<std::size_t>(
          std::min<std::uint64_t>(want, room));
      if (granted == 0) return 0;
      if (in_flight_.compare_exchange_weak(current, current + granted,
                                           std::memory_order_relaxed)) {
        break;
      }
    }
  }
  const std::uint64_t now =
      in_flight_.load(std::memory_order_relaxed);
  std::uint64_t peak = in_flight_peak_.load(std::memory_order_relaxed);
  while (peak < now && !in_flight_peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return granted;
}

std::uint64_t Server::RetryAfterHintNs() const {
  // Heuristic: the observed mean busy time per request. A fresh server has
  // no history, so floor at 1ms — long enough to be a meaningful backoff,
  // short enough not to stall a caller on an idle server.
  const std::uint64_t served =
      std::max<std::uint64_t>(1, instruments_->requests.Value());
  const std::uint64_t busy =
      instruments_->compile_ns.Value() + instruments_->execute_ns.Value();
  return std::max<std::uint64_t>(1'000'000, busy / served);
}

std::shared_ptr<const Server::CachedResult> Server::LookupResult(
    std::uint64_t result_key) {
  if (PPREF_FAULT_FORCED_RESULT_MISS()) return nullptr;
  if (auto hit = result_cache_.Get(result_key)) return hit;
  if (options_.store == nullptr) return nullptr;
  const auto fetch = options_.store->Get(store::RecordKind::kResult, result_key);
  if (!fetch.has_value()) {
    instruments_->store_misses.Inc();
    return nullptr;
  }
  const std::uint64_t start = MonotonicNowNs();
  auto decoded = store::DecodeResultPayload(fetch->bytes);
  if (!decoded.has_value()) {
    instruments_->store_corrupt.Inc();
    instruments_->store_misses.Inc();
    return nullptr;
  }
  instruments_->store_load_ns.Inc(MonotonicNowNs() - start);
  instruments_->store_hits.Inc();
  // Promote into the LRU so the next lookup skips the decode.
  return result_cache_.Put(
      result_key,
      std::make_shared<const CachedResult>(CachedResult{
          decoded->probability, std::move(decoded->top_matching)}));
}

std::shared_ptr<const Server::CachedPlan> Server::LoadPlanFromStore(
    std::uint64_t plan_key, obs::TraceRecord* trace) {
  if (options_.store == nullptr) return nullptr;
  const auto fetch = options_.store->Get(store::RecordKind::kPlan, plan_key);
  if (!fetch.has_value()) {
    instruments_->store_misses.Inc();
    return nullptr;
  }
  const obs::TraceSpan span(trace, obs::Stage::kStoreLoad);
  const std::uint64_t start = MonotonicNowNs();
  auto decoded = store::DecodePlanPayload(fetch->bytes);
  if (!decoded.has_value()) {
    instruments_->store_corrupt.Inc();
    instruments_->store_misses.Inc();
    return nullptr;
  }
  // A plan record is self-contained: the decoded model/pattern/tracked plus
  // the derived state rebuild the DpPlan without compiling (the normal
  // path); derived bytes from a drifted build fall back to compiling from
  // the decoded inputs, which is still correct — just not fast.
  bool restored = false;
  auto entry = std::make_shared<const CachedPlan>(*std::move(decoded), restored);
  instruments_->store_load_ns.Inc(MonotonicNowNs() - start);
  if (!restored) instruments_->store_corrupt.Inc();
  instruments_->store_hits.Inc();
  return entry;
}

std::shared_ptr<const Server::CachedCircuit> Server::LoadCircuitFromStore(
    std::uint64_t circuit_key, obs::TraceRecord* trace) {
  if (options_.store == nullptr) return nullptr;
  auto fetch = options_.store->Get(store::RecordKind::kCircuit, circuit_key);
  if (!fetch.has_value()) {
    instruments_->store_misses.Inc();
    return nullptr;
  }
  const obs::TraceSpan span(trace, obs::Stage::kStoreLoad);
  const std::uint64_t start = MonotonicNowNs();
  // The fetch's owner rides into the circuit: a record served out of a
  // mapped segment is borrowed zero-copy, and the mapping stays alive for
  // as long as the cached circuit does.
  auto circuit =
      store::DecodeCircuitPayload(fetch->bytes, std::move(fetch->owner));
  if (!circuit.has_value()) {
    instruments_->store_corrupt.Inc();
    instruments_->store_misses.Inc();
    return nullptr;
  }
  instruments_->store_load_ns.Inc(MonotonicNowNs() - start);
  instruments_->store_hits.Inc();
  return std::make_shared<const CachedCircuit>(*std::move(circuit));
}

void Server::StoreResult(std::uint64_t result_key, const CachedResult& result) {
  if (options_.store == nullptr) return;
  instruments_->store_writes.Inc();
  options_.store->Put(
      store::RecordKind::kResult, result_key,
      store::EncodeResultPayload(result.probability, result.top_matching));
}

std::shared_ptr<const Server::CachedPlan> Server::PlanFor(
    const infer::LabeledRimModel& model, const infer::LabelPattern& pattern,
    const std::vector<infer::LabelId>& tracked, std::uint64_t plan_key,
    const RunControl* control, obs::TraceRecord* trace) {
  const auto compile = [&]() -> std::shared_ptr<const CachedPlan> {
    PPREF_FAULT_PLAN_COMPILE();
    if (control != nullptr) control->Check();
    if (auto loaded = LoadPlanFromStore(plan_key, trace)) return loaded;
    const obs::TraceSpan span(trace, obs::Stage::kPlanCompile);
    const std::uint64_t start = MonotonicNowNs();
    auto entry = std::make_shared<const CachedPlan>(model, pattern, tracked);
    const std::uint64_t elapsed = MonotonicNowNs() - start;
    instruments_->compile_ns.Inc(elapsed);
    if (options_.latency_histograms) {
      instruments_->plan_compile_ns.Record(elapsed);
    }
    if (options_.store != nullptr) {
      instruments_->store_writes.Inc();
      options_.store->Put(store::RecordKind::kPlan, plan_key,
                          store::EncodePlanPayload(entry->model, entry->pattern,
                                                   entry->tracked, entry->plan));
    }
    return entry;
  };
  if (PPREF_FAULT_FORCED_PLAN_MISS()) {
    // Miss-storm injection: compile fresh, bypassing the cache entirely so
    // every request pays the full compile cost (and the single-flight path
    // is not exercised — that is the point of this knob: worst case).
    return compile();
  }
  // Single-flight: concurrent misses on one key coalesce into a single
  // compilation; under this path plan_cache().misses equals the number of
  // actual compilations.
  return plan_cache_.GetOrCompute(
      plan_key, compile,
      control != nullptr ? &control->deadline : nullptr,
      control != nullptr ? control->cancel : nullptr);
}

std::shared_ptr<const Server::CachedCircuit> Server::CircuitFor(
    const infer::LabeledRimModel& model, const infer::LabelPattern& pattern,
    std::uint64_t circuit_key, const RunControl* control,
    obs::TraceRecord* trace) {
  const auto compile = [&]() -> std::shared_ptr<const CachedCircuit> {
    if (control != nullptr) control->Check();
    if (auto loaded = LoadCircuitFromStore(circuit_key, trace)) return loaded;
    // Circuits compile *from* plans, so a sweep warms the plan cache for
    // later point queries against the same (model, pattern) — and reuses a
    // plan such queries already compiled.
    const std::shared_ptr<const CachedPlan> plan =
        PlanFor(model, pattern, kNoTracked,
                PlanKey(model, pattern, kNoTracked), control, trace);
    const obs::TraceSpan span(trace, obs::Stage::kCircuitCompile);
    const std::uint64_t start = MonotonicNowNs();
    auto entry = std::make_shared<const CachedCircuit>(
        circuit::CompilePatternProb(plan->plan));
    const std::uint64_t elapsed = MonotonicNowNs() - start;
    instruments_->circuit_compiles.Inc();
    instruments_->circuit_compile_ns.Inc(elapsed);
    if (options_.latency_histograms) {
      instruments_->circuit_compile_hist_ns.Record(elapsed);
    }
    if (options_.store != nullptr) {
      instruments_->store_writes.Inc();
      options_.store->Put(store::RecordKind::kCircuit, circuit_key,
                          store::EncodeCircuitPayload(entry->circuit));
    }
    return entry;
  };
  return circuit_cache_.GetOrCompute(
      circuit_key, compile,
      control != nullptr ? &control->deadline : nullptr,
      control != nullptr ? control->cancel : nullptr);
}

Server::CachedResult Server::Compute(const Request& request,
                                     std::uint64_t plan_key,
                                     const RunControl* control,
                                     obs::TraceRecord* trace) {
  // Internal invariant, not input validation: the status entry points have
  // already validated, and the legacy entry points are documented
  // trusted-caller paths.
  PPREF_CHECK(request.model != nullptr && request.pattern != nullptr);
  // Fail an already-stopped request before touching the caches: a cached
  // plan plus a small DP could otherwise finish inside the stop window and
  // make "deadline 0" sometimes succeed.
  if (control != nullptr) control->Check();
  std::shared_ptr<const CachedPlan> plan;
  {
    // The cache-wait span covers the whole plan resolution, including a
    // compile done by this thread; the finalize step subtracts the nested
    // plan_compile span, leaving the pure wait-or-lookup time.
    const obs::TraceSpan span(trace, obs::Stage::kCacheWait);
    plan = PlanFor(*request.model, *request.pattern, kNoTracked, plan_key,
                   control, trace);
  }
  infer::PatternProbOptions exec;
  exec.threads = options_.matching_threads;
  exec.control = control;
  CachedResult result;
  const obs::TraceSpan span(trace, obs::Stage::kDpExecute);
  const std::uint64_t start = MonotonicNowNs();
  const auto account = [&] {
    // Count the time spent even when the DP is stopped mid-scan, so the
    // retry-after hint reflects what failed work actually cost.
    const std::uint64_t elapsed = MonotonicNowNs() - start;
    instruments_->execute_ns.Inc(elapsed);
    if (options_.latency_histograms) {
      instruments_->dp_execute_ns.Record(elapsed);
    }
  };
  try {
    if (request.kind == Request::Kind::kPatternProb) {
      result.probability = infer::PatternProbWithPlan(plan->plan, exec);
    } else {
      if (auto best = infer::MostProbableTopMatchingWithPlan(plan->plan, exec)) {
        result.probability = best->second;
        result.top_matching = std::move(best->first);
      }
    }
  } catch (...) {
    account();
    throw;
  }
  account();
  return result;
}

Server::Outcome Server::Degrade(const Request& request,
                                std::uint64_t result_key,
                                std::uint64_t deadline_ns, Status status,
                                obs::TraceRecord* trace) {
  instruments_->degraded.Inc();
  Outcome outcome;
  outcome.status = std::move(status);
  outcome.approximate = true;
  // Seeded from the request fingerprint: repeating the request reproduces
  // the identical approximate answer (the seeded block decomposition makes
  // the estimate thread-count independent, and threads=1 keeps the
  // fallback from competing with healthy exact work for cores). The
  // fallback honors cancellation but deliberately not the already-blown
  // deadline — it is the bounded-cost answer served *because* the deadline
  // fired, sized by degraded_samples rather than time. The deadline still
  // matters deterministically: its *value* maps to a precision target, so a
  // request with a near-dead deadline stops sampling as soon as the CI
  // half-width reaches the (coarse) floor instead of always spending the
  // full budget — an honest, wider-std_error answer. No deadline (size
  // guard degrades) disables the precision stop, which reduces bit-exactly
  // to the fixed-budget estimate.
  RunControl cancel_only;
  cancel_only.cancel = request.control.cancel;
  const RunControl* control =
      request.control.cancel != nullptr ? &cancel_only : nullptr;
  const obs::TraceSpan span(trace, obs::Stage::kMcFallback);
  const bool timed = options_.latency_histograms;
  const std::uint64_t start = timed ? MonotonicNowNs() : 0;
  try {
    if (request.kind == Request::Kind::kPatternProb) {
      hard::AdaptiveOptions adaptive;
      adaptive.target_half_width = DeadlineTargetFloor(deadline_ns);
      adaptive.z = options_.hard_z;
      adaptive.min_samples = options_.hard_min_samples;
      adaptive.max_samples = std::max(1u, options_.degraded_samples);
      adaptive.threads = 1;
      adaptive.seed = HashCombine(result_key, kKeyMcSeed);
      adaptive.control = control;
      const infer::LabeledRimModel& model = *request.model;
      const infer::LabelPattern& pattern = *request.pattern;
      const hard::AdaptiveEstimate estimate = hard::EstimateBernoulliAdaptive(
          adaptive, [&](Rng& rng, unsigned begin, unsigned end) {
            unsigned hits = 0;
            for (unsigned s = begin; s < end; ++s) {
              const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
              if (infer::Matches(pattern, model.labeling(), tau)) ++hits;
            }
            return hits;
          });
      outcome.result.probability = estimate.estimate;
      outcome.std_error = estimate.std_error;
    } else {
      infer::McOptions mc;
      mc.samples = std::max(1u, options_.degraded_samples);
      mc.threads = 1;
      mc.seed = HashCombine(result_key, kKeyMcSeed);
      mc.control = control;
      const infer::McTopMatching top =
          infer::TopMatchingMonteCarlo(*request.model, *request.pattern, mc);
      outcome.result.probability = top.frequency;
      if (top.frequency > 0.0) outcome.result.top_matching = top.matching;
      outcome.std_error = top.std_error;
    }
  } catch (const CancelledError&) {
    instruments_->cancelled.Inc();
    outcome = Outcome{};
    outcome.status = Status::Cancelled("cancelled during degraded sampling");
  }
  if (timed) instruments_->mc_fallback_ns.Record(MonotonicNowNs() - start);
  return outcome;
}

Server::Outcome Server::ComputeGuarded(const Request& request,
                                       std::uint64_t plan_key,
                                       std::uint64_t result_key,
                                       std::uint64_t deadline_ns,
                                       const RunControl* control,
                                       obs::TraceRecord* trace) {
  // Size guard first: an over-budget pattern is refused (or degraded)
  // *before* any exponential work starts. The size-guard fallback carries
  // no deadline mapping — the pattern, not time pressure, is the problem —
  // so it always spends the full degraded budget, deterministically.
  if (options_.max_pattern_nodes != 0 &&
      request.pattern->NodeCount() > options_.max_pattern_nodes) {
    Status status = Status::ResourceExhausted(
        "pattern has " + std::to_string(request.pattern->NodeCount()) +
        " nodes, over the server limit of " +
        std::to_string(options_.max_pattern_nodes));
    if (options_.degradation == ServerOptions::Degradation::kMonteCarlo) {
      return Degrade(request, result_key, /*deadline_ns=*/0, std::move(status),
                     trace);
    }
    Outcome outcome;
    outcome.status = std::move(status);
    return outcome;
  }
  try {
    Outcome outcome;
    outcome.result = Compute(request, plan_key, control, trace);
    outcome.status = Status::Ok();
    outcome.cache_ok = true;
    return outcome;
  } catch (const CancelledError& e) {
    instruments_->cancelled.Inc();
    Outcome outcome;
    outcome.status = Status::Cancelled(e.what());
    return outcome;
  } catch (const DeadlineExceededError& e) {
    instruments_->deadline_exceeded.Inc();
    Status status = Status::DeadlineExceeded(e.what());
    if (options_.degradation == ServerOptions::Degradation::kMonteCarlo) {
      return Degrade(request, result_key, deadline_ns, std::move(status),
                     trace);
    }
    Outcome outcome;
    outcome.status = std::move(status);
    return outcome;
  } catch (const std::exception& e) {
    instruments_->internal_errors.Inc();
    Outcome outcome;
    outcome.status = Status::Internal(e.what());
    return outcome;
  } catch (...) {
    instruments_->internal_errors.Inc();
    Outcome outcome;
    outcome.status = Status::Internal("unknown exception during compute");
    return outcome;
  }
}

double Server::PatternProbability(const infer::LabeledRimModel& model,
                                  const infer::LabelPattern& pattern) {
  instruments_->requests.Inc();
  const InFlight guard(*this, 1);
  const std::uint64_t plan_key = PlanKey(model, pattern, kNoTracked);
  const std::uint64_t result_key = HashCombine(plan_key, kKeyPatternProb);
  if (auto hit = LookupResult(result_key)) return hit->probability;
  Request request;
  request.kind = Request::Kind::kPatternProb;
  request.model = &model;
  request.pattern = &pattern;
  const std::shared_ptr<const CachedResult> value = result_cache_.Put(
      result_key,
      std::make_shared<const CachedResult>(Compute(request, plan_key)));
  StoreResult(result_key, *value);
  return value->probability;
}

std::optional<std::pair<infer::Matching, double>> Server::MostProbableTopMatching(
    const infer::LabeledRimModel& model, const infer::LabelPattern& pattern) {
  instruments_->requests.Inc();
  const InFlight guard(*this, 1);
  const std::uint64_t plan_key = PlanKey(model, pattern, kNoTracked);
  const std::uint64_t result_key = HashCombine(plan_key, kKeyTopMatching);
  std::shared_ptr<const CachedResult> value = LookupResult(result_key);
  if (!value) {
    Request request;
    request.kind = Request::Kind::kTopMatching;
    request.model = &model;
    request.pattern = &pattern;
    value = result_cache_.Put(
        result_key,
        std::make_shared<const CachedResult>(Compute(request, plan_key)));
    StoreResult(result_key, *value);
  }
  if (!value->top_matching.has_value()) return std::nullopt;
  return std::make_pair(*value->top_matching, value->probability);
}

double Server::PatternMinMaxProbability(
    const infer::LabeledRimModel& model, const infer::LabelPattern& pattern,
    const std::vector<infer::LabelId>& tracked,
    const infer::MinMaxCondition& condition,
    std::uint64_t condition_fingerprint) {
  instruments_->requests.Inc();
  const InFlight guard(*this, 1);
  const std::uint64_t plan_key = PlanKey(model, pattern, tracked);
  const bool cacheable = condition_fingerprint != 0;
  const std::uint64_t result_key =
      HashCombine(HashCombine(plan_key, kKeyMinMax), condition_fingerprint);
  if (cacheable) {
    if (auto hit = LookupResult(result_key)) return hit->probability;
  }
  const std::shared_ptr<const CachedPlan> plan =
      PlanFor(model, pattern, tracked, plan_key);
  infer::PatternProbOptions exec;
  exec.threads = options_.matching_threads;
  const std::uint64_t start = MonotonicNowNs();
  const double probability =
      infer::PatternMinMaxProbWithPlan(plan->plan, condition, exec);
  const std::uint64_t elapsed = MonotonicNowNs() - start;
  instruments_->execute_ns.Inc(elapsed);
  if (options_.latency_histograms) instruments_->dp_execute_ns.Record(elapsed);
  if (cacheable) {
    const CachedResult cached{probability, std::nullopt};
    result_cache_.Put(result_key, std::make_shared<const CachedResult>(cached));
    StoreResult(result_key, cached);
  }
  return probability;
}

Response Server::Evaluate(const Request& request) {
  const std::vector<Request> batch{request};
  return EvaluateBatch(batch).front();
}

StatusOr<std::vector<double>> Server::PatternProbSweep(
    const infer::LabeledRimModel& model, const infer::LabelPattern& pattern,
    const std::vector<std::vector<double>>& params,
    const RequestControl& control) {
  instruments_->requests.Inc();
  instruments_->sweep_requests.Inc();

  // Validation: the shared request checks, then the sweep-specific shape
  // of the parameter grid. Dispersions are range-checked *here* so a bad
  // point comes back as kInvalidArgument instead of aborting inside the
  // Mallows constructor.
  Request probe;
  probe.kind = Request::Kind::kPatternProb;
  probe.model = &model;
  probe.pattern = &pattern;
  if (Status status = Validate(probe); !status.ok()) {
    instruments_->invalid.Inc();
    return status;
  }
  const unsigned m = model.model().size();
  for (std::size_t i = 0; i < params.size(); ++i) {
    const std::vector<double>& point = params[i];
    if (point.size() != 1 && point.size() != m) {
      instruments_->invalid.Inc();
      return Status::InvalidArgument(
          "params[" + std::to_string(i) + "] has " +
          std::to_string(point.size()) + " dispersions; expected 1 (Mallows) "
          "or " + std::to_string(m) + " (generalized Mallows)");
    }
    for (double phi : point) {
      if (!(phi > 0.0 && phi <= 1.0)) {
        instruments_->invalid.Inc();
        return Status::InvalidArgument("dispersion in params[" +
                                       std::to_string(i) +
                                       "] is outside (0, 1]");
      }
    }
  }
  // The size guard applies as to any other request; sweeps are an
  // exact-only modality, so there is no Monte-Carlo fallback here.
  if (options_.max_pattern_nodes != 0 &&
      pattern.NodeCount() > options_.max_pattern_nodes) {
    return Status::ResourceExhausted(
        "pattern has " + std::to_string(pattern.NodeCount()) +
        " nodes, over the server limit of " +
        std::to_string(options_.max_pattern_nodes));
  }

  // One admission slot covers the whole sweep: the expensive part (compile)
  // happens once, and per-point evaluation is a linear arena pass.
  if (TryAdmit(1) == 0) {
    instruments_->shed.Inc();
    return Status::ResourceExhausted(
        "shed by admission control (server full); retry after " +
        std::to_string(RetryAfterHintNs()) + "ns");
  }
  const AdmissionRelease release(*this, 1);

  const std::uint64_t circuit_key = CircuitKey(model, pattern);
  const std::uint64_t deadline_ns = control.deadline_ns != 0
                                        ? control.deadline_ns
                                        : options_.default_deadline_ns;
  const bool has_control = deadline_ns != 0 || control.cancel != nullptr;
  RunControl run;
  if (deadline_ns != 0) run.deadline = Deadline::After(deadline_ns);
  run.cancel = control.cancel;

  // Deterministic trace sampling, keyed like everything else on content:
  // the circuit key in the sweep domain.
  obs::TraceRecord trace_storage;
  obs::TraceRecord* trace = nullptr;
  const std::uint64_t sweep_fingerprint = HashCombine(circuit_key, kKeySweep);
  if (tracer_.sample_permyriad() > 0 &&
      tracer_.ShouldSample(sweep_fingerprint)) {
    trace = &trace_storage;
    trace->fingerprint = sweep_fingerprint;
    trace->start_ns = MonotonicNowNs();
  }

  try {
    const std::shared_ptr<const CachedCircuit> entry =
        CircuitFor(model, pattern, circuit_key,
                   has_control ? &run : nullptr, trace);
    std::vector<double> answers(params.size());
    circuit::EvalScratch scratch;
    const obs::TraceSpan span(trace, obs::Stage::kCircuitEval);
    const std::uint64_t start = MonotonicNowNs();
    // Points run through the blocked evaluator in chunks: one arena pass
    // covers kEvalLanes bindings, and cancellation/deadline is polled at
    // chunk granularity (a chunk is a few arena scans, bounded work).
    constexpr std::size_t kSweepChunk = 8 * circuit::kEvalLanes;
    std::vector<rim::InsertionFunction> bindings;
    bindings.reserve(std::min(params.size(), kSweepChunk));
    for (std::size_t begin = 0; begin < params.size();
         begin += kSweepChunk) {
      if (has_control) run.Check();
      const std::size_t end = std::min(begin + kSweepChunk, params.size());
      bindings.clear();
      for (std::size_t i = begin; i < end; ++i) {
        const std::vector<double>& point = params[i];
        bindings.push_back(
            point.size() == 1
                ? rim::InsertionFunction::Mallows(m, point[0])
                : rim::InsertionFunction::GeneralizedMallows(point));
      }
      entry->circuit.EvaluateMany(bindings.data(), bindings.size(), scratch,
                                  answers.data() + begin);
    }
    const std::uint64_t elapsed = MonotonicNowNs() - start;
    instruments_->circuit_eval_ns.Inc(elapsed);
    instruments_->sweep_points.Inc(params.size());
    if (options_.latency_histograms && !params.empty()) {
      instruments_->circuit_point_ns.RecordMany(elapsed / params.size(),
                                                params.size());
    }
    if (trace != nullptr) {
      trace->end_ns = MonotonicNowNs();
      trace->status_code = static_cast<std::uint8_t>(StatusCode::kOk);
      tracer_.Publish(*trace);
    }
    return answers;
  } catch (const CancelledError& e) {
    instruments_->cancelled.Inc();
    return Status::Cancelled(e.what());
  } catch (const DeadlineExceededError& e) {
    instruments_->deadline_exceeded.Inc();
    return Status::DeadlineExceeded(e.what());
  } catch (const std::exception& e) {
    instruments_->internal_errors.Inc();
    return Status::Internal(e.what());
  } catch (...) {
    instruments_->internal_errors.Inc();
    return Status::Internal("unknown exception during sweep");
  }
}

double Server::EffectiveHardTarget(double target_half_width,
                                   std::uint64_t deadline_ns) const {
  const double requested = target_half_width > 0.0
                               ? target_half_width
                               : options_.hard_default_target;
  return std::max(requested, DeadlineTargetFloor(deadline_ns));
}

std::uint64_t Server::HardSeed(const infer::LabeledRimModel& model) const {
  // A function of the model *structure and parameters* plus the block
  // decomposition only — never of any pattern — so every hard query against
  // one model draws the identical world stream, which is what lets pooled
  // and solo answers share cache entries bit for bit.
  StreamHash hash;
  hash.Mix(FingerprintModel(model.model()));
  hash.Mix(kKeyHard);
  hash.Mix(options_.hard_max_samples);
  hash.Mix(options_.hard_block_samples);
  return HashCombine(hash.digest(), kKeyMcSeed);
}

std::uint64_t Server::HardKey(std::uint64_t plan_key,
                              double effective_target) const {
  StreamHash hash;
  hash.Mix(plan_key);
  hash.Mix(kKeyHard);
  hash.MixDouble(effective_target);
  hash.MixDouble(options_.hard_z);
  hash.Mix(options_.hard_min_samples);
  hash.Mix(options_.hard_max_samples);
  hash.Mix(options_.hard_block_samples);
  return hash.digest();
}

StatusOr<HardEstimate> Server::HardPatternProb(
    const infer::LabeledRimModel& model, const infer::LabelPattern& pattern,
    double target_half_width, const RequestControl& control) {
  std::vector<const infer::LabelPattern*> patterns{&pattern};
  StatusOr<std::vector<HardEstimate>> pooled =
      HardPatternProbBatch(model, patterns, target_half_width, control);
  if (!pooled.ok()) return pooled.status();
  return std::move(pooled->front());
}

StatusOr<std::vector<HardEstimate>> Server::HardPatternProbBatch(
    const infer::LabeledRimModel& model,
    const std::vector<const infer::LabelPattern*>& patterns,
    double target_half_width, const RequestControl& control) {
  instruments_->requests.Inc();
  instruments_->hard_batches.Inc();
  instruments_->hard_requests.Inc(patterns.size());

  // Validation: every pattern passes the shared request checks against the
  // one model. A bad pattern fails the whole batch — partial pooled batches
  // would silently change which queries share the world stream's cost.
  for (std::size_t q = 0; q < patterns.size(); ++q) {
    Request probe;
    probe.kind = Request::Kind::kPatternProb;
    probe.model = &model;
    probe.pattern = patterns[q];
    if (Status status = Validate(probe); !status.ok()) {
      instruments_->invalid.Inc();
      return Status::InvalidArgument("patterns[" + std::to_string(q) +
                                     "]: " + status.message());
    }
  }
  if (patterns.empty()) return std::vector<HardEstimate>{};

  // One admission slot covers the whole pooled batch — the expensive part
  // (the shared world stream) is drawn once, however many queries ride it.
  if (TryAdmit(1) == 0) {
    instruments_->shed.Inc();
    return Status::ResourceExhausted(
        "shed by admission control (server full); retry after " +
        std::to_string(RetryAfterHintNs()) + "ns");
  }
  const AdmissionRelease release(*this, 1);

  const std::uint64_t deadline_ns = control.deadline_ns != 0
                                        ? control.deadline_ns
                                        : options_.default_deadline_ns;
  const double target = EffectiveHardTarget(target_half_width, deadline_ns);

  // Per-query keys and cache probes. Pooled answers are bit-identical to
  // solo ones (the world stream is seeded from the model alone and each
  // query's stopping rule is query-local), so cached and freshly pooled
  // answers mix freely; only the misses sample.
  std::vector<std::uint64_t> keys(patterns.size());
  std::vector<HardEstimate> answers(patterns.size());
  std::vector<std::size_t> misses;
  for (std::size_t q = 0; q < patterns.size(); ++q) {
    keys[q] = HardKey(PlanKey(model, *patterns[q], kNoTracked), target);
    if (const auto hit = hard_cache_.Get(keys[q])) {
      answers[q].estimate = hit->estimate;
      answers[q].std_error = hit->std_error;
      answers[q].n_samples = hit->n_samples;
      answers[q].target_met = hit->target_met;
      continue;
    }
    misses.push_back(q);
  }
  if (misses.empty()) return answers;

  // Deterministic trace sampling, keyed on the first miss's hard key.
  obs::TraceRecord trace_storage;
  obs::TraceRecord* trace = nullptr;
  if (tracer_.sample_permyriad() > 0 &&
      tracer_.ShouldSample(keys[misses.front()])) {
    trace = &trace_storage;
    trace->fingerprint = keys[misses.front()];
    trace->start_ns = MonotonicNowNs();
  }

  hard::AdaptiveOptions adaptive;
  adaptive.target_half_width = target;
  adaptive.z = options_.hard_z;
  adaptive.min_samples = options_.hard_min_samples;
  adaptive.max_samples = std::max(1u, options_.hard_max_samples);
  adaptive.block_samples = std::max(1u, options_.hard_block_samples);
  adaptive.threads = effective_threads_;
  adaptive.seed = HardSeed(model);
  RunControl cancel_only;
  cancel_only.cancel = control.cancel;
  adaptive.control = control.cancel != nullptr ? &cancel_only : nullptr;
  // The deadline is the non-throwing between-rounds budget: expiry yields
  // honest deadline-limited answers, not an exception.
  Deadline budget;
  if (deadline_ns != 0) budget = Deadline::After(deadline_ns);
  adaptive.budget = &budget;

  std::vector<const infer::LabelPattern*> miss_patterns;
  miss_patterns.reserve(misses.size());
  for (const std::size_t q : misses) miss_patterns.push_back(patterns[q]);

  try {
    std::vector<hard::AdaptiveEstimate> pooled;
    {
      const obs::TraceSpan span(trace, obs::Stage::kHardSample);
      const bool timed = options_.latency_histograms;
      const std::uint64_t start = timed ? MonotonicNowNs() : 0;
      pooled = hard::EstimatePatternProbsPooled(model, miss_patterns, adaptive);
      if (timed) {
        instruments_->hard_sample_ns.Record(MonotonicNowNs() - start);
      }
    }
    for (std::size_t i = 0; i < misses.size(); ++i) {
      const hard::AdaptiveEstimate& estimate = pooled[i];
      const std::size_t q = misses[i];
      answers[q].estimate = estimate.estimate;
      answers[q].std_error = estimate.std_error;
      answers[q].n_samples = estimate.n_samples;
      answers[q].target_met = estimate.target_met;
      answers[q].deadline_limited = estimate.deadline_limited;
      instruments_->hard_samples.Inc(estimate.n_samples);
      if (estimate.target_met) instruments_->hard_target_met.Inc();
      if (estimate.deadline_limited) {
        // Honest but wall-clock dependent — never cached.
        instruments_->hard_deadline_limited.Inc();
        continue;
      }
      CachedHard cached;
      cached.estimate = estimate.estimate;
      cached.std_error = estimate.std_error;
      cached.n_samples = estimate.n_samples;
      cached.target_met = estimate.target_met;
      hard_cache_.Put(keys[q],
                      std::make_shared<const CachedHard>(std::move(cached)));
    }
    if (trace != nullptr) {
      trace->end_ns = MonotonicNowNs();
      trace->status_code = static_cast<std::uint8_t>(StatusCode::kOk);
      tracer_.Publish(*trace);
    }
    return answers;
  } catch (const CancelledError& e) {
    instruments_->cancelled.Inc();
    return Status::Cancelled(e.what());
  } catch (const DeadlineExceededError& e) {
    instruments_->deadline_exceeded.Inc();
    return Status::DeadlineExceeded(e.what());
  } catch (const std::exception& e) {
    instruments_->internal_errors.Inc();
    return Status::Internal(e.what());
  } catch (...) {
    instruments_->internal_errors.Inc();
    return Status::Internal("unknown exception during hard sampling");
  }
}

StatusOr<ConsensusAnswer> Server::ConsensusTopK(
    const infer::LabeledRimModel& model, unsigned top_k,
    const RequestControl& control) {
  instruments_->requests.Inc();
  instruments_->consensus_requests.Inc();

  const unsigned m = model.model().size();
  if (m == 0) {
    instruments_->invalid.Inc();
    return Status::InvalidArgument("consensus over an empty model");
  }
  if (top_k == 0) {
    instruments_->invalid.Inc();
    return Status::InvalidArgument("top_k must be positive");
  }
  // Size guard: the exact footrule aggregation is O(m³) (Hungarian) with an
  // O(m²) count matrix — a model over the limit is refused before any work.
  if (options_.max_consensus_items != 0 && m > options_.max_consensus_items) {
    return Status::ResourceExhausted(
        "model has " + std::to_string(m) +
        " items, over the consensus limit of " +
        std::to_string(options_.max_consensus_items));
  }

  if (TryAdmit(1) == 0) {
    instruments_->shed.Inc();
    return Status::ResourceExhausted(
        "shed by admission control (server full); retry after " +
        std::to_string(RetryAfterHintNs()) + "ns");
  }
  const AdmissionRelease release(*this, 1);

  // The cache key covers the full consensus computation (model + sampling
  // budget), never top_k: the cached entry holds the full-length consensus
  // and each response truncates its own k.
  StreamHash key_hash;
  key_hash.Mix(FingerprintModel(model.model()));
  key_hash.Mix(kKeyConsensus);
  key_hash.Mix(options_.consensus_samples);
  key_hash.Mix(options_.hard_block_samples);
  const std::uint64_t key = key_hash.digest();

  const auto truncate = [&](const CachedHard& cached) {
    ConsensusAnswer answer;
    answer.ranking.assign(
        cached.ranking.begin(),
        cached.ranking.begin() +
            std::min<std::size_t>(top_k, cached.ranking.size()));
    answer.mean_footrule = cached.mean_footrule;
    answer.footrule_std_error = cached.footrule_std_error;
    answer.mean_kendall = cached.mean_kendall;
    answer.kendall_std_error = cached.kendall_std_error;
    answer.n_samples = cached.n_samples;
    return answer;
  };
  if (const auto hit = hard_cache_.Get(key)) return truncate(*hit);

  obs::TraceRecord trace_storage;
  obs::TraceRecord* trace = nullptr;
  if (tracer_.sample_permyriad() > 0 && tracer_.ShouldSample(key)) {
    trace = &trace_storage;
    trace->fingerprint = key;
    trace->start_ns = MonotonicNowNs();
  }

  const std::uint64_t deadline_ns = control.deadline_ns != 0
                                        ? control.deadline_ns
                                        : options_.default_deadline_ns;
  RunControl run;
  if (deadline_ns != 0) run.deadline = Deadline::After(deadline_ns);
  run.cancel = control.cancel;
  const bool has_control = deadline_ns != 0 || control.cancel != nullptr;

  hard::ConsensusOptions consensus;
  consensus.samples = std::max(1u, options_.consensus_samples);
  consensus.block_samples = std::max(1u, options_.hard_block_samples);
  consensus.threads = effective_threads_;
  consensus.seed = HashCombine(key, kKeyMcSeed);
  consensus.control = has_control ? &run : nullptr;

  try {
    hard::ConsensusResult result;
    {
      const obs::TraceSpan span(trace, obs::Stage::kHardSample);
      const bool timed = options_.latency_histograms;
      const std::uint64_t start = timed ? MonotonicNowNs() : 0;
      result = hard::ConsensusRanking(model.model(), consensus);
      if (timed) instruments_->consensus_ns.Record(MonotonicNowNs() - start);
    }
    instruments_->hard_samples.Inc(result.n_samples);
    CachedHard cached;
    cached.ranking = std::move(result.ranking);
    cached.mean_footrule = result.mean_footrule;
    cached.footrule_std_error = result.footrule_std_error;
    cached.mean_kendall = result.mean_kendall;
    cached.kendall_std_error = result.kendall_std_error;
    cached.n_samples = result.n_samples;
    const std::shared_ptr<const CachedHard> value = hard_cache_.Put(
        key, std::make_shared<const CachedHard>(std::move(cached)));
    if (trace != nullptr) {
      trace->end_ns = MonotonicNowNs();
      trace->status_code = static_cast<std::uint8_t>(StatusCode::kOk);
      tracer_.Publish(*trace);
    }
    return truncate(*value);
  } catch (const CancelledError& e) {
    instruments_->cancelled.Inc();
    return Status::Cancelled(e.what());
  } catch (const DeadlineExceededError& e) {
    instruments_->deadline_exceeded.Inc();
    return Status::DeadlineExceeded(e.what());
  } catch (const std::exception& e) {
    instruments_->internal_errors.Inc();
    return Status::Internal(e.what());
  } catch (...) {
    instruments_->internal_errors.Inc();
    return Status::Internal("unknown exception during consensus");
  }
}

/// One unique computation within a batch: distinct (result key, deadline,
/// cancellation token). Two byte-identical requests with different stop
/// conditions must not share a slot — one's tight deadline would decide the
/// other's answer.
struct Server::Unit {
  std::uint64_t result_key = 0;
  std::uint64_t plan_key = 0;
  std::size_t first_request = 0;
  /// The resolved deadline *value* (0 = none); the degradation fallback
  /// maps it to its precision target.
  std::uint64_t deadline_ns = 0;
  bool has_control = false;
  RunControl control;
  /// Trace record for sampled units: written only by the single worker that
  /// serves the unit, finalized and published after the join.
  bool traced = false;
  obs::TraceRecord trace;
  /// When the worker finished this unit (0 for cache hits / untimed runs);
  /// the scatter span runs from here to batch end, so it includes the
  /// barrier wait for the batch's slowest sibling.
  std::uint64_t worker_end_ns = 0;
};

std::vector<Response> Server::EvaluateBatch(const std::vector<Request>& requests) {
  instruments_->batches.Inc();
  instruments_->requests.Inc(requests.size());

  // Batch-level clock reads only happen when someone consumes them: the
  // latency histograms or an armed tracer. With both off the warm path does
  // no clock reads beyond the pre-existing compile/execute accounting.
  const bool timed = options_.latency_histograms;
  const bool tracing = tracer_.sample_permyriad() > 0;
  const bool batch_timed = timed || tracing;
  const std::uint64_t t_start = batch_timed ? MonotonicNowNs() : 0;

  std::vector<Response> responses(requests.size());

  // Admission: claim in-flight slots for as many requests as fit; the tail
  // is shed immediately with a terminal status and a backoff hint — never
  // silently dropped, never queued unboundedly.
  const std::size_t admitted = TryAdmit(requests.size());
  const AdmissionRelease release(*this, admitted);
  for (std::size_t i = admitted; i < requests.size(); ++i) {
    instruments_->shed.Inc();
    responses[i].status =
        Status::ResourceExhausted("shed by admission control (server full)");
    responses[i].retry_after_ns = RetryAfterHintNs();
  }
  const std::uint64_t t_admitted = batch_timed ? MonotonicNowNs() : 0;

  // Validate + dedup the admitted prefix. Deadlines are resolved to
  // absolute time *here*, at admission, so time spent waiting for a worker
  // counts against the request's budget.
  std::vector<Unit> units;
  std::vector<std::size_t> slot_of(admitted, kNoSlot);
  std::unordered_map<std::uint64_t, std::size_t> slot_by_key;
  std::size_t valid = 0;
  for (std::size_t i = 0; i < admitted; ++i) {
    const Request& request = requests[i];
    if (Status status = Validate(request); !status.ok()) {
      instruments_->invalid.Inc();
      responses[i].status = std::move(status);
      continue;
    }
    ++valid;
    const std::uint64_t plan_key =
        PlanKey(*request.model, *request.pattern, kNoTracked);
    const std::uint64_t result_key = HashCombine(
        plan_key, request.kind == Request::Kind::kPatternProb ? kKeyPatternProb
                                                              : kKeyTopMatching);
    const std::uint64_t deadline_ns = request.control.deadline_ns != 0
                                          ? request.control.deadline_ns
                                          : options_.default_deadline_ns;
    // Dedup key folds the stop conditions in; identical requests with
    // identical controls share one computation.
    const std::uint64_t unit_key = HashCombine(
        result_key,
        HashCombine(deadline_ns, static_cast<std::uint64_t>(
                                     reinterpret_cast<std::uintptr_t>(
                                         request.control.cancel))));
    const auto [it, inserted] = slot_by_key.emplace(unit_key, units.size());
    if (inserted) {
      Unit unit;
      unit.result_key = result_key;
      unit.plan_key = plan_key;
      unit.first_request = i;
      unit.deadline_ns = deadline_ns;
      unit.has_control =
          deadline_ns != 0 || request.control.cancel != nullptr;
      if (deadline_ns != 0) unit.control.deadline = Deadline::After(deadline_ns);
      unit.control.cancel = request.control.cancel;
      unit.traced = tracing && tracer_.ShouldSample(result_key);
      units.push_back(unit);
    }
    slot_of[i] = it->second;
  }
  instruments_->batch_deduped.Inc(valid - units.size());

  // Resolve result-cache hits; collect the misses. A cache hit is exact and
  // instant, so stop conditions don't apply to it.
  std::vector<std::shared_ptr<const CachedResult>> resolved(units.size());
  std::vector<std::size_t> misses;
  for (std::size_t u = 0; u < units.size(); ++u) {
    resolved[u] = LookupResult(units[u].result_key);
    if (!resolved[u]) misses.push_back(u);
  }
  const std::uint64_t t_folded = batch_timed ? MonotonicNowNs() : 0;
  for (Unit& unit : units) {
    if (!unit.traced) continue;
    unit.trace.fingerprint = unit.result_key;
    unit.trace.start_ns = t_start;
    unit.trace.stage_ns[StageIdx(obs::Stage::kAdmission)] =
        t_admitted - t_start;
    unit.trace.stage_ns[StageIdx(obs::Stage::kDedupFold)] =
        t_folded - t_admitted;
  }

  // Fan unique cold work over the pool, each computation wrapped in the
  // failure policy — ComputeGuarded never throws, so one bad request can't
  // take down its batch neighbors.
  std::vector<Outcome> outcomes(misses.size());
  ParallelForWorkers(
      misses.size(), effective_threads_, [&](unsigned, std::size_t i) {
        Unit& unit = units[misses[i]];
        obs::TraceRecord* trace = unit.traced ? &unit.trace : nullptr;
        const bool unit_timed = timed || trace != nullptr;
        if (unit_timed) {
          const std::uint64_t t_picked = MonotonicNowNs();
          const std::uint64_t queue_ns = t_picked - t_folded;
          if (trace != nullptr) {
            trace->stage_ns[StageIdx(obs::Stage::kQueue)] = queue_ns;
          }
          if (timed) instruments_->queue_ns.Record(queue_ns);
        }
        outcomes[i] = ComputeGuarded(requests[unit.first_request],
                                     unit.plan_key, unit.result_key,
                                     unit.deadline_ns,
                                     unit.has_control ? &unit.control : nullptr,
                                     trace);
        if (unit_timed) unit.worker_end_ns = MonotonicNowNs();
      });
  const std::uint64_t t_joined = batch_timed ? MonotonicNowNs() : 0;

  // Publish exact answers in unique order (deterministic cache contents for
  // a given request trace, whatever the worker interleaving was).
  // Approximate and failed outcomes are never cached.
  for (std::size_t i = 0; i < misses.size(); ++i) {
    if (!outcomes[i].cache_ok) continue;
    // Copy, not move: the scatter loop below still reads this outcome.
    result_cache_.Put(units[misses[i]].result_key,
                      std::make_shared<const CachedResult>(outcomes[i].result));
    StoreResult(units[misses[i]].result_key, outcomes[i].result);
  }

  // Scatter answers back in request order. Shed and invalid requests
  // already carry their responses.
  std::vector<std::size_t> outcome_of(units.size(), kNoSlot);
  for (std::size_t i = 0; i < misses.size(); ++i) outcome_of[misses[i]] = i;
  for (std::size_t i = 0; i < admitted; ++i) {
    if (slot_of[i] == kNoSlot) continue;
    const std::size_t u = slot_of[i];
    if (resolved[u] != nullptr) {
      responses[i].status = Status::Ok();
      responses[i].probability = resolved[u]->probability;
      responses[i].top_matching = resolved[u]->top_matching;
      continue;
    }
    const Outcome& outcome = outcomes[outcome_of[u]];
    responses[i].status = outcome.status;
    responses[i].approximate = outcome.approximate;
    responses[i].std_error = outcome.std_error;
    if (outcome.status.ok() || outcome.approximate) {
      responses[i].probability = outcome.result.probability;
      responses[i].top_matching = outcome.result.top_matching;
    }
    if (outcome.status.code() == StatusCode::kResourceExhausted) {
      responses[i].retry_after_ns = RetryAfterHintNs();
    }
  }

  if (batch_timed) {
    const std::uint64_t t_end = MonotonicNowNs();
    if (timed) {
      instruments_->batch_ns.Record(t_end - t_start);
      // Every request in the batch returns with the batch, so its observed
      // end-to-end latency is the batch envelope.
      instruments_->request_ns.RecordMany(t_end - t_start, requests.size());
      instruments_->admission_ns.Record(t_admitted - t_start);
      instruments_->dedup_fold_ns.Record(t_folded - t_admitted);
      instruments_->scatter_ns.Record(t_end - t_joined);
    }
    // Finalize and publish the sampled traces: close the envelope, attach
    // the disposition, compute the scatter span (which for misses includes
    // the join wait for slower batch siblings), and strip the nested
    // plan_compile time out of cache_wait.
    for (std::size_t u = 0; u < units.size(); ++u) {
      Unit& unit = units[u];
      if (!unit.traced) continue;
      obs::TraceRecord& trace = unit.trace;
      trace.end_ns = t_end;
      if (resolved[u] != nullptr) {
        trace.cache_hit = true;
        trace.status_code = static_cast<std::uint8_t>(StatusCode::kOk);
        trace.stage_ns[StageIdx(obs::Stage::kScatter)] = t_end - t_folded;
      } else {
        const Outcome& outcome = outcomes[outcome_of[u]];
        trace.status_code = static_cast<std::uint8_t>(outcome.status.code());
        trace.approximate = outcome.approximate;
        trace.stage_ns[StageIdx(obs::Stage::kScatter)] =
            t_end - unit.worker_end_ns;
      }
      std::uint64_t& cache_wait =
          trace.stage_ns[StageIdx(obs::Stage::kCacheWait)];
      cache_wait -= std::min(
          cache_wait, trace.stage_ns[StageIdx(obs::Stage::kPlanCompile)]);
      tracer_.Publish(trace);
    }
  }
  return responses;
}

ServerStats Server::Snapshot() const {
  ServerStats stats;
  stats.plan_cache = plan_cache_.stats();
  stats.result_cache = result_cache_.stats();
  stats.circuit_cache = circuit_cache_.stats();
  stats.hard_cache = hard_cache_.stats();
  stats.requests = instruments_->requests.Value();
  stats.batches = instruments_->batches.Value();
  stats.batch_deduped = instruments_->batch_deduped.Value();
  stats.sweep_requests = instruments_->sweep_requests.Value();
  stats.sweep_points = instruments_->sweep_points.Value();
  stats.hard_requests = instruments_->hard_requests.Value();
  stats.hard_batches = instruments_->hard_batches.Value();
  stats.hard_samples = instruments_->hard_samples.Value();
  stats.hard_target_met = instruments_->hard_target_met.Value();
  stats.hard_deadline_limited = instruments_->hard_deadline_limited.Value();
  stats.consensus_requests = instruments_->consensus_requests.Value();
  stats.circuit_compiles = instruments_->circuit_compiles.Value();
  stats.compile_ns = instruments_->compile_ns.Value();
  stats.execute_ns = instruments_->execute_ns.Value();
  stats.circuit_compile_ns = instruments_->circuit_compile_ns.Value();
  stats.circuit_eval_ns = instruments_->circuit_eval_ns.Value();
  stats.store_hits = instruments_->store_hits.Value();
  stats.store_misses = instruments_->store_misses.Value();
  stats.store_corrupt = instruments_->store_corrupt.Value();
  stats.store_load_ns = instruments_->store_load_ns.Value();
  stats.store_writes = instruments_->store_writes.Value();
  stats.in_flight = in_flight_.load(std::memory_order_relaxed);
  stats.in_flight_peak = in_flight_peak_.load(std::memory_order_relaxed);
  stats.shed = instruments_->shed.Value();
  stats.invalid = instruments_->invalid.Value();
  stats.deadline_exceeded = instruments_->deadline_exceeded.Value();
  stats.cancelled = instruments_->cancelled.Value();
  stats.degraded = instruments_->degraded.Value();
  stats.internal_errors = instruments_->internal_errors.Value();
  return stats;
}

void Server::SyncScrapeGauges() const {
  Instruments& in = *instruments_;
  in.in_flight.Set(
      static_cast<std::int64_t>(in_flight_.load(std::memory_order_relaxed)));
  in.in_flight_peak.Set(static_cast<std::int64_t>(
      in_flight_peak_.load(std::memory_order_relaxed)));
  const CacheStats plan = plan_cache_.stats();
  in.plan_cache_hits.Set(static_cast<std::int64_t>(plan.hits));
  in.plan_cache_misses.Set(static_cast<std::int64_t>(plan.misses));
  in.plan_cache_insertions.Set(static_cast<std::int64_t>(plan.insertions));
  in.plan_cache_evictions.Set(static_cast<std::int64_t>(plan.evictions));
  const CacheStats result = result_cache_.stats();
  in.result_cache_hits.Set(static_cast<std::int64_t>(result.hits));
  in.result_cache_misses.Set(static_cast<std::int64_t>(result.misses));
  in.result_cache_insertions.Set(static_cast<std::int64_t>(result.insertions));
  in.result_cache_evictions.Set(static_cast<std::int64_t>(result.evictions));
  const CacheStats circuit = circuit_cache_.stats();
  in.circuit_cache_hits.Set(static_cast<std::int64_t>(circuit.hits));
  in.circuit_cache_misses.Set(static_cast<std::int64_t>(circuit.misses));
  in.circuit_cache_insertions.Set(
      static_cast<std::int64_t>(circuit.insertions));
  in.circuit_cache_evictions.Set(
      static_cast<std::int64_t>(circuit.evictions));
  const CacheStats hard = hard_cache_.stats();
  in.hard_cache_hits.Set(static_cast<std::int64_t>(hard.hits));
  in.hard_cache_misses.Set(static_cast<std::int64_t>(hard.misses));
  in.hard_cache_insertions.Set(static_cast<std::int64_t>(hard.insertions));
  in.hard_cache_evictions.Set(static_cast<std::int64_t>(hard.evictions));
  in.traces_published.Set(
      static_cast<std::int64_t>(tracer_.total_published()));
  if (options_.store != nullptr) {
    const store::StoreStats st = options_.store->stats();
    in.store_records.Set(static_cast<std::int64_t>(st.records));
    in.store_segments.Set(static_cast<std::int64_t>(st.segments));
    in.store_mapped_bytes.Set(static_cast<std::int64_t>(st.mapped_bytes));
    in.store_disk_bytes.Set(static_cast<std::int64_t>(st.disk_bytes));
    in.store_last_flush_age_ns.Set(
        static_cast<std::int64_t>(st.last_flush_age_ns));
  }
}

namespace {

/// A server with a private registry scrapes the process-wide registry too
/// (the DP engine / PPD counters); one publishing into an injected registry
/// scrapes only that, so embedders control the aggregation.
obs::MetricsSnapshot Combine(obs::MetricsSnapshot mine,
                             bool include_process_wide) {
  if (include_process_wide) {
    obs::MetricsSnapshot process = obs::MetricsRegistry::Default().Snapshot();
    for (obs::MetricSample& sample : process.samples) {
      mine.samples.push_back(std::move(sample));
    }
    std::sort(mine.samples.begin(), mine.samples.end(),
              [](const obs::MetricSample& a, const obs::MetricSample& b) {
                return a.name < b.name;
              });
  }
  return mine;
}

}  // namespace

std::string Server::ScrapeMetrics() const {
  SyncScrapeGauges();
  return obs::RenderPrometheus(
      Combine(registry_->Snapshot(),
              owned_registry_ != nullptr &&
                  registry_ != &obs::MetricsRegistry::Default()));
}

std::string Server::ScrapeMetricsJson() const {
  SyncScrapeGauges();
  return obs::RenderJson(
      Combine(registry_->Snapshot(),
              owned_registry_ != nullptr &&
                  registry_ != &obs::MetricsRegistry::Default()));
}

std::vector<obs::TraceRecord> Server::DumpTraces() const {
  return tracer_.Snapshot();
}

std::string Server::DumpTracesJson() const {
  return obs::RenderTracesJson(tracer_.Snapshot());
}

void Server::ClearCaches() {
  plan_cache_.Clear();
  result_cache_.Clear();
  circuit_cache_.Clear();
  hard_cache_.Clear();
}

}  // namespace ppref::serve
