#include "ppref/serve/server.h"

#include <chrono>
#include <unordered_map>

#include "ppref/common/check.h"
#include "ppref/common/hash.h"
#include "ppref/common/parallel.h"
#include "ppref/infer/internal/dp_plan.h"
#include "ppref/infer/top_prob.h"
#include "ppref/infer/top_prob_minmax.h"
#include "ppref/serve/fingerprint.h"

namespace ppref::serve {
namespace {

// Result-key domain tags: one per request kind, mixed on top of the plan
// key so the two answers about one (model, pattern) never collide.
enum : std::uint64_t {
  kKeyPatternProb = 0x5051ull,
  kKeyTopMatching = 0x5052ull,
  kKeyMinMax = 0x5053ull,
};

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const std::vector<infer::LabelId> kNoTracked;

}  // namespace

/// A compiled plan together with owned copies of its borrowed inputs.
/// Never moved after construction: `plan` holds pointers to the `model`
/// and `pattern` members, which is why cache values are shared_ptrs to
/// in-place-constructed entries.
struct Server::CachedPlan {
  infer::LabeledRimModel model;
  infer::LabelPattern pattern;
  std::vector<infer::LabelId> tracked;
  infer::internal::DpPlan plan;

  CachedPlan(const infer::LabeledRimModel& model_in,
             const infer::LabelPattern& pattern_in,
             const std::vector<infer::LabelId>& tracked_in)
      : model(model_in),
        pattern(pattern_in),
        tracked(tracked_in),
        plan(model, pattern, tracked) {}

  CachedPlan(const CachedPlan&) = delete;
  CachedPlan& operator=(const CachedPlan&) = delete;
};

/// A memoized answer. `top_matching` is engaged only for kTopMatching
/// requests whose best candidate has positive probability (plus the empty
/// pattern's empty matching).
struct Server::CachedResult {
  double probability = 0.0;
  std::optional<infer::Matching> top_matching;
};

/// Scoped in-flight depth accounting: admission increments, completion
/// decrements, and the peak watermark is maintained with a CAS loop.
class Server::InFlight {
 public:
  InFlight(Server& server, std::uint64_t count) : server_(server), count_(count) {
    const std::uint64_t now =
        server_.in_flight_.fetch_add(count_, std::memory_order_relaxed) + count_;
    std::uint64_t peak = server_.in_flight_peak_.load(std::memory_order_relaxed);
    while (peak < now && !server_.in_flight_peak_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  ~InFlight() { server_.in_flight_.fetch_sub(count_, std::memory_order_relaxed); }

 private:
  Server& server_;
  std::uint64_t count_;
};

Server::Server(ServerOptions options)
    : options_(options),
      plan_cache_(options.plan_cache_capacity, options.cache_shards),
      result_cache_(options.result_cache_capacity, options.cache_shards) {}

Server::~Server() = default;

std::shared_ptr<const Server::CachedPlan> Server::PlanFor(
    const infer::LabeledRimModel& model, const infer::LabelPattern& pattern,
    const std::vector<infer::LabelId>& tracked, std::uint64_t plan_key) {
  if (std::shared_ptr<const CachedPlan> hit = plan_cache_.Get(plan_key)) {
    return hit;
  }
  // Cold key: compile outside any lock. Two threads racing here both
  // compile; Put keeps the first insert, so they converge on one entry.
  const std::uint64_t start = NowNs();
  auto entry = std::make_shared<const CachedPlan>(model, pattern, tracked);
  compile_ns_.fetch_add(NowNs() - start, std::memory_order_relaxed);
  return plan_cache_.Put(plan_key, std::move(entry));
}

Server::CachedResult Server::Compute(const Request& request,
                                     std::uint64_t plan_key) {
  PPREF_CHECK(request.model != nullptr && request.pattern != nullptr);
  const std::shared_ptr<const CachedPlan> plan =
      PlanFor(*request.model, *request.pattern, kNoTracked, plan_key);
  infer::PatternProbOptions exec;
  exec.threads = options_.matching_threads;
  CachedResult result;
  const std::uint64_t start = NowNs();
  if (request.kind == Request::Kind::kPatternProb) {
    result.probability = infer::PatternProbWithPlan(plan->plan, exec);
  } else {
    if (auto best = infer::MostProbableTopMatchingWithPlan(plan->plan, exec)) {
      result.probability = best->second;
      result.top_matching = std::move(best->first);
    }
  }
  execute_ns_.fetch_add(NowNs() - start, std::memory_order_relaxed);
  return result;
}

double Server::PatternProbability(const infer::LabeledRimModel& model,
                                  const infer::LabelPattern& pattern) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const InFlight guard(*this, 1);
  const std::uint64_t plan_key = PlanKey(model, pattern, kNoTracked);
  const std::uint64_t result_key = HashCombine(plan_key, kKeyPatternProb);
  if (auto hit = result_cache_.Get(result_key)) return hit->probability;
  Request request;
  request.kind = Request::Kind::kPatternProb;
  request.model = &model;
  request.pattern = &pattern;
  return result_cache_
      .Put(result_key,
           std::make_shared<const CachedResult>(Compute(request, plan_key)))
      ->probability;
}

std::optional<std::pair<infer::Matching, double>> Server::MostProbableTopMatching(
    const infer::LabeledRimModel& model, const infer::LabelPattern& pattern) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const InFlight guard(*this, 1);
  const std::uint64_t plan_key = PlanKey(model, pattern, kNoTracked);
  const std::uint64_t result_key = HashCombine(plan_key, kKeyTopMatching);
  std::shared_ptr<const CachedResult> value = result_cache_.Get(result_key);
  if (!value) {
    Request request;
    request.kind = Request::Kind::kTopMatching;
    request.model = &model;
    request.pattern = &pattern;
    value = result_cache_.Put(
        result_key,
        std::make_shared<const CachedResult>(Compute(request, plan_key)));
  }
  if (!value->top_matching.has_value()) return std::nullopt;
  return std::make_pair(*value->top_matching, value->probability);
}

double Server::PatternMinMaxProbability(
    const infer::LabeledRimModel& model, const infer::LabelPattern& pattern,
    const std::vector<infer::LabelId>& tracked,
    const infer::MinMaxCondition& condition,
    std::uint64_t condition_fingerprint) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const InFlight guard(*this, 1);
  const std::uint64_t plan_key = PlanKey(model, pattern, tracked);
  const bool cacheable = condition_fingerprint != 0;
  const std::uint64_t result_key =
      HashCombine(HashCombine(plan_key, kKeyMinMax), condition_fingerprint);
  if (cacheable) {
    if (auto hit = result_cache_.Get(result_key)) return hit->probability;
  }
  const std::shared_ptr<const CachedPlan> plan =
      PlanFor(model, pattern, tracked, plan_key);
  infer::PatternProbOptions exec;
  exec.threads = options_.matching_threads;
  const std::uint64_t start = NowNs();
  const double probability =
      infer::PatternMinMaxProbWithPlan(plan->plan, condition, exec);
  execute_ns_.fetch_add(NowNs() - start, std::memory_order_relaxed);
  if (cacheable) {
    result_cache_.Put(result_key, std::make_shared<const CachedResult>(
                                      CachedResult{probability, std::nullopt}));
  }
  return probability;
}

std::vector<Response> Server::EvaluateBatch(const std::vector<Request>& requests) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(requests.size(), std::memory_order_relaxed);
  const InFlight guard(*this, requests.size());

  // Dedup: one unique slot per distinct result key, in first-occurrence
  // order (deterministic regardless of thread count).
  struct Unique {
    std::uint64_t result_key;
    std::uint64_t plan_key;
    std::size_t first_request;
  };
  std::vector<Unique> unique;
  std::vector<std::size_t> slot_of(requests.size());
  std::unordered_map<std::uint64_t, std::size_t> slot_by_key;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& request = requests[i];
    PPREF_CHECK(request.model != nullptr && request.pattern != nullptr);
    const std::uint64_t plan_key =
        PlanKey(*request.model, *request.pattern, kNoTracked);
    const std::uint64_t result_key = HashCombine(
        plan_key, request.kind == Request::Kind::kPatternProb ? kKeyPatternProb
                                                              : kKeyTopMatching);
    const auto [it, inserted] = slot_by_key.emplace(result_key, unique.size());
    if (inserted) unique.push_back(Unique{result_key, plan_key, i});
    slot_of[i] = it->second;
  }
  batch_deduped_.fetch_add(requests.size() - unique.size(),
                           std::memory_order_relaxed);

  // Resolve result-cache hits; collect the misses.
  std::vector<std::shared_ptr<const CachedResult>> resolved(unique.size());
  std::vector<std::size_t> misses;
  for (std::size_t u = 0; u < unique.size(); ++u) {
    resolved[u] = result_cache_.Get(unique[u].result_key);
    if (!resolved[u]) misses.push_back(u);
  }

  // Fan unique cold work over the pool. Each worker touches only its own
  // `computed` slots; the caches are internally synchronized.
  std::vector<CachedResult> computed(misses.size());
  ParallelForWorkers(misses.size(), ClampThreads(options_.threads),
                     [&](unsigned, std::size_t i) {
                       const Unique& u = unique[misses[i]];
                       computed[i] =
                           Compute(requests[u.first_request], u.plan_key);
                     });

  // Publish in unique order (deterministic cache contents for a given
  // request trace, whatever the worker interleaving was).
  for (std::size_t i = 0; i < misses.size(); ++i) {
    resolved[misses[i]] = result_cache_.Put(
        unique[misses[i]].result_key,
        std::make_shared<const CachedResult>(std::move(computed[i])));
  }

  // Scatter answers back in request order.
  std::vector<Response> responses(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const CachedResult& result = *resolved[slot_of[i]];
    responses[i].probability = result.probability;
    responses[i].top_matching = result.top_matching;
  }
  return responses;
}

ServerStats Server::stats() const {
  ServerStats stats;
  stats.plan_cache = plan_cache_.stats();
  stats.result_cache = result_cache_.stats();
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batch_deduped = batch_deduped_.load(std::memory_order_relaxed);
  stats.compile_ns = compile_ns_.load(std::memory_order_relaxed);
  stats.execute_ns = execute_ns_.load(std::memory_order_relaxed);
  stats.in_flight = in_flight_.load(std::memory_order_relaxed);
  stats.in_flight_peak = in_flight_peak_.load(std::memory_order_relaxed);
  return stats;
}

void Server::ClearCaches() {
  plan_cache_.Clear();
  result_cache_.Clear();
}

}  // namespace ppref::serve
