#include "ppref/serve/fingerprint.h"

#include <algorithm>
#include <utility>

#include "ppref/common/hash.h"

namespace ppref::serve {
namespace {

// Domain-separation tags, one per fingerprinted type, so e.g. an empty
// pattern and an empty tracked set cannot produce the same digest.
enum : std::uint64_t {
  kTagModel = 0x70707265664D4F44ull,     // "ppref" MOD
  kTagLabeling = 0x70707265664C4142ull,  // LAB
  kTagPattern = 0x7070726566504154ull,   // PAT
  kTagTracked = 0x7070726566545243ull,   // TRC
  kTagStructure = 0x7070726566535452ull, // STR
};

}  // namespace

std::uint64_t FingerprintModel(const rim::RimModel& model) {
  StreamHash hash;
  hash.Mix(kTagModel);
  hash.Mix(model.size());
  for (rim::ItemId item : model.reference().order()) hash.Mix(item);
  for (unsigned t = 0; t < model.size(); ++t) {
    const std::vector<double>& row = model.insertion().Row(t);
    hash.Mix(row.size());
    for (double p : row) hash.MixDouble(p);
  }
  return hash.digest();
}

std::uint64_t FingerprintModelStructure(const rim::RimModel& model) {
  StreamHash hash;
  hash.Mix(kTagStructure);
  hash.Mix(model.size());
  for (rim::ItemId item : model.reference().order()) hash.Mix(item);
  return hash.digest();
}

std::uint64_t FingerprintLabeling(const infer::ItemLabeling& labeling) {
  StreamHash hash;
  hash.Mix(kTagLabeling);
  hash.Mix(labeling.item_count());
  std::vector<infer::LabelId> labels;
  for (rim::ItemId item = 0; item < labeling.item_count(); ++item) {
    labels = labeling.LabelsOf(item);
    std::sort(labels.begin(), labels.end());
    hash.Mix(labels.size());
    for (infer::LabelId label : labels) hash.Mix(label);
  }
  return hash.digest();
}

std::uint64_t FingerprintLabeledModel(const infer::LabeledRimModel& model) {
  return HashCombine(FingerprintModel(model.model()),
                     FingerprintLabeling(model.labeling()));
}

std::uint64_t FingerprintPattern(const infer::LabelPattern& pattern) {
  const unsigned k = pattern.NodeCount();
  std::vector<infer::LabelId> labels(k);
  for (unsigned node = 0; node < k; ++node) labels[node] = pattern.NodeLabel(node);
  std::vector<std::pair<infer::LabelId, infer::LabelId>> edges;
  for (unsigned from = 0; from < k; ++from) {
    for (unsigned to : pattern.Children(from)) {
      edges.emplace_back(labels[from], labels[to]);
    }
  }
  std::sort(labels.begin(), labels.end());
  std::sort(edges.begin(), edges.end());
  StreamHash hash;
  hash.Mix(kTagPattern);
  hash.Mix(k);
  for (infer::LabelId label : labels) hash.Mix(label);
  hash.Mix(edges.size());
  for (const auto& [from, to] : edges) {
    hash.Mix(from);
    hash.Mix(to);
  }
  return hash.digest();
}

std::uint64_t FingerprintTracked(const std::vector<infer::LabelId>& tracked) {
  StreamHash hash;
  hash.Mix(kTagTracked);
  hash.Mix(tracked.size());
  for (infer::LabelId label : tracked) hash.Mix(label);
  return hash.digest();
}

std::uint64_t PlanKey(const infer::LabeledRimModel& model,
                      const infer::LabelPattern& pattern,
                      const std::vector<infer::LabelId>& tracked) {
  return HashCombine(
      HashCombine(FingerprintLabeledModel(model), FingerprintPattern(pattern)),
      FingerprintTracked(tracked));
}

std::uint64_t CircuitKey(const infer::LabeledRimModel& model,
                         const infer::LabelPattern& pattern) {
  return HashCombine(HashCombine(FingerprintModelStructure(model.model()),
                                 FingerprintLabeling(model.labeling())),
                     FingerprintPattern(pattern));
}

}  // namespace ppref::serve
