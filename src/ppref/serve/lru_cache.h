/// \file lru_cache.h
/// \brief A sharded, thread-safe LRU cache keyed by 64-bit fingerprints.
///
/// The serve layer's plan and result caches. Keys are content fingerprints
/// (see fingerprint.h); values are shared so an entry evicted while another
/// thread still executes against it stays alive until that thread drops its
/// reference — eviction never invalidates an in-flight computation.
///
/// Sharding: the key space is split over `shards` independent LRU maps,
/// each behind its own mutex, so concurrent lookups of different keys
/// rarely contend. Each shard runs classic LRU (intrusive list + index);
/// recency is per shard, which is the standard approximation — global LRU
/// under one lock is exactly the bottleneck sharding removes.
///
/// Determinism: the cache only memoizes pure functions of the key, so a hit
/// returns bit-identically what a recompute would. Hit/miss *sequences*
/// under concurrency are scheduling-dependent; results are not.

#ifndef PPREF_SERVE_LRU_CACHE_H_
#define PPREF_SERVE_LRU_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace ppref::serve {

/// Aggregate cache counters (monotone since construction or Clear()).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

/// Sharded LRU map from `std::uint64_t` fingerprints to shared values.
template <typename Value>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly over `shards`
  /// (each shard holds at least one entry). Shard count is rounded up to a
  /// power of two so shard selection is a mask.
  explicit ShardedLruCache(std::size_t capacity, unsigned shards = 8)
      : shards_(RoundUpPow2(std::max(1u, shards))) {
    const std::size_t per_shard =
        std::max<std::size_t>(1, (capacity + shards_.size() - 1) / shards_.size());
    for (Shard& shard : shards_) shard.capacity = per_shard;
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// The value under `key`, refreshed to most-recently-used, or nullptr.
  std::shared_ptr<const Value> Get(std::uint64_t key) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      return nullptr;
    }
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    ++shard.stats.hits;
    return it->second->value;
  }

  /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
  /// of the shard when over capacity. If the key is already present the
  /// existing value is kept (first write wins — concurrent computations of
  /// the same pure function produced equal values, and keeping the first
  /// means a shared_ptr handed out earlier stays the canonical one).
  std::shared_ptr<const Value> Put(std::uint64_t key,
                                   std::shared_ptr<const Value> value) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return it->second->value;
    }
    shard.order.push_front(Entry{key, std::move(value)});
    shard.index.emplace(key, shard.order.begin());
    ++shard.stats.insertions;
    if (shard.order.size() > shard.capacity) {
      shard.index.erase(shard.order.back().key);
      shard.order.pop_back();
      ++shard.stats.evictions;
    }
    return shard.order.front().value;
  }

  /// Current entry count across shards.
  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.order.size();
    }
    return total;
  }

  /// Total entry budget.
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) total += shard.capacity;
    return total;
  }

  unsigned shard_count() const { return static_cast<unsigned>(shards_.size()); }

  /// Aggregated counters over all shards.
  CacheStats stats() const {
    CacheStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total.hits += shard.stats.hits;
      total.misses += shard.stats.misses;
      total.insertions += shard.stats.insertions;
      total.evictions += shard.stats.evictions;
    }
    return total;
  }

  /// Drops every entry and resets counters.
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.order.clear();
      shard.index.clear();
      shard.stats = CacheStats{};
    }
  }

 private:
  struct Entry {
    std::uint64_t key;
    std::shared_ptr<const Value> value;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::size_t capacity = 1;
    std::list<Entry> order;  // front = most recently used
    std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator> index;
    CacheStats stats;
  };

  static unsigned RoundUpPow2(unsigned n) {
    unsigned p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  Shard& ShardOf(std::uint64_t key) {
    // Fingerprints are already well mixed; fold the high bits in anyway so
    // a sharded caller can't be pessimized by structure in the low bits.
    const std::uint64_t folded = key ^ (key >> 32);
    return shards_[folded & (shards_.size() - 1)];
  }

  std::vector<Shard> shards_;
};

}  // namespace ppref::serve

#endif  // PPREF_SERVE_LRU_CACHE_H_
