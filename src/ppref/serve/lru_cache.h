/// \file lru_cache.h
/// \brief A sharded, thread-safe LRU cache keyed by 64-bit fingerprints.
///
/// The serve layer's plan and result caches. Keys are content fingerprints
/// (see fingerprint.h); values are shared so an entry evicted while another
/// thread still executes against it stays alive until that thread drops its
/// reference — eviction never invalidates an in-flight computation.
///
/// Sharding: the key space is split over `shards` independent LRU maps,
/// each behind its own mutex, so concurrent lookups of different keys
/// rarely contend. Each shard runs classic LRU (intrusive list + index);
/// recency is per shard, which is the standard approximation — global LRU
/// under one lock is exactly the bottleneck sharding removes.
///
/// Determinism: the cache only memoizes pure functions of the key, so a hit
/// returns bit-identically what a recompute would. Hit/miss *sequences*
/// under concurrency are scheduling-dependent; results are not.

#ifndef PPREF_SERVE_LRU_CACHE_H_
#define PPREF_SERVE_LRU_CACHE_H_

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "ppref/common/deadline.h"

namespace ppref::serve {

/// Aggregate cache counters (monotone since construction or Clear()).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

/// Sharded LRU map from `std::uint64_t` fingerprints to shared values.
template <typename Value>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly over `shards`
  /// (each shard holds at least one entry). Shard count is rounded up to a
  /// power of two so shard selection is a mask.
  explicit ShardedLruCache(std::size_t capacity, unsigned shards = 8)
      : shards_(RoundUpPow2(std::max(1u, shards))) {
    const std::size_t per_shard =
        std::max<std::size_t>(1, (capacity + shards_.size() - 1) / shards_.size());
    for (Shard& shard : shards_) shard.capacity = per_shard;
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// The value under `key`, refreshed to most-recently-used, or nullptr.
  std::shared_ptr<const Value> Get(std::uint64_t key) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.stats.misses;
      return nullptr;
    }
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    ++shard.stats.hits;
    return it->second->value;
  }

  /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
  /// of the shard when over capacity. If the key is already present the
  /// existing value is kept (first write wins — concurrent computations of
  /// the same pure function produced equal values, and keeping the first
  /// means a shared_ptr handed out earlier stays the canonical one).
  std::shared_ptr<const Value> Put(std::uint64_t key,
                                   std::shared_ptr<const Value> value) {
    Shard& shard = ShardOf(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    return InsertLocked(shard, key, std::move(value));
  }

  /// Single-flight lookup-or-fill: returns the cached value, or runs
  /// `compute` (a callable returning `std::shared_ptr<const Value>`) exactly
  /// once per concurrent miss storm on `key` — the first missing thread
  /// computes *outside* the shard lock while an in-flight marker makes every
  /// other thread wait for its result instead of recomputing. This closes
  /// the Get-then-Put window in which N racing threads would all compile the
  /// same plan (N−1 of them thrown away).
  ///
  /// Stats: the computing thread counts one miss; threads served from the
  /// cache or from a completed flight count hits, so `insertions <= misses`
  /// still holds.
  ///
  /// Waiting threads honor `deadline` / `cancel` (either may be null): once
  /// the deadline passes or the token fires, the wait aborts by throwing
  /// DeadlineExceededError / CancelledError. `compute` itself is expected to
  /// poll its own controls. If `compute` throws, the flight is dissolved,
  /// one waiter retries (possibly computing itself), and the exception
  /// propagates on the computing thread.
  template <typename Compute>
  std::shared_ptr<const Value> GetOrCompute(
      std::uint64_t key, const Compute& compute,
      const Deadline* deadline = nullptr,
      const CancellationToken* cancel = nullptr) {
    Shard& shard = ShardOf(key);
    std::unique_lock<std::mutex> lock(shard.mutex);
    for (;;) {
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        shard.order.splice(shard.order.begin(), shard.order, it->second);
        ++shard.stats.hits;
        return it->second->value;
      }
      const auto flight_it = shard.in_flight.find(key);
      if (flight_it == shard.in_flight.end()) break;  // this thread computes
      const std::shared_ptr<Flight> flight = flight_it->second;
      while (!flight->done) {
        if (cancel != nullptr && cancel->Cancelled()) {
          throw CancelledError("cancelled waiting for in-flight computation");
        }
        if (deadline != nullptr && deadline->Expired()) {
          throw DeadlineExceededError(
              "deadline expired waiting for in-flight computation");
        }
        if (cancel != nullptr || (deadline != nullptr && !deadline->IsInfinite())) {
          // Sliced wait so a fired token / passed deadline is noticed
          // promptly even without a notify.
          shard.cv.wait_for(lock, std::chrono::milliseconds(1));
        } else {
          shard.cv.wait(lock);
        }
      }
      if (!flight->failed) {
        ++shard.stats.hits;
        return flight->value;
      }
      // The computing thread failed; loop — this thread may compute now.
    }
    const auto flight = std::make_shared<Flight>();
    shard.in_flight.emplace(key, flight);
    ++shard.stats.misses;
    lock.unlock();
    std::shared_ptr<const Value> value;
    try {
      value = compute();
    } catch (...) {
      lock.lock();
      flight->failed = true;
      flight->done = true;
      shard.in_flight.erase(key);
      shard.cv.notify_all();
      throw;
    }
    lock.lock();
    std::shared_ptr<const Value> canonical = InsertLocked(shard, key, std::move(value));
    flight->value = canonical;
    flight->done = true;
    shard.in_flight.erase(key);
    shard.cv.notify_all();
    return canonical;
  }

  /// Current entry count across shards.
  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.order.size();
    }
    return total;
  }

  /// Total entry budget.
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const Shard& shard : shards_) total += shard.capacity;
    return total;
  }

  unsigned shard_count() const { return static_cast<unsigned>(shards_.size()); }

  /// Aggregated counters over all shards.
  CacheStats stats() const {
    CacheStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total.hits += shard.stats.hits;
      total.misses += shard.stats.misses;
      total.insertions += shard.stats.insertions;
      total.evictions += shard.stats.evictions;
    }
    return total;
  }

  /// Drops every entry and resets counters.
  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.order.clear();
      shard.index.clear();
      shard.stats = CacheStats{};
    }
  }

 private:
  struct Entry {
    std::uint64_t key;
    std::shared_ptr<const Value> value;
  };

  /// One in-flight computation; waiters hold their own shared_ptr so the
  /// result survives even if the fresh entry is evicted before they wake.
  struct Flight {
    bool done = false;    // guarded by the shard mutex
    bool failed = false;  // compute threw; waiters retry
    std::shared_ptr<const Value> value;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable cv;  // flight completions
    std::size_t capacity = 1;
    std::list<Entry> order;  // front = most recently used
    std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator> index;
    std::unordered_map<std::uint64_t, std::shared_ptr<Flight>> in_flight;
    CacheStats stats;
  };

  /// Insert-or-refresh under the shard lock (the shared tail of Put and
  /// GetOrCompute); returns the canonical value for `key`.
  static std::shared_ptr<const Value> InsertLocked(
      Shard& shard, std::uint64_t key, std::shared_ptr<const Value> value) {
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.order.splice(shard.order.begin(), shard.order, it->second);
      return it->second->value;
    }
    shard.order.push_front(Entry{key, std::move(value)});
    shard.index.emplace(key, shard.order.begin());
    ++shard.stats.insertions;
    if (shard.order.size() > shard.capacity) {
      shard.index.erase(shard.order.back().key);
      shard.order.pop_back();
      ++shard.stats.evictions;
    }
    return shard.order.front().value;
  }

  static unsigned RoundUpPow2(unsigned n) {
    unsigned p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  Shard& ShardOf(std::uint64_t key) {
    // Fingerprints are already well mixed; fold the high bits in anyway so
    // a sharded caller can't be pessimized by structure in the low bits.
    const std::uint64_t folded = key ^ (key >> 32);
    return shards_[folded & (shards_.size() - 1)];
  }

  std::vector<Shard> shards_;
};

}  // namespace ppref::serve

#endif  // PPREF_SERVE_LRU_CACHE_H_
