/// \file server.h
/// \brief `ppref::serve` — the embeddable query-serving layer.
///
/// A `Server` turns the library's per-call inference API into a session
/// engine for the workload the paper's production framing implies: many
/// similar pattern queries against a fixed fleet of RIM models. It amortizes
/// work at two levels:
///
///  1. **Plan cache** (sharded LRU): compiled `DpPlan`s keyed by the content
///     fingerprint of (model, pattern, tracked). A hit skips the
///     γ-independent compilation entirely; PR-2's compile-once / run-many
///     split now pays off *across* calls, not just within one.
///  2. **Result cache** (sharded LRU): full `(model, pattern, tracked,
///     kind) → answer` memoization. A hit skips the DP execution too.
///
/// `EvaluateBatch` additionally dedups identical requests *within* a batch,
/// fans the unique work over a worker pool, and scatters answers back in
/// request order.
///
/// ## Determinism guarantee
/// Every answer is bit-identical to what a fresh per-request serial call of
/// the underlying `infer::` function would return: the caches memoize pure
/// functions of the request fingerprint, the batch fan-out uses the ordered
/// (bit-identical) reduction of `infer/`, and dedup only shares answers
/// between byte-equal requests. Caching, batching, and thread count are
/// invisible in the output — only in the latency.
///
/// ## Thread safety
/// All entry points may be called concurrently from any number of threads;
/// the caches are internally synchronized (per-shard mutexes) and plans are
/// immutable after compilation (per-thread `Scratch` holds all mutable DP
/// state). Two threads racing on the same cold key may both compute it;
/// both produce the same value and the first insert wins.
///
/// Models and patterns are *borrowed for the duration of a call* and copied
/// into any cache entry that outlives it, so callers may destroy their
/// inputs as soon as the call returns.

#ifndef PPREF_SERVE_SERVER_H_
#define PPREF_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "ppref/infer/labeled_rim.h"
#include "ppref/infer/matching.h"
#include "ppref/infer/minmax_condition.h"
#include "ppref/infer/pattern.h"
#include "ppref/serve/lru_cache.h"
#include "ppref/serve/stats.h"

namespace ppref::serve {

/// Server tuning knobs.
struct ServerOptions {
  /// Total compiled-plan budget. Plans are the expensive entries (a plan
  /// owns copies of its model and pattern); size this to the working set of
  /// distinct (model, pattern, tracked) triples.
  std::size_t plan_cache_capacity = 256;
  /// Total memoized-answer budget. Answers are tiny; size generously.
  std::size_t result_cache_capacity = 8192;
  /// Shards per cache (rounded up to a power of two).
  unsigned cache_shards = 8;
  /// Worker threads for the batch fan-out. 0 = auto; clamped to hardware
  /// concurrency (ppref::ClampThreads).
  unsigned threads = 0;
  /// Matching-level parallelism *within* one request (PatternProbOptions::
  /// threads). Batch fan-out already saturates the cores, so nesting
  /// defaults off; raise it for servers handling few, large requests.
  unsigned matching_threads = 1;
};

/// One inference request against a borrowed model and pattern.
struct Request {
  enum class Kind : std::uint8_t {
    /// Pr(g | σ, Π, λ) — answers `Response::probability`.
    kPatternProb,
    /// argmax_γ p_γ — answers `Response::top_matching` (and `probability`
    /// with the winning p_γ, 0 when no candidate has positive mass).
    kTopMatching,
  };
  Kind kind = Kind::kPatternProb;
  /// Borrowed; must stay alive until the submitting call returns.
  const infer::LabeledRimModel* model = nullptr;
  const infer::LabelPattern* pattern = nullptr;
};

/// The answer to one request, in the submitting batch's order.
struct Response {
  double probability = 0.0;
  /// Set for kTopMatching when some candidate has positive probability.
  std::optional<infer::Matching> top_matching;
};

/// A concurrent query server over the exact inference engine. See the file
/// comment for the caching, determinism, and thread-safety contracts.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Pr(g | σ, Π, λ), memoized.
  double PatternProbability(const infer::LabeledRimModel& model,
                            const infer::LabelPattern& pattern);

  /// The most probable top matching, memoized. Same contract as
  /// infer::MostProbableTopMatching.
  std::optional<std::pair<infer::Matching, double>> MostProbableTopMatching(
      const infer::LabeledRimModel& model, const infer::LabelPattern& pattern);

  /// Pr(g ∧ φ), memoized. `condition_fingerprint` must identify φ: equal
  /// fingerprints assert equal predicates (the server cannot hash a
  /// std::function, so the caller names it — e.g. hash of "top-3(Clinton)").
  /// Pass a fingerprint of 0 to bypass the result cache (unnameable φ);
  /// the plan cache still applies, keyed by (model, pattern, tracked).
  double PatternMinMaxProbability(const infer::LabeledRimModel& model,
                                  const infer::LabelPattern& pattern,
                                  const std::vector<infer::LabelId>& tracked,
                                  const infer::MinMaxCondition& condition,
                                  std::uint64_t condition_fingerprint);

  /// Serves a batch: dedups byte-identical requests, resolves result-cache
  /// hits, fans the remaining unique work over the worker pool, and returns
  /// answers in request order. Answers are bit-identical to issuing each
  /// request alone (see the determinism guarantee).
  std::vector<Response> EvaluateBatch(const std::vector<Request>& requests);

  /// Point-in-time statistics snapshot.
  ServerStats stats() const;

  /// Drops both caches and their counters (not the request counters).
  void ClearCaches();

  const ServerOptions& options() const { return options_; }

 private:
  struct CachedPlan;
  struct CachedResult;

  /// Looks up or compiles the plan for (model, pattern, tracked), timing
  /// compilation into `compile_ns_`.
  std::shared_ptr<const CachedPlan> PlanFor(
      const infer::LabeledRimModel& model, const infer::LabelPattern& pattern,
      const std::vector<infer::LabelId>& tracked, std::uint64_t plan_key);

  /// Computes one request (plan lookup + DP execution, timed).
  CachedResult Compute(const Request& request, std::uint64_t plan_key);

  /// RAII in-flight depth tracking.
  class InFlight;

  ServerOptions options_;
  ShardedLruCache<CachedPlan> plan_cache_;
  ShardedLruCache<CachedResult> result_cache_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batch_deduped_{0};
  std::atomic<std::uint64_t> compile_ns_{0};
  std::atomic<std::uint64_t> execute_ns_{0};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> in_flight_peak_{0};
};

}  // namespace ppref::serve

#endif  // PPREF_SERVE_SERVER_H_
