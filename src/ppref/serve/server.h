/// \file server.h
/// \brief `ppref::serve` — the embeddable query-serving layer.
///
/// A `Server` turns the library's per-call inference API into a session
/// engine for the workload the paper's production framing implies: many
/// similar pattern queries against a fixed fleet of RIM models. It amortizes
/// work at two levels:
///
///  1. **Plan cache** (sharded LRU): compiled `DpPlan`s keyed by the content
///     fingerprint of (model, pattern, tracked). A hit skips the
///     γ-independent compilation entirely; PR-2's compile-once / run-many
///     split now pays off *across* calls, not just within one. Concurrent
///     misses on one key coalesce into a single compilation (single-flight).
///  2. **Result cache** (sharded LRU): full `(model, pattern, tracked,
///     kind) → answer` memoization. A hit skips the DP execution too. Only
///     exact answers are ever cached — approximate (degraded) answers are
///     recomputed per request, reproducibly (see below).
///  3. **Circuit cache** (sharded LRU): arithmetic circuits compiled from
///     safe plans, keyed on (model *structure*, labeling, pattern) with the
///     insertion probabilities Π deliberately excluded from the key. A
///     parameter sweep (`PatternProbSweep`) compiles once and re-binds the
///     circuit per parameter vector — every point after the first skips
///     both plan compilation and the DP scan, and each point's answer is
///     bit-identical to a fresh DP run at that Π.
///  4. **Hard cache** (sharded LRU): the hard tier's adaptive Monte-Carlo
///     estimates and consensus rankings (`HardPatternProb`,
///     `HardPatternProbBatch`, `ConsensusTopK`), keyed on the request
///     fingerprint *and* the full sampling configuration. Only answers that
///     are exact functions of the seed (precision target met, or the sample
///     cap) are inserted; deadline-limited answers are honest but
///     wall-clock dependent and never cached.
///
/// `EvaluateBatch` additionally dedups identical requests *within* a batch,
/// fans the unique work over a worker pool, and scatters answers back in
/// request order.
///
/// ## Fault tolerance
/// `Evaluate` / `EvaluateBatch` are the *serving boundary*: they never abort
/// or throw on bad input or overload; every request gets a terminal
/// `Response::status`:
///
///  - malformed requests (null pointers, labels matching no item, a model
///    too large for the DP's 16-bit positions) → `kInvalidArgument`;
///  - admission control: when `ServerOptions::max_in_flight` is set and the
///    server is full, excess requests are shed with `kResourceExhausted`
///    and a `retry_after_ns` hint instead of growing the in-flight set;
///  - per-request deadlines (`Request::control.deadline_ns`, falling back
///    to `ServerOptions::default_deadline_ns`) stop the DP mid-scan with
///    bounded latency → `kDeadlineExceeded`;
///  - caller cancellation via a shared `CancellationToken` → `kCancelled`;
///  - anything unexpected escaping the engine → `kInternal`.
///
/// With `ServerOptions::degradation = kMonteCarlo`, deadline and size-limit
/// failures degrade to a seeded Monte-Carlo estimate: the response keeps its
/// non-OK status but carries `approximate = true`, the estimate, and its
/// standard error — callers always get *an* answer with honest error bars.
/// The sampler is seeded from the request fingerprint, so repeating the
/// request reproduces the identical approximate answer.
///
/// The legacy double-returning entry points (`PatternProbability`,
/// `MostProbableTopMatching`, `PatternMinMaxProbability`) remain
/// trusted-caller conveniences: they skip validation, deadlines, and
/// admission control, and keep PPREF_CHECK semantics on misuse.
///
/// ## Determinism guarantee
/// Every *exact* answer is bit-identical to what a fresh per-request serial
/// call of the underlying `infer::` function would return: the caches
/// memoize pure functions of the request fingerprint, the batch fan-out
/// uses the ordered (bit-identical) reduction of `infer/`, and dedup only
/// shares answers between byte-equal requests. Caching, batching, and
/// thread count are invisible in the output — only in the latency.
/// Approximate answers are deterministic in the request fingerprint and
/// sample budget (never in the thread count), and are never cached.
///
/// ## Thread safety
/// All entry points may be called concurrently from any number of threads;
/// the caches are internally synchronized (per-shard mutexes) and plans are
/// immutable after compilation (per-thread `Scratch` holds all mutable DP
/// state).
///
/// Models and patterns are *borrowed for the duration of a call* and copied
/// into any cache entry that outlives it, so callers may destroy their
/// inputs as soon as the call returns.

#ifndef PPREF_SERVE_SERVER_H_
#define PPREF_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "ppref/common/deadline.h"
#include "ppref/common/status.h"
#include "ppref/infer/labeled_rim.h"
#include "ppref/infer/matching.h"
#include "ppref/infer/minmax_condition.h"
#include "ppref/infer/pattern.h"
#include "ppref/obs/metrics.h"
#include "ppref/obs/trace.h"
#include "ppref/rim/ranking.h"
#include "ppref/serve/lru_cache.h"
#include "ppref/serve/stats.h"

namespace ppref::store {
class Store;
}

namespace ppref::serve {

/// Server tuning knobs.
struct ServerOptions {
  /// Total compiled-plan budget. Plans are the expensive entries (a plan
  /// owns copies of its model and pattern); size this to the working set of
  /// distinct (model, pattern, tracked) triples.
  std::size_t plan_cache_capacity = 256;
  /// Total memoized-answer budget. Answers are tiny; size generously.
  std::size_t result_cache_capacity = 8192;
  /// Total compiled-circuit budget. A circuit's arena is proportional to
  /// the DP's state count summed over candidates — comparable to one DP
  /// run's footprint per entry; size to the working set of distinct
  /// (model structure, labeling, pattern) sweep shapes.
  std::size_t circuit_cache_capacity = 64;
  /// Shards per cache (rounded up to a power of two).
  unsigned cache_shards = 8;
  /// Worker threads for the batch fan-out. 0 = auto; clamped to hardware
  /// concurrency (ppref::ClampThreads).
  unsigned threads = 0;
  /// Matching-level parallelism *within* one request (PatternProbOptions::
  /// threads). Batch fan-out already saturates the cores, so nesting
  /// defaults off; raise it for servers handling few, large requests.
  unsigned matching_threads = 1;

  /// Default per-request deadline in nanoseconds, applied when a request
  /// does not set its own. 0 = no deadline.
  std::uint64_t default_deadline_ns = 0;
  /// Admission limit: the maximum number of requests being served at once
  /// across all entry points. Requests beyond the limit are shed with
  /// kResourceExhausted and a retry-after hint. 0 = unbounded.
  std::size_t max_in_flight = 0;
  /// Size guard: patterns with more nodes are refused (kResourceExhausted)
  /// or degraded to Monte-Carlo, per `degradation`. The DP is exponential
  /// in pattern size, so this is the "query too hard" limit. 0 = unlimited.
  unsigned max_pattern_nodes = 0;

  /// What to do when a request hits its deadline or the size guard.
  enum class Degradation : std::uint8_t {
    /// Fail the request with its error status and no answer.
    kNone,
    /// Serve a Monte-Carlo estimate with a standard error instead: the
    /// response keeps the non-OK status but gains `approximate = true`.
    /// Deterministic per request fingerprint (seeded sampling); never
    /// cached.
    kMonteCarlo,
  };
  Degradation degradation = Degradation::kNone;
  /// Sample budget of one Monte-Carlo fallback.
  unsigned degraded_samples = 4096;

  // Hard-query tier (ppref/hard/): variance-adaptive Monte Carlo with a
  // precision target, pooled world sharing, and consensus rankings.

  /// Total hard-tier answer budget (adaptive estimates and consensus
  /// rankings share one cache). Entries are small; consensus entries hold
  /// one length-m ranking.
  std::size_t hard_cache_capacity = 1024;
  /// CI half-width target applied when a hard request does not name its
  /// own (callers pass <= 0 for "server default"). <= 0 disables the
  /// precision stop: every hard run spends hard_max_samples.
  double hard_default_target = 0.01;
  /// Normal quantile of the hard tier's confidence interval (two-sided 95%).
  double hard_z = 1.959963984540054;
  /// The precision stop is not evaluated below this many samples.
  unsigned hard_min_samples = 256;
  /// Hard sample cap; also fixes the seeded block decomposition.
  unsigned hard_max_samples = 1u << 18;
  /// Samples per seeded block of the hard tier.
  unsigned hard_block_samples = 1024;
  /// Fixed world budget of one consensus ranking (an argmin, not a mean, so
  /// the budget is part of the cache key rather than a stop rule).
  unsigned consensus_samples = 4096;
  /// Size guard for consensus queries: the exact footrule aggregation is
  /// O(m³), so models with more items are refused (kResourceExhausted).
  /// 0 = unlimited.
  unsigned max_consensus_items = 256;

  /// Optional persistent store (ppref/store/) backing all three caches.
  /// Borrowed; must outlive the server. When set, a cache miss consults the
  /// store before computing (mmap-served records make a restarted server
  /// warm from disk), and freshly computed plans / circuits / exact results
  /// are written behind for the next restart. A store record that fails to
  /// decode counts as a miss plus a corruption counter — never an error on
  /// the serving path. nullptr (the default) preserves the purely
  /// in-memory behavior bit for bit.
  store::Store* store = nullptr;

  // Observability (see ppref/obs/):

  /// Instrument registry to publish into. Borrowed; must outlive the
  /// server. nullptr (the default) gives the server a private registry —
  /// the right choice for tests and for embedding several servers whose
  /// metrics must not merge. Pass &obs::MetricsRegistry::Default() to fold
  /// the server into the process-wide scrape.
  obs::MetricsRegistry* registry = nullptr;
  /// Record per-stage and end-to-end latency histograms. Counters (request
  /// and disposition totals, compile/execute nanoseconds) are always on —
  /// they are the `ServerStats` surface and cost one relaxed add each, the
  /// same as before the obs layer existed. Histograms add a few clock reads
  /// per served batch; disable only to shave the last fraction of a percent
  /// off a saturated warm path.
  bool latency_histograms = true;
  /// Request-tracing sampling rate in 1/10000ths (100 = 1%). Sampling is
  /// deterministic per request fingerprint; 0 (the default) reduces the
  /// whole tracing path to a null check.
  unsigned trace_sample_permyriad = 0;
  /// Bound on retained trace records (oldest overwritten).
  std::size_t trace_capacity = 1024;
};

/// Per-request stop conditions, embedded in `Request`.
struct RequestControl {
  /// Deadline budget in nanoseconds, measured from batch admission.
  /// 0 = use the server's default_deadline_ns.
  std::uint64_t deadline_ns = 0;
  /// Optional borrowed cancellation token; must stay alive until the
  /// submitting call returns. Firing it ends the request with kCancelled.
  const CancellationToken* cancel = nullptr;
};

/// One inference request against a borrowed model and pattern.
struct Request {
  enum class Kind : std::uint8_t {
    /// Pr(g | σ, Π, λ) — answers `Response::probability`.
    kPatternProb,
    /// argmax_γ p_γ — answers `Response::top_matching` (and `probability`
    /// with the winning p_γ, 0 when no candidate has positive mass).
    kTopMatching,
  };
  Kind kind = Kind::kPatternProb;
  /// Borrowed; must stay alive until the submitting call returns.
  const infer::LabeledRimModel* model = nullptr;
  const infer::LabelPattern* pattern = nullptr;
  /// Deadline / cancellation; default = server defaults, no token.
  RequestControl control;
};

/// The answer to one request, in the submitting batch's order.
struct Response {
  /// Terminal disposition; the numeric fields below are meaningful for
  /// kOk, and for non-OK statuses only when `approximate` is set.
  Status status;
  double probability = 0.0;
  /// Set for kTopMatching when some candidate has positive probability.
  std::optional<infer::Matching> top_matching;
  /// True when this answer is a Monte-Carlo fallback (degradation policy);
  /// `std_error` then carries its standard error.
  bool approximate = false;
  double std_error = 0.0;
  /// For shed requests (kResourceExhausted from admission control): a
  /// heuristic backoff hint — the server's observed mean per-request cost.
  std::uint64_t retry_after_ns = 0;
};

/// A hard-tier answer: an adaptive Monte-Carlo estimate with the error it
/// actually achieved and what stopped the sampling.
struct HardEstimate {
  double estimate = 0.0;
  double std_error = 0.0;
  /// Worlds this estimate consumed (a prefix of the seeded block stream).
  std::uint64_t n_samples = 0;
  /// The precision target was reached before the sample cap.
  bool target_met = false;
  /// The deadline budget stopped sampling first; the estimate is honest
  /// (std_error reflects what was achieved) but wall-clock dependent, so it
  /// was not cached and a retry may answer differently.
  bool deadline_limited = false;
};

/// A consensus top-k answer: the footrule-optimal consensus order truncated
/// to k, with the sampled distance statistics to the full consensus.
struct ConsensusAnswer {
  /// Best item first, length min(k, m).
  std::vector<rim::ItemId> ranking;
  /// Mean footrule distance of a sampled world to the consensus, with the
  /// standard error of that mean; same under Kendall's tau.
  double mean_footrule = 0.0;
  double footrule_std_error = 0.0;
  double mean_kendall = 0.0;
  double kendall_std_error = 0.0;
  std::uint64_t n_samples = 0;
};

/// A concurrent query server over the exact inference engine. See the file
/// comment for the caching, determinism, fault-tolerance, and thread-safety
/// contracts.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Pr(g | σ, Π, λ), memoized. Trusted-caller path (aborts on misuse).
  double PatternProbability(const infer::LabeledRimModel& model,
                            const infer::LabelPattern& pattern);

  /// The most probable top matching, memoized. Same contract as
  /// infer::MostProbableTopMatching. Trusted-caller path.
  std::optional<std::pair<infer::Matching, double>> MostProbableTopMatching(
      const infer::LabeledRimModel& model, const infer::LabelPattern& pattern);

  /// Pr(g ∧ φ), memoized. `condition_fingerprint` must identify φ: equal
  /// fingerprints assert equal predicates (the server cannot hash a
  /// std::function, so the caller names it — e.g. hash of "top-3(Clinton)").
  /// Pass a fingerprint of 0 to bypass the result cache (unnameable φ);
  /// the plan cache still applies, keyed by (model, pattern, tracked).
  /// Trusted-caller path.
  double PatternMinMaxProbability(const infer::LabeledRimModel& model,
                                  const infer::LabelPattern& pattern,
                                  const std::vector<infer::LabelId>& tracked,
                                  const infer::MinMaxCondition& condition,
                                  std::uint64_t condition_fingerprint);

  /// Serves one request through the full fault-tolerant pipeline
  /// (validation, admission, deadline, degradation). Never throws; the
  /// response's status is the single source of truth.
  Response Evaluate(const Request& request);

  /// Parameter sweep: Pr(g | σ, Π_i, λ) for every parameter vector in
  /// `params`, against one cached circuit. Each element of `params` is
  /// either a single dispersion {φ} (a Mallows insertion model) or m
  /// per-step dispersions {φ_1..φ_m} (generalized Mallows); every φ must
  /// lie in (0, 1]. The circuit is compiled from the (cached or freshly
  /// compiled) plan on the first sweep of this (model structure, labeling,
  /// pattern) shape and re-bound per point afterwards; each answer is
  /// bit-identical to a fresh serial DP run at that parameter vector.
  ///
  /// Full serving-boundary contract: never throws; validation errors,
  /// admission shedding, deadlines, and cancellation all come back as the
  /// returned status. Sweep answers bypass the result cache (their keys
  /// would embed Π); only the circuit and plan caches amortize.
  StatusOr<std::vector<double>> PatternProbSweep(
      const infer::LabeledRimModel& model, const infer::LabelPattern& pattern,
      const std::vector<std::vector<double>>& params,
      const RequestControl& control = {});

  /// Hard tier: Pr(g | σ, Π, λ) by variance-adaptive seeded Monte Carlo
  /// (ppref/hard/), for patterns past the exact DP's budget. Sampling stops
  /// once the `z · std_error` CI half-width reaches `target_half_width`
  /// (<= 0 = the server's hard_default_target), at the sample cap, or —
  /// honestly, with the wider error actually achieved — when the request's
  /// deadline expires between sampling rounds. The request's deadline also
  /// *coarsens* the effective target deterministically (a near-dead
  /// deadline buys a cheaper answer), so a repeated request reproduces the
  /// identical estimate. Deterministic answers (target met or cap) are
  /// cached; deadline-limited ones never are.
  ///
  /// Full serving-boundary contract: never throws; validation, admission
  /// shedding, and cancellation come back as the returned status.
  StatusOr<HardEstimate> HardPatternProb(const infer::LabeledRimModel& model,
                                         const infer::LabelPattern& pattern,
                                         double target_half_width = 0.0,
                                         const RequestControl& control = {});

  /// The pooled form: adaptive estimates for every pattern in `patterns`
  /// against *one shared stream* of sampled worlds (each world is drawn
  /// once and evaluated against every still-unconverged query). Every
  /// element is bit-identical to the corresponding HardPatternProb answer —
  /// the world stream is seeded from the model alone, and each query's
  /// stopping decision is query-local — so pooled and solo answers share
  /// cache entries. Answers come back in input order.
  StatusOr<std::vector<HardEstimate>> HardPatternProbBatch(
      const infer::LabeledRimModel& model,
      const std::vector<const infer::LabelPattern*>& patterns,
      double target_half_width = 0.0, const RequestControl& control = {});

  /// Consensus top-k: the ranking minimizing the expected Spearman-footrule
  /// distance to a random world of the model (exact on the sampled
  /// empirical distribution — Hungarian assignment, no heuristic), truncated
  /// to the best `top_k` items, with sampled footrule and Kendall distance
  /// statistics. Deterministic in (model, server sampling options); the full
  /// consensus is cached, so asking for different k re-truncates a hit.
  StatusOr<ConsensusAnswer> ConsensusTopK(const infer::LabeledRimModel& model,
                                          unsigned top_k,
                                          const RequestControl& control = {});

  /// Serves a batch: admits up to the in-flight budget (shedding the rest),
  /// validates each request, dedups byte-identical requests, resolves
  /// result-cache hits, fans the remaining unique work over the worker
  /// pool, and returns answers in request order — exactly one terminal
  /// status per request, no silent drops. Exact answers are bit-identical
  /// to issuing each request alone (see the determinism guarantee). Never
  /// throws.
  std::vector<Response> EvaluateBatch(const std::vector<Request>& requests);

  /// Consistent point-in-time statistics. Every `Evaluate*` call joins its
  /// workers before returning, so a snapshot taken after the submitting
  /// calls have returned observes all of their updates — the right way to
  /// read an end-of-run summary (reading the counters while workers still
  /// publish only has monitoring consistency).
  ServerStats Snapshot() const;

  /// Point-in-time statistics snapshot (alias of Snapshot()).
  ServerStats stats() const { return Snapshot(); }

  /// Prometheus text exposition (format 0.0.4) of this server's
  /// instruments, followed by the process-wide registry (the DP engine and
  /// PPD counters) when the server publishes to a private registry.
  std::string ScrapeMetrics() const;

  /// The same instruments as a JSON object with precomputed p50/p95/p99.
  std::string ScrapeMetricsJson() const;

  /// The retained trace records, oldest first. Tracing is enabled by
  /// `ServerOptions::trace_sample_permyriad`.
  std::vector<obs::TraceRecord> DumpTraces() const;

  /// DumpTraces() rendered as JSON.
  std::string DumpTracesJson() const;

  /// The server's instrument registry (its own unless one was injected).
  obs::MetricsRegistry& registry() const { return *registry_; }

  /// Drops all three caches and their counters (not the request counters).
  void ClearCaches();

  const ServerOptions& options() const { return options_; }

 private:
  struct CachedPlan;
  struct CachedResult;
  struct CachedCircuit;
  struct CachedHard;
  struct Outcome;
  struct Unit;
  struct Instruments;

  /// Request validation for the status entry points; Ok or kInvalidArgument.
  Status Validate(const Request& request) const;

  /// Claims up to `want` in-flight slots against max_in_flight (all of them
  /// when unbounded); returns how many were granted and maintains the peak
  /// watermark. Pair with AdmissionRelease.
  std::size_t TryAdmit(std::size_t want);

  /// RAII release of TryAdmit'ed slots.
  class AdmissionRelease;

  /// Heuristic retry-after hint: observed mean per-request busy time.
  std::uint64_t RetryAfterHintNs() const;

  /// Result-cache probe (respects forced-miss fault injection). On an LRU
  /// miss with a store configured, consults the store and promotes a decoded
  /// record into the cache.
  std::shared_ptr<const CachedResult> LookupResult(std::uint64_t result_key);

  // Store integration (no-ops when options_.store is null). The Load*
  // helpers return nullptr on miss or failed decode — the caller computes
  // as if the store did not exist.
  std::shared_ptr<const CachedPlan> LoadPlanFromStore(
      std::uint64_t plan_key, obs::TraceRecord* trace);
  std::shared_ptr<const CachedCircuit> LoadCircuitFromStore(
      std::uint64_t circuit_key, obs::TraceRecord* trace);
  /// Write-behind of one exact answer.
  void StoreResult(std::uint64_t result_key, const CachedResult& result);

  /// Looks up or compiles the plan for (model, pattern, tracked), timing
  /// compilation into the compile instruments. Single-flight per key; a
  /// non-null `control` bounds both the compile and the wait for another
  /// thread's compile (throws DeadlineExceededError / CancelledError). A
  /// non-null `trace` receives the plan_compile / cache_wait spans.
  std::shared_ptr<const CachedPlan> PlanFor(
      const infer::LabeledRimModel& model, const infer::LabelPattern& pattern,
      const std::vector<infer::LabelId>& tracked, std::uint64_t plan_key,
      const RunControl* control = nullptr,
      obs::TraceRecord* trace = nullptr);

  /// Looks up or compiles the circuit for (model structure, labeling,
  /// pattern), going through PlanFor for the underlying plan (so a sweep
  /// warms the plan cache too). Single-flight per key; timed into the
  /// circuit-compile instruments. Throws stop exceptions via `control`.
  std::shared_ptr<const CachedCircuit> CircuitFor(
      const infer::LabeledRimModel& model, const infer::LabelPattern& pattern,
      std::uint64_t circuit_key, const RunControl* control,
      obs::TraceRecord* trace);

  /// Computes one request exactly (plan lookup + DP execution, timed).
  /// Throws DeadlineExceededError / CancelledError via `control`.
  CachedResult Compute(const Request& request, std::uint64_t plan_key,
                       const RunControl* control = nullptr,
                       obs::TraceRecord* trace = nullptr);

  /// Compute wrapped in the failure policy: catches stop exceptions, applies
  /// the degradation policy, maps everything to a terminal Outcome. Never
  /// throws. `deadline_ns` is the request's resolved deadline *value* (0 =
  /// none) — the degradation fallback derives its precision target from it.
  Outcome ComputeGuarded(const Request& request, std::uint64_t plan_key,
                         std::uint64_t result_key, std::uint64_t deadline_ns,
                         const RunControl* control, obs::TraceRecord* trace);

  /// The Monte-Carlo fallback of the degradation policy; `status` is the
  /// triggering (non-OK) status the outcome keeps. Routed through the
  /// adaptive estimator: `deadline_ns` maps to a deterministic precision
  /// target, so a near-dead deadline yields a coarser (wider std_error) but
  /// reproducible answer; 0 reproduces the fixed-budget estimate bit for
  /// bit.
  Outcome Degrade(const Request& request, std::uint64_t result_key,
                  std::uint64_t deadline_ns, Status status,
                  obs::TraceRecord* trace);

  /// The effective hard-tier precision target of one request: the caller's
  /// target (or hard_default_target), coarsened by the deadline floor. A
  /// pure function of its arguments — it feeds both the sampler and the
  /// hard cache key.
  double EffectiveHardTarget(double target_half_width,
                             std::uint64_t deadline_ns) const;

  /// The hard tier's sampling seed: a pure function of the model and the
  /// block decomposition only (never of the pattern), so every query over
  /// one model — solo or pooled — consumes the identical world stream.
  std::uint64_t HardSeed(const infer::LabeledRimModel& model) const;

  /// The per-query hard cache key: plan key (model, pattern) mixed with the
  /// full sampling configuration.
  std::uint64_t HardKey(std::uint64_t plan_key, double effective_target) const;

  /// Refreshes the scrape-time gauges (in-flight depth, cache counters,
  /// trace totals) from their sources.
  void SyncScrapeGauges() const;

  /// RAII in-flight depth tracking (legacy unconditional admission).
  class InFlight;

  ServerOptions options_;
  /// options_.threads resolved through ppref::ClampThreads once, at
  /// construction — the single clamping point for the batch fan-out.
  unsigned effective_threads_;
  ShardedLruCache<CachedPlan> plan_cache_;
  ShardedLruCache<CachedResult> result_cache_;
  ShardedLruCache<CachedCircuit> circuit_cache_;
  ShardedLruCache<CachedHard> hard_cache_;

  /// Owned when options_.registry is null.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_;
  /// Registry-backed instruments (counters, gauges, histograms); the
  /// `ServerStats` accessors read these.
  std::unique_ptr<Instruments> instruments_;
  obs::Tracer tracer_;

  /// In-flight depth and its high-water mark stay raw atomics: admission
  /// control CASes against `in_flight_`, which an instrument API has no
  /// business exposing. They are mirrored into gauges on scrape.
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> in_flight_peak_{0};
};

}  // namespace ppref::serve

#endif  // PPREF_SERVE_SERVER_H_
