#include "ppref/query/classify.h"

#include "ppref/query/gaifman.h"

namespace ppref::query {

bool IsSessionwise(const ConjunctiveQuery& query) {
  const std::vector<const Atom*> p_atoms = query.PAtoms();
  for (std::size_t i = 1; i < p_atoms.size(); ++i) {
    if (p_atoms[i]->symbol != p_atoms[0]->symbol) return false;
    if (p_atoms[i]->SessionTerms() != p_atoms[0]->SessionTerms()) return false;
  }
  return true;
}

bool IsItemwise(const ConjunctiveQuery& query) {
  if (!IsSessionwise(query)) return false;
  const VariableGraph o_graph = VariableGraph::GaifmanO(query);
  return o_graph.CompletelySeparates(query.SessionVariables(),
                                     query.ItemVariables());
}

ComplexityClass Classify(const ConjunctiveQuery& query) {
  if (query.PAtoms().empty()) return ComplexityClass::kDeterministic;
  if (IsItemwise(query)) return ComplexityClass::kPolynomialTime;
  // Thm 4.5 fragment: a single p-atom and no self-joins.
  if (query.PAtoms().size() == 1 && !query.HasSelfJoin()) {
    return ComplexityClass::kSharpPHard;
  }
  return ComplexityClass::kOpen;
}

std::string ToString(ComplexityClass complexity) {
  switch (complexity) {
    case ComplexityClass::kDeterministic:
      return "deterministic";
    case ComplexityClass::kPolynomialTime:
      return "polynomial-time (itemwise)";
    case ComplexityClass::kSharpPHard:
      return "FP^#P-hard";
    case ComplexityClass::kOpen:
      return "open (outside the dichotomy fragment)";
  }
  return "?";
}

}  // namespace ppref::query
