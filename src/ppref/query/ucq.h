/// \file ucq.h
/// \brief Unions of conjunctive queries — the first step into the "larger
/// fragments of FO" direction the paper's §6 proposes.
///
/// A UnionQuery is Q = Q₁ ∨ ... ∨ Q_q. Over a PPD, conf_Q is the
/// probability that at least one disjunct holds. The evaluator in
/// ppd/ucq_evaluator.h handles Boolean UCQs whose disjuncts are itemwise in
/// polynomial data complexity (fixed query).

#ifndef PPREF_QUERY_UCQ_H_
#define PPREF_QUERY_UCQ_H_

#include <string>
#include <vector>

#include "ppref/db/schema.h"
#include "ppref/query/cq.h"

namespace ppref::query {

/// A union of CQs with a common head arity.
class UnionQuery {
 public:
  /// All disjuncts must share the head arity; throws SchemaError otherwise.
  explicit UnionQuery(std::vector<ConjunctiveQuery> disjuncts);

  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }
  std::size_t size() const { return disjuncts_.size(); }
  bool IsBoolean() const;

  std::string ToString() const;

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
};

/// Parses a UCQ whose disjuncts are separated by the keyword UNION:
///
///   Q() :- Polls(v, d; l; 'Trump')  UNION  Q() :- Polls(v, d; 'Clinton'; l)
///
/// The keyword is recognized outside string literals only.
UnionQuery ParseUnionQuery(const std::string& text,
                           const db::PreferenceSchema& schema);

}  // namespace ppref::query

#endif  // PPREF_QUERY_UCQ_H_
