/// \file gaifman.h
/// \brief Gaifman graphs and Gaifman o-graphs of CQs — §4.1.
///
/// The Gaifman graph G_Q connects two distinct variables when they co-occur
/// in some atom; the Gaifman o-graph G°_Q only uses o-atoms. The itemwise
/// test (Def. 1) asks whether the session variables completely separate the
/// item variables in G°_Q.

#ifndef PPREF_QUERY_GAIFMAN_H_
#define PPREF_QUERY_GAIFMAN_H_

#include <string>
#include <vector>

#include "ppref/query/cq.h"

namespace ppref::query {

/// An undirected graph over variable names.
class VariableGraph {
 public:
  /// G_Q: edges from all atoms.
  static VariableGraph Gaifman(const ConjunctiveQuery& query);

  /// G°_Q: edges from o-atoms only (p-atom co-occurrences are skipped).
  static VariableGraph GaifmanO(const ConjunctiveQuery& query);

  const std::vector<std::string>& nodes() const { return nodes_; }
  bool HasNode(const std::string& name) const;
  bool Adjacent(const std::string& a, const std::string& b) const;

  /// Connected components after deleting the nodes in `removed`; each
  /// component lists variable names in node order.
  std::vector<std::vector<std::string>> ComponentsWithout(
      const std::vector<std::string>& removed) const;

  /// True iff `separators` completely separates `targets`: every path
  /// between two distinct targets visits a separator — equivalently, after
  /// deleting the separators, no component holds two distinct targets.
  bool CompletelySeparates(const std::vector<std::string>& separators,
                           const std::vector<std::string>& targets) const;

 private:
  unsigned IndexOf(const std::string& name) const;

  std::vector<std::string> nodes_;
  std::vector<std::vector<bool>> adjacent_;
};

}  // namespace ppref::query

#endif  // PPREF_QUERY_GAIFMAN_H_
