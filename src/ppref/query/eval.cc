#include "ppref/query/eval.h"

#include <algorithm>
#include <unordered_set>

#include "ppref/common/check.h"

namespace ppref::query {
namespace {

/// Number of terms of `atom` already determined by `binding` (constants
/// count as bound). Used by the most-bound-first atom ordering.
unsigned BoundTerms(const Atom& atom, const Binding& binding) {
  unsigned bound = 0;
  for (const Term& term : atom.terms) {
    if (!term.is_variable() || binding.contains(term.variable())) ++bound;
  }
  return bound;
}

/// Attempts to unify `atom` with `tuple` under `binding`; on success the new
/// variable assignments are appended to `added` and `binding` is extended.
bool Unify(const Atom& atom, const db::Tuple& tuple, Binding& binding,
           std::vector<std::string>& added) {
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& term = atom.terms[i];
    if (!term.is_variable()) {
      if (term.constant() != tuple[i]) return false;
      continue;
    }
    const auto it = binding.find(term.variable());
    if (it != binding.end()) {
      if (it->second != tuple[i]) return false;
    } else {
      binding.emplace(term.variable(), tuple[i]);
      added.push_back(term.variable());
    }
  }
  return true;
}

bool Recurse(std::vector<const Atom*>& pending, const db::Database& database,
             Binding& binding,
             const std::function<bool(const Binding&)>& visit) {
  if (pending.empty()) return visit(binding);
  // Most-bound-first: pull the atom with the most determined terms to the
  // back and process it.
  std::size_t best = 0;
  unsigned best_bound = 0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const unsigned bound = BoundTerms(*pending[i], binding);
    if (i == 0 || bound > best_bound) {
      best = i;
      best_bound = bound;
    }
  }
  std::swap(pending[best], pending.back());
  const Atom* atom = pending.back();
  pending.pop_back();

  const db::Relation& relation = database.Instance(atom->symbol);

  // Probe a point index when some term is already determined; otherwise
  // fall back to a full scan.
  int probe_position = -1;
  db::Value probe_value;
  for (std::size_t i = 0; i < atom->terms.size(); ++i) {
    const Term& term = atom->terms[i];
    if (!term.is_variable()) {
      probe_position = static_cast<int>(i);
      probe_value = term.constant();
      break;
    }
    const auto it = binding.find(term.variable());
    if (it != binding.end()) {
      probe_position = static_cast<int>(i);
      probe_value = it->second;
      break;
    }
  }

  bool keep_going = true;
  auto try_tuple = [&](const db::Tuple& tuple) {
    std::vector<std::string> added;
    if (Unify(*atom, tuple, binding, added)) {
      keep_going = Recurse(pending, database, binding, visit);
    }
    for (const std::string& name : added) binding.erase(name);
    return keep_going;
  };
  if (probe_position >= 0) {
    for (std::size_t position : relation.MatchingIndices(
             static_cast<unsigned>(probe_position), probe_value)) {
      if (!try_tuple(relation.tuples()[position])) break;
    }
  } else {
    for (const db::Tuple& tuple : relation) {
      if (!try_tuple(tuple)) break;
    }
  }

  pending.push_back(atom);
  std::swap(pending[best], pending.back());
  return keep_going;
}

}  // namespace

bool ForEachHomomorphism(const std::vector<Atom>& atoms,
                         const db::Database& database, const Binding& binding,
                         const std::function<bool(const Binding&)>& visit) {
  std::vector<const Atom*> pending;
  pending.reserve(atoms.size());
  for (const Atom& atom : atoms) pending.push_back(&atom);
  Binding working = binding;
  return Recurse(pending, database, working, visit);
}

bool IsSatisfiable(const ConjunctiveQuery& query, const db::Database& database,
                   const Binding& binding) {
  bool satisfiable = false;
  ForEachHomomorphism(query.body(), database, binding,
                      [&](const Binding&) {
                        satisfiable = true;
                        return false;  // stop at the first witness
                      });
  return satisfiable;
}

std::vector<db::Tuple> Evaluate(const ConjunctiveQuery& query,
                                const db::Database& database) {
  std::vector<db::Tuple> results;
  std::unordered_set<db::Tuple, db::TupleHash> seen;
  ForEachHomomorphism(query.body(), database, {}, [&](const Binding& binding) {
    db::Tuple head;
    head.reserve(query.head().size());
    for (const std::string& variable : query.head()) {
      const auto it = binding.find(variable);
      PPREF_CHECK_MSG(it != binding.end(),
                      "head variable '" << variable << "' unbound");
      head.push_back(it->second);
    }
    if (seen.insert(head).second) results.push_back(std::move(head));
    return true;
  });
  return results;
}

}  // namespace ppref::query
