/// \file cq.h
/// \brief Conjunctive queries over preference schemas — §2.1 and §4.1.
///
/// A CQ is Q(x̄) :- φ₁, ..., φₘ where each atom is over an o-symbol or a
/// p-symbol. P-atoms distinguish session term positions from the two item
/// term positions (lhs, rhs), mirroring the preference signature.

#ifndef PPREF_QUERY_CQ_H_
#define PPREF_QUERY_CQ_H_

#include <string>
#include <vector>

#include "ppref/db/schema.h"
#include "ppref/db/value.h"

namespace ppref::query {

/// A term: a variable or a constant.
class Term {
 public:
  static Term Var(std::string name);
  static Term Const(db::Value value);

  bool is_variable() const { return is_variable_; }
  const std::string& variable() const;
  const db::Value& constant() const;

  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.is_variable_ == b.is_variable_ && a.variable_ == b.variable_ &&
           a.constant_ == b.constant_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }

 private:
  bool is_variable_ = false;
  std::string variable_;
  db::Value constant_;
};

/// An atomic formula R(t₁, ..., tₖ). For p-atoms, the last two terms are the
/// item terms (lhs, rhs) and the preceding ones are the session terms.
struct Atom {
  std::string symbol;
  bool is_preference = false;
  /// Number of session terms (p-atoms only; 0 for o-atoms).
  unsigned session_arity = 0;
  std::vector<Term> terms;

  /// Session terms of a p-atom (the paper's s₁, ..., sₖ).
  std::vector<Term> SessionTerms() const;
  /// Left item term of a p-atom.
  const Term& Lhs() const;
  /// Right item term of a p-atom.
  const Term& Rhs() const;

  std::string ToString() const;
};

/// A conjunctive query.
class ConjunctiveQuery {
 public:
  /// `head` lists the free variables (possibly empty: Boolean query);
  /// every head variable must occur in the body. Throws SchemaError on
  /// violations (arity mismatches are caught by the parser/builders).
  ConjunctiveQuery(std::vector<std::string> head, std::vector<Atom> body);

  const std::vector<std::string>& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }
  bool IsBoolean() const { return head_.empty(); }

  /// All variables of the query, in first-occurrence order.
  std::vector<std::string> Variables() const;

  /// Variables occurring in a session position of some p-atom — §4.1.
  std::vector<std::string> SessionVariables() const;

  /// Variables occurring in an item position of some p-atom — §4.1.
  std::vector<std::string> ItemVariables() const;

  /// P-atoms (in body order).
  std::vector<const Atom*> PAtoms() const;

  /// O-atoms (in body order).
  std::vector<const Atom*> OAtoms() const;

  /// True iff some pair of distinct atoms shares a relation symbol
  /// (the "self join" notion of Thm 4.5).
  bool HasSelfJoin() const;

  /// Returns a copy with `variable` replaced by the constant `value`
  /// everywhere (body and head; the head entry is dropped).
  ConjunctiveQuery Substitute(const std::string& variable,
                              const db::Value& value) const;

  std::string ToString() const;

 private:
  std::vector<std::string> head_;
  std::vector<Atom> body_;
};

}  // namespace ppref::query

#endif  // PPREF_QUERY_CQ_H_
