#include "ppref/query/ucq.h"

#include <cctype>

#include "ppref/common/check.h"
#include "ppref/query/parser.h"

namespace ppref::query {
namespace {

/// Splits `text` on the standalone keyword UNION, ignoring occurrences
/// inside '...' or "..." literals.
std::vector<std::string> SplitOnUnion(const std::string& text) {
  std::vector<std::string> parts;
  std::string current;
  char quote = '\0';
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quote != '\0') {
      current += c;
      if (c == quote) quote = '\0';
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
      current += c;
      continue;
    }
    const bool boundary_before =
        i == 0 || !(std::isalnum(static_cast<unsigned char>(text[i - 1])) ||
                    text[i - 1] == '_');
    if (c == 'U' && boundary_before && text.compare(i, 5, "UNION") == 0) {
      const bool boundary_after =
          i + 5 >= text.size() ||
          !(std::isalnum(static_cast<unsigned char>(text[i + 5])) ||
            text[i + 5] == '_');
      if (boundary_after) {
        parts.push_back(current);
        current.clear();
        i += 4;  // loop increment skips the final N
        continue;
      }
    }
    current += c;
  }
  parts.push_back(current);
  return parts;
}

}  // namespace

UnionQuery::UnionQuery(std::vector<ConjunctiveQuery> disjuncts)
    : disjuncts_(std::move(disjuncts)) {
  if (disjuncts_.empty()) {
    throw SchemaError("a union query needs at least one disjunct");
  }
  for (const ConjunctiveQuery& q : disjuncts_) {
    if (q.head().size() != disjuncts_.front().head().size()) {
      throw SchemaError("union disjuncts must share the head arity");
    }
  }
}

bool UnionQuery::IsBoolean() const {
  return disjuncts_.front().IsBoolean();
}

std::string UnionQuery::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out += "  UNION  ";
    out += disjuncts_[i].ToString();
  }
  return out;
}

UnionQuery ParseUnionQuery(const std::string& text,
                           const db::PreferenceSchema& schema) {
  std::vector<ConjunctiveQuery> disjuncts;
  for (const std::string& part : SplitOnUnion(text)) {
    disjuncts.push_back(ParseQuery(part, schema));
  }
  return UnionQuery(std::move(disjuncts));
}

}  // namespace ppref::query
