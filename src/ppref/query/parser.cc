#include "ppref/query/parser.h"

#include <cctype>
#include <cstdlib>

#include "ppref/common/check.h"

namespace ppref::query {
namespace {

enum class TokenKind {
  kIdentifier,
  kString,
  kNumber,
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kArrow,       // ":-" or "<-"
  kUnderscore,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token Next() {
    SkipWhitespace();
    const std::size_t at = pos_;
    if (pos_ >= text_.size()) return {TokenKind::kEnd, "", at};
    const char c = text_[pos_];
    if (c == '(') return Single(TokenKind::kLParen, at);
    if (c == ')') return Single(TokenKind::kRParen, at);
    if (c == ',') return Single(TokenKind::kComma, at);
    if (c == ';') return Single(TokenKind::kSemicolon, at);
    if (c == ':' || c == '<') {
      if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '-') {
        pos_ += 2;
        return {TokenKind::kArrow, text_.substr(at, 2), at};
      }
      Fail(at, "expected ':-' or '<-'");
    }
    if (c == '\'' || c == '"') return QuotedString(at);
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+') {
      return Number(at);
    }
    if (c == '_' && !IsIdentifierChar(Peek(1))) {
      return Single(TokenKind::kUnderscore, at);
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      return Identifier(at);
    }
    Fail(at, std::string("unexpected character '") + c + "'");
  }

  [[noreturn]] void Fail(std::size_t offset, const std::string& message) const {
    throw ParseError("parse error at offset " + std::to_string(offset) + ": " +
                     message);
  }

 private:
  char Peek(std::size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }

  static bool IsIdentifierChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Token Single(TokenKind kind, std::size_t at) {
    ++pos_;
    return {kind, text_.substr(at, 1), at};
  }

  Token QuotedString(std::size_t at) {
    const char quote = text_[pos_++];
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != quote) {
      value += text_[pos_++];
    }
    if (pos_ >= text_.size()) Fail(at, "unterminated string literal");
    ++pos_;  // closing quote
    return {TokenKind::kString, std::move(value), at};
  }

  Token Number(std::size_t at) {
    std::string value;
    if (text_[pos_] == '-' || text_[pos_] == '+') value += text_[pos_++];
    bool has_digits = false;
    bool has_dot = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        has_digits = true;
        value += c;
        ++pos_;
      } else if (c == '.' && !has_dot) {
        has_dot = true;
        value += c;
        ++pos_;
      } else {
        break;
      }
    }
    if (!has_digits) Fail(at, "malformed number");
    return {TokenKind::kNumber, std::move(value), at};
  }

  Token Identifier(std::size_t at) {
    std::string value;
    value += text_[pos_++];
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
        value += c;
        ++pos_;
      } else {
        break;
      }
    }
    return {TokenKind::kIdentifier, std::move(value), at};
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  Parser(const std::string& text, const db::PreferenceSchema& schema)
      : lexer_(text), schema_(schema) {
    Advance();
  }

  ConjunctiveQuery Parse() {
    // Head: Name(vars).
    Expect(TokenKind::kIdentifier, "query name");
    Advance();
    std::vector<std::string> head;
    Expect(TokenKind::kLParen, "'('");
    Advance();
    while (current_.kind != TokenKind::kRParen) {
      Expect(TokenKind::kIdentifier, "head variable");
      head.push_back(current_.text);
      Advance();
      if (current_.kind == TokenKind::kComma) Advance();
    }
    Advance();  // ')'
    Expect(TokenKind::kArrow, "':-'");
    Advance();

    std::vector<Atom> body;
    while (true) {
      body.push_back(ParseAtom());
      if (current_.kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    Expect(TokenKind::kEnd, "end of query");
    return ConjunctiveQuery(std::move(head), std::move(body));
  }

 private:
  void Advance() { current_ = lexer_.Next(); }

  void Expect(TokenKind kind, const std::string& what) {
    if (current_.kind != kind) {
      lexer_.Fail(current_.offset, "expected " + what + ", found '" +
                                        current_.text + "'");
    }
  }

  Term ParseTerm() {
    switch (current_.kind) {
      case TokenKind::kUnderscore: {
        Advance();
        return Term::Var("_" + std::to_string(++anonymous_counter_));
      }
      case TokenKind::kIdentifier: {
        Term term = Term::Var(current_.text);
        Advance();
        return term;
      }
      case TokenKind::kString: {
        Term term = Term::Const(db::Value(current_.text));
        Advance();
        return term;
      }
      case TokenKind::kNumber: {
        const std::string text = current_.text;
        Advance();
        if (text.find('.') != std::string::npos) {
          return Term::Const(db::Value(std::strtod(text.c_str(), nullptr)));
        }
        return Term::Const(
            db::Value(static_cast<std::int64_t>(std::strtoll(text.c_str(),
                                                             nullptr, 10))));
      }
      default:
        lexer_.Fail(current_.offset,
                    "expected term, found '" + current_.text + "'");
    }
  }

  Atom ParseAtom() {
    Expect(TokenKind::kIdentifier, "relation symbol");
    Atom atom;
    atom.symbol = current_.text;
    const std::size_t symbol_offset = current_.offset;
    Advance();
    Expect(TokenKind::kLParen, "'('");
    Advance();
    std::vector<unsigned> semicolons_after;  // term counts preceding each ';'
    while (current_.kind != TokenKind::kRParen) {
      if (current_.kind == TokenKind::kSemicolon) {
        // Also reached with zero preceding terms (empty session part).
        semicolons_after.push_back(static_cast<unsigned>(atom.terms.size()));
        Advance();
        continue;
      }
      atom.terms.push_back(ParseTerm());
      if (current_.kind == TokenKind::kComma) {
        Advance();
      } else if (current_.kind != TokenKind::kSemicolon) {
        Expect(TokenKind::kRParen, "',' or ';' or ')'");
      }
    }
    Advance();  // ')'

    // Validate against the schema.
    if (!schema_.HasSymbol(atom.symbol)) {
      throw SchemaError("unknown relation symbol '" + atom.symbol +
                        "' at offset " + std::to_string(symbol_offset));
    }
    atom.is_preference = schema_.IsPSymbol(atom.symbol);
    const unsigned expected_arity = schema_.Arity(atom.symbol);
    if (atom.terms.size() != expected_arity) {
      throw SchemaError("atom " + atom.ToString() + " has arity " +
                        std::to_string(atom.terms.size()) + "; '" +
                        atom.symbol + "' expects " +
                        std::to_string(expected_arity));
    }
    if (atom.is_preference) {
      const unsigned session_arity =
          schema_.PSignature(atom.symbol).session_arity();
      atom.session_arity = session_arity;
      const std::vector<unsigned> expected = {session_arity,
                                              session_arity + 1};
      if (semicolons_after != expected) {
        throw SchemaError("p-atom " + atom.ToString() +
                          " must separate session and item terms as " +
                          schema_.PSignature(atom.symbol).ToString());
      }
    } else if (!semicolons_after.empty()) {
      throw SchemaError("o-atom over '" + atom.symbol +
                        "' must not contain semicolons");
    }
    return atom;
  }

  Lexer lexer_;
  const db::PreferenceSchema& schema_;
  Token current_;
  unsigned anonymous_counter_ = 0;
};

}  // namespace

ConjunctiveQuery ParseQuery(const std::string& text,
                            const db::PreferenceSchema& schema) {
  return Parser(text, schema).Parse();
}

}  // namespace ppref::query
