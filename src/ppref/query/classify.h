/// \file classify.h
/// \brief Sessionwise / itemwise classification (Def. 1) and the complexity
/// dichotomy of Thm 4.5.

#ifndef PPREF_QUERY_CLASSIFY_H_
#define PPREF_QUERY_CLASSIFY_H_

#include <string>

#include "ppref/query/cq.h"

namespace ppref::query {

/// True iff all p-atoms use the same p-symbol with identical session terms.
bool IsSessionwise(const ConjunctiveQuery& query);

/// Def. 1: sessionwise, and the session variables completely separate the
/// item variables in the Gaifman o-graph. Queries with no p-atoms are
/// trivially itemwise.
bool IsItemwise(const ConjunctiveQuery& query);

/// Data complexity of Boolean evaluation over RIM-PPDs.
enum class ComplexityClass {
  /// No p-atoms: ordinary CQ over the deterministic o-instances.
  kDeterministic,
  /// Itemwise: polynomial time via the §4.4 reduction (Thm 4.4).
  kPolynomialTime,
  /// Within Thm 4.5's fragment (single p-atom, no self-joins) and not
  /// itemwise: FP^{#P}-hard.
  kSharpPHard,
  /// Not itemwise and outside the dichotomy fragment: the paper leaves the
  /// complexity open.
  kOpen,
};

/// Classifies `query` per Thm 4.4 / Thm 4.5.
ComplexityClass Classify(const ConjunctiveQuery& query);

/// Human-readable name of a complexity class.
std::string ToString(ComplexityClass complexity);

}  // namespace ppref::query

#endif  // PPREF_QUERY_CLASSIFY_H_
