/// \file eval.h
/// \brief Deterministic CQ evaluation (homomorphism semantics) — §2.1.
///
/// Evaluates CQs over ordinary databases by backtracking join: atoms are
/// processed most-bound-first, scanning relation instances and unifying
/// terms. This is the workhorse behind possible-world evaluation, o-atom
/// satisfiability checks, and potential-match computation in the §4.4
/// reduction.

#ifndef PPREF_QUERY_EVAL_H_
#define PPREF_QUERY_EVAL_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ppref/db/database.h"
#include "ppref/query/cq.h"

namespace ppref::query {

/// A partial assignment of variables to values.
using Binding = std::map<std::string, db::Value>;

/// Enumerates all homomorphisms from the conjunction of `atoms` to
/// `database` that extend `binding`. `visit` returns false to stop early;
/// the function returns false iff the enumeration was stopped.
bool ForEachHomomorphism(const std::vector<Atom>& atoms,
                         const db::Database& database, const Binding& binding,
                         const std::function<bool(const Binding&)>& visit);

/// True iff at least one homomorphism from the query body to the database
/// extends `binding`.
bool IsSatisfiable(const ConjunctiveQuery& query, const db::Database& database,
                   const Binding& binding = {});

/// Q(D): the distinct head tuples (restrictions of homomorphisms to the
/// head), in first-found order. Boolean queries return {()} or {}.
std::vector<db::Tuple> Evaluate(const ConjunctiveQuery& query,
                                const db::Database& database);

}  // namespace ppref::query

#endif  // PPREF_QUERY_EVAL_H_
