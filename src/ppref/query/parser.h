/// \file parser.h
/// \brief Text parser for conjunctive queries over a preference schema.
///
/// Syntax (whitespace-insensitive), following the paper's notation:
///
///   Q(v) :- Polls(v, d; l; r), Candidates(l, 'D', 'M', _), Voters(v, 'BS', _, _)
///
/// * The head lists free variables; `Q()` is a Boolean query.
/// * Identifiers in term positions are variables; `_` is a fresh anonymous
///   variable per occurrence (subscripted internally).
/// * Constants are quoted strings ('D' or "D"), integers, or decimals.
/// * P-atoms separate the session part and the two item terms with
///   semicolons, exactly like preference signatures; o-atoms use commas.
/// * `:-` and `<-` both separate head from body.
///
/// Throws ppref::ParseError on malformed text and ppref::SchemaError when
/// atoms do not match the schema (unknown symbol, wrong arity, misplaced
/// semicolons).

#ifndef PPREF_QUERY_PARSER_H_
#define PPREF_QUERY_PARSER_H_

#include <string>

#include "ppref/db/schema.h"
#include "ppref/query/cq.h"

namespace ppref::query {

/// Parses `text` into a CQ validated against `schema`.
ConjunctiveQuery ParseQuery(const std::string& text,
                            const db::PreferenceSchema& schema);

}  // namespace ppref::query

#endif  // PPREF_QUERY_PARSER_H_
