#include "ppref/query/cq.h"

#include <algorithm>

#include "ppref/common/check.h"

namespace ppref::query {
namespace {

void AppendUnique(std::vector<std::string>& out, const std::string& name) {
  if (std::find(out.begin(), out.end(), name) == out.end()) {
    out.push_back(name);
  }
}

}  // namespace

Term Term::Var(std::string name) {
  PPREF_CHECK_MSG(!name.empty(), "empty variable name");
  Term term;
  term.is_variable_ = true;
  term.variable_ = std::move(name);
  return term;
}

Term Term::Const(db::Value value) {
  Term term;
  term.is_variable_ = false;
  term.constant_ = std::move(value);
  return term;
}

const std::string& Term::variable() const {
  PPREF_CHECK(is_variable_);
  return variable_;
}

const db::Value& Term::constant() const {
  PPREF_CHECK(!is_variable_);
  return constant_;
}

std::string Term::ToString() const {
  return is_variable_ ? variable_ : constant_.ToString();
}

std::vector<Term> Atom::SessionTerms() const {
  PPREF_CHECK(is_preference);
  return std::vector<Term>(terms.begin(), terms.begin() + session_arity);
}

const Term& Atom::Lhs() const {
  PPREF_CHECK(is_preference && terms.size() == session_arity + 2);
  return terms[session_arity];
}

const Term& Atom::Rhs() const {
  PPREF_CHECK(is_preference && terms.size() == session_arity + 2);
  return terms[session_arity + 1];
}

std::string Atom::ToString() const {
  std::string out = symbol + "(";
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) {
      const bool item_boundary =
          is_preference && (i == session_arity || i == session_arity + 1u);
      out += item_boundary ? "; " : ", ";
    }
    out += terms[i].ToString();
  }
  return out + ")";
}

ConjunctiveQuery::ConjunctiveQuery(std::vector<std::string> head,
                                   std::vector<Atom> body)
    : head_(std::move(head)), body_(std::move(body)) {
  for (const Atom& atom : body_) {
    PPREF_CHECK_MSG(!atom.is_preference ||
                        atom.terms.size() == atom.session_arity + 2,
                    "malformed p-atom " << atom.symbol);
  }
  const std::vector<std::string> variables = Variables();
  for (const std::string& head_var : head_) {
    if (std::find(variables.begin(), variables.end(), head_var) ==
        variables.end()) {
      throw SchemaError("head variable '" + head_var +
                        "' does not occur in the body");
    }
  }
}

std::vector<std::string> ConjunctiveQuery::Variables() const {
  std::vector<std::string> variables;
  for (const Atom& atom : body_) {
    for (const Term& term : atom.terms) {
      if (term.is_variable()) AppendUnique(variables, term.variable());
    }
  }
  return variables;
}

std::vector<std::string> ConjunctiveQuery::SessionVariables() const {
  std::vector<std::string> variables;
  for (const Atom& atom : body_) {
    if (!atom.is_preference) continue;
    for (unsigned i = 0; i < atom.session_arity; ++i) {
      if (atom.terms[i].is_variable()) {
        AppendUnique(variables, atom.terms[i].variable());
      }
    }
  }
  return variables;
}

std::vector<std::string> ConjunctiveQuery::ItemVariables() const {
  std::vector<std::string> variables;
  for (const Atom& atom : body_) {
    if (!atom.is_preference) continue;
    for (const Term* term : {&atom.Lhs(), &atom.Rhs()}) {
      if (term->is_variable()) AppendUnique(variables, term->variable());
    }
  }
  return variables;
}

std::vector<const Atom*> ConjunctiveQuery::PAtoms() const {
  std::vector<const Atom*> atoms;
  for (const Atom& atom : body_) {
    if (atom.is_preference) atoms.push_back(&atom);
  }
  return atoms;
}

std::vector<const Atom*> ConjunctiveQuery::OAtoms() const {
  std::vector<const Atom*> atoms;
  for (const Atom& atom : body_) {
    if (!atom.is_preference) atoms.push_back(&atom);
  }
  return atoms;
}

bool ConjunctiveQuery::HasSelfJoin() const {
  for (std::size_t i = 0; i < body_.size(); ++i) {
    for (std::size_t j = i + 1; j < body_.size(); ++j) {
      if (body_[i].symbol == body_[j].symbol) return true;
    }
  }
  return false;
}

ConjunctiveQuery ConjunctiveQuery::Substitute(const std::string& variable,
                                              const db::Value& value) const {
  std::vector<Atom> body = body_;
  for (Atom& atom : body) {
    for (Term& term : atom.terms) {
      if (term.is_variable() && term.variable() == variable) {
        term = Term::Const(value);
      }
    }
  }
  std::vector<std::string> head;
  for (const std::string& head_var : head_) {
    if (head_var != variable) head.push_back(head_var);
  }
  return ConjunctiveQuery(std::move(head), std::move(body));
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = "Q(";
  for (std::size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ", ";
    out += head_[i];
  }
  out += ") :- ";
  for (std::size_t i = 0; i < body_.size(); ++i) {
    if (i > 0) out += ", ";
    out += body_[i].ToString();
  }
  return out;
}

}  // namespace ppref::query
