#include "ppref/query/gaifman.h"

#include <algorithm>

#include "ppref/common/check.h"

namespace ppref::query {
namespace {

/// Builds the variable graph of `query`, using every atom or o-atoms only.
void AddAtomEdges(const Atom& atom,
                  const std::vector<std::string>& nodes,
                  std::vector<std::vector<bool>>& adjacent) {
  auto index_of = [&](const std::string& name) {
    return static_cast<unsigned>(
        std::find(nodes.begin(), nodes.end(), name) - nodes.begin());
  };
  for (std::size_t i = 0; i < atom.terms.size(); ++i) {
    if (!atom.terms[i].is_variable()) continue;
    for (std::size_t j = i + 1; j < atom.terms.size(); ++j) {
      if (!atom.terms[j].is_variable()) continue;
      const unsigned a = index_of(atom.terms[i].variable());
      const unsigned b = index_of(atom.terms[j].variable());
      if (a == b) continue;
      adjacent[a][b] = true;
      adjacent[b][a] = true;
    }
  }
}

}  // namespace

VariableGraph VariableGraph::Gaifman(const ConjunctiveQuery& query) {
  VariableGraph graph;
  graph.nodes_ = query.Variables();
  const unsigned n = static_cast<unsigned>(graph.nodes_.size());
  graph.adjacent_.assign(n, std::vector<bool>(n, false));
  for (const Atom& atom : query.body()) {
    AddAtomEdges(atom, graph.nodes_, graph.adjacent_);
  }
  return graph;
}

VariableGraph VariableGraph::GaifmanO(const ConjunctiveQuery& query) {
  // Same node set as G_Q (all variables), edges from o-atoms only.
  VariableGraph graph;
  graph.nodes_ = query.Variables();
  const unsigned n = static_cast<unsigned>(graph.nodes_.size());
  graph.adjacent_.assign(n, std::vector<bool>(n, false));
  for (const Atom& atom : query.body()) {
    if (!atom.is_preference) {
      AddAtomEdges(atom, graph.nodes_, graph.adjacent_);
    }
  }
  return graph;
}

bool VariableGraph::HasNode(const std::string& name) const {
  return std::find(nodes_.begin(), nodes_.end(), name) != nodes_.end();
}

unsigned VariableGraph::IndexOf(const std::string& name) const {
  const auto it = std::find(nodes_.begin(), nodes_.end(), name);
  PPREF_CHECK_MSG(it != nodes_.end(), "unknown variable '" << name << "'");
  return static_cast<unsigned>(it - nodes_.begin());
}

bool VariableGraph::Adjacent(const std::string& a, const std::string& b) const {
  return adjacent_[IndexOf(a)][IndexOf(b)];
}

std::vector<std::vector<std::string>> VariableGraph::ComponentsWithout(
    const std::vector<std::string>& removed) const {
  const unsigned n = static_cast<unsigned>(nodes_.size());
  std::vector<bool> deleted(n, false);
  for (const std::string& name : removed) {
    if (HasNode(name)) deleted[IndexOf(name)] = true;
  }
  std::vector<int> component(n, -1);
  int next_component = 0;
  for (unsigned start = 0; start < n; ++start) {
    if (deleted[start] || component[start] >= 0) continue;
    std::vector<unsigned> stack = {start};
    component[start] = next_component;
    while (!stack.empty()) {
      const unsigned node = stack.back();
      stack.pop_back();
      for (unsigned other = 0; other < n; ++other) {
        if (!deleted[other] && component[other] < 0 && adjacent_[node][other]) {
          component[other] = next_component;
          stack.push_back(other);
        }
      }
    }
    ++next_component;
  }
  std::vector<std::vector<std::string>> components(next_component);
  for (unsigned node = 0; node < n; ++node) {
    if (component[node] >= 0) components[component[node]].push_back(nodes_[node]);
  }
  return components;
}

bool VariableGraph::CompletelySeparates(
    const std::vector<std::string>& separators,
    const std::vector<std::string>& targets) const {
  const auto components = ComponentsWithout(separators);
  for (const auto& component : components) {
    unsigned count = 0;
    for (const std::string& target : targets) {
      if (std::find(component.begin(), component.end(), target) !=
          component.end()) {
        ++count;
      }
    }
    if (count > 1) return false;
  }
  return true;
}

}  // namespace ppref::query
