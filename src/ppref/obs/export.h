/// \file export.h
/// \brief `ppref::obs` — exposition: rendering a MetricsSnapshot as
/// Prometheus text format or JSON, and trace records as JSON.
///
/// ## Prometheus text format
/// The output follows the text exposition format version 0.0.4: per metric
/// a `# HELP` line (when help text exists), a `# TYPE` line, then the
/// samples. Histograms render the standard triplet — cumulative
/// `<name>_bucket{le="..."}` series ending in `le="+Inf"`, `<name>_sum`,
/// `<name>_count` — plus a companion gauge `<name>_max` (the exact tracked
/// maximum, which the bucket scheme cannot express; it is a separate,
/// well-formed metric so standard scrapers ingest it untouched). Counter
/// names are expected to carry their conventional `_total` suffix already;
/// the renderer does not add one.
///
/// ## JSON
/// The JSON dump is for humans and scripts (`ppref_top`, test assertions):
/// counters and gauges as numbers, histograms as an object with count /
/// sum / max / p50 / p95 / p99 and the non-empty buckets. Trace records
/// dump as an array of objects with per-stage nanoseconds.
///
/// All renderers read only snapshot structs — no locks, no registry access
/// — so they can run on a scrape thread while writers keep publishing.

#ifndef PPREF_OBS_EXPORT_H_
#define PPREF_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "ppref/obs/metrics.h"
#include "ppref/obs/trace.h"

namespace ppref::obs {

/// Prometheus text exposition of every sample in the snapshot.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

/// JSON object {"metrics": {name: value-or-histogram-object, ...}}.
std::string RenderJson(const MetricsSnapshot& snapshot);

/// JSON array of trace records, oldest first.
std::string RenderTracesJson(const std::vector<TraceRecord>& records);

}  // namespace ppref::obs

#endif  // PPREF_OBS_EXPORT_H_
