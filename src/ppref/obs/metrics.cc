#include "ppref/obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "ppref/common/check.h"

namespace ppref::obs {

unsigned ThisThreadShard() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

unsigned Histogram::BucketIndex(std::uint64_t value) {
  // bit_width(0) == 0, so bucket 0 holds exactly the value 0 and finite
  // bucket i > 0 holds [2^(i-1), 2^i - 1].
  return std::min<unsigned>(static_cast<unsigned>(std::bit_width(value)),
                            kBucketCount - 1);
}

std::uint64_t Histogram::BucketUpperBound(unsigned index) {
  if (index + 1 >= kBucketCount) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return (std::uint64_t{1} << index) - 1;
}

void Histogram::RecordMany(std::uint64_t value, std::uint64_t n) {
  if (n == 0) return;
  Shard& shard = shards_[ThisThreadShard()];
  shard.buckets[BucketIndex(value)].fetch_add(n, std::memory_order_relaxed);
  shard.count.fetch_add(n, std::memory_order_relaxed);
  shard.sum.fetch_add(value * n, std::memory_order_relaxed);
  // Max: usually a single relaxed load and no store; the CAS loop only runs
  // while this sample actually raises the shard maximum.
  std::uint64_t seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen && !shard.max.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::Snapshot() const {
  HistogramData data;
  data.buckets.assign(kBucketCount, 0);
  for (const Shard& shard : shards_) {
    for (unsigned i = 0; i < kBucketCount; ++i) {
      data.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    data.count += shard.count.load(std::memory_order_relaxed);
    data.sum += shard.sum.load(std::memory_order_relaxed);
    data.max = std::max(data.max, shard.max.load(std::memory_order_relaxed));
  }
  return data;
}

std::uint64_t HistogramData::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile among the sorted samples, 1-based.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (unsigned i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      // The bucket bound over-estimates within the bucket; the tracked max
      // is a global exact cap (and the only bound the overflow bucket has).
      return std::min(Histogram::BucketUpperBound(i), max);
    }
  }
  return max;
}

void HistogramData::Merge(const HistogramData& other) {
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (unsigned i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

const MetricSample* MetricsSnapshot::Find(const std::string& name) const {
  for (const MetricSample& sample : samples) {
    if (sample.name == name) return &sample;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

MetricsRegistry::Entry& MetricsRegistry::GetEntry(const std::string& name,
                                                  const std::string& help,
                                                  InstrumentKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    entry.help = help;
    switch (kind) {
      case InstrumentKind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case InstrumentKind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case InstrumentKind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
  } else {
    PPREF_CHECK_MSG(entry.kind == kind,
                    "metric registered twice with different kinds");
  }
  return entry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return *GetEntry(name, help, InstrumentKind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return *GetEntry(name, help, InstrumentKind::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  return *GetEntry(name, help, InstrumentKind::kHistogram).histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.samples.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    MetricSample sample;
    sample.name = name;
    sample.help = entry.help;
    sample.kind = entry.kind;
    switch (entry.kind) {
      case InstrumentKind::kCounter:
        sample.counter_value = entry.counter->Value();
        break;
      case InstrumentKind::kGauge:
        sample.gauge_value = entry.gauge->Value();
        break;
      case InstrumentKind::kHistogram:
        sample.histogram = entry.histogram->Snapshot();
        break;
    }
    snapshot.samples.push_back(std::move(sample));
  }
  return snapshot;
}

}  // namespace ppref::obs
