/// \file metrics.h
/// \brief `ppref::obs` — the metrics half of the observability subsystem:
/// a registry of named Counter / Gauge / Histogram instruments designed so
/// the *hot path pays one relaxed atomic add per event*.
///
/// ## Why a subsystem
/// The serve layer (PRs 3–4) answers millions of requests with deadlines,
/// shedding, and Monte-Carlo degradation, but its only instrumentation was
/// a struct of ad-hoc atomics — no latency distribution, no per-stage
/// breakdown, no exposition format. `obs` is the missing layer: instruments
/// live in a `MetricsRegistry`, hot paths update them wait-free, and a
/// scrape (`Snapshot()` + `export.h`) aggregates everything into Prometheus
/// text or JSON without ever stopping a writer.
///
/// ## Contention model
/// `Counter` and `Histogram` are *thread-sharded*: each instrument owns a
/// small fixed array of cache-line-aligned shards, and every thread is
/// assigned one shard (round-robin at first touch). An update is a single
/// `fetch_add(std::memory_order_relaxed)` on the thread's own shard — no
/// CAS loops, no false sharing between worker threads hammering the same
/// counter. A scrape sums the shards; the result is the usual monitoring
/// consistency ("every event counted once; cross-shard skew of the few
/// events in flight during the read"), which is exactly what relaxed
/// counters can promise and all that dashboards need.
///
/// `Gauge` is a single atomic — gauges express *current level* (in-flight
/// depth, cache size) and are typically written by Set from one place, so
/// sharding would buy nothing and break Set semantics.
///
/// ## Histogram buckets
/// Fixed log-scale (power-of-two) buckets: value v lands in the bucket of
/// its bit width, i.e. bucket i spans [2^(i-1), 2^i - 1]. That covers the
/// full nanosecond range 1 ns … ~4.5 min in 38 buckets with zero
/// configuration, bucket selection is one `bit_width` instruction, and
/// bucket upper bounds are exact binary numbers so quantile estimates are
/// exact whenever the recorded values sit on bucket boundaries. Values
/// beyond the last finite bucket land in the overflow bucket, whose
/// reported quantile is the exact tracked maximum.
///
/// Instruments registered once are never destroyed until the registry is;
/// holding `Counter&` across calls is the intended (and cheapest) usage.

#ifndef PPREF_OBS_METRICS_H_
#define PPREF_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ppref::obs {

/// Shards per sharded instrument. Sixteen covers the worker counts this
/// code base ever runs (ClampThreads caps at hardware concurrency) while
/// keeping an idle histogram's footprint a few KiB.
inline constexpr unsigned kMetricShards = 16;

/// The shard index of the calling thread: assigned round-robin on first
/// touch, stable for the thread's lifetime, shared by every instrument (one
/// thread-local, not one per instrument).
unsigned ThisThreadShard();

/// A monotone event counter. One relaxed add per Inc on the calling
/// thread's shard.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(std::uint64_t n = 1) {
    shards_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over shards. Monitoring-consistent, not linearizable.
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// A current-level instrument (in-flight depth, cache entries). Signed so
/// transient Add/Sub interleavings can dip below zero without wrapping.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Aggregated histogram state: per-bucket counts plus count/sum/max, as
/// summed over shards by a snapshot (or merged across snapshots).
struct HistogramData {
  /// kBucketCount entries; bucket i counts values of bit width i (see file
  /// comment), the last bucket is the overflow bucket.
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  /// The q-quantile (q in [0, 1]) estimated from the bucket counts: the
  /// inclusive upper bound of the bucket containing the ceil(q * count)-th
  /// smallest value, clamped to the exact tracked maximum (so quantiles in
  /// the overflow bucket — and q = 1 — are exact). Returns 0 on an empty
  /// histogram.
  std::uint64_t Quantile(double q) const;

  /// Adds `other`'s buckets and totals into this (shard / snapshot merge).
  void Merge(const HistogramData& other);
};

/// A fixed-bucket log-scale histogram of nonnegative 64-bit samples
/// (latencies in ns, sizes in bytes). Thread-sharded like Counter.
class Histogram {
 public:
  /// 38 finite power-of-two buckets (1 ns … ~2^37 ns ≈ 137 s as upper
  /// bounds) plus the overflow bucket.
  static constexpr unsigned kBucketCount = 39;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// The bucket `value` lands in: its bit width, clamped to the overflow
  /// bucket. Bucket 0 holds only value 0.
  static unsigned BucketIndex(std::uint64_t value);

  /// Inclusive upper bound of finite bucket i (2^i - 1); the overflow
  /// bucket has no finite bound and reports UINT64_MAX.
  static std::uint64_t BucketUpperBound(unsigned index);

  /// Records one sample: bucket add + sum add + count add on this thread's
  /// shard, plus a relaxed max update (one compare, usually no write).
  void Record(std::uint64_t value) { RecordMany(value, 1); }

  /// Records `n` identical samples with the same per-event cost as one
  /// (batch fan-outs observe one latency for n requests).
  void RecordMany(std::uint64_t value, std::uint64_t n);

  /// Sums the shards into an aggregated view.
  HistogramData Snapshot() const;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kBucketCount] = {};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  Shard shards_[kMetricShards];
};

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One instrument's scraped state.
struct MetricSample {
  std::string name;
  std::string help;
  InstrumentKind kind = InstrumentKind::kCounter;
  std::uint64_t counter_value = 0;  // kCounter
  std::int64_t gauge_value = 0;     // kGauge
  HistogramData histogram;          // kHistogram
};

/// A point-in-time scrape of a registry: samples sorted by name (the
/// registration order is irrelevant, the exposition is deterministic).
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// The sample named `name`, or nullptr.
  const MetricSample* Find(const std::string& name) const;
};

/// A named collection of instruments. Registration (GetX) takes a mutex;
/// the returned references are valid for the registry's lifetime and their
/// updates never lock. Re-getting an existing name returns the same
/// instrument; requesting it as a different kind aborts (programmer error,
/// same contract as PPREF_CHECK).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry: library-internal instruments (the DP
  /// engine's step counters, the PPD evaluator's session counters) register
  /// here so any embedder can scrape them.
  static MetricsRegistry& Default();

  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  Histogram& GetHistogram(const std::string& name,
                          const std::string& help = "");

  /// Scrapes every instrument. Safe against concurrent registration and
  /// concurrent updates (monitoring consistency).
  MetricsSnapshot Snapshot() const;

 private:
  struct Entry {
    InstrumentKind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetEntry(const std::string& name, const std::string& help,
                  InstrumentKind kind);

  mutable std::mutex mutex_;
  // std::map: Snapshot() iterates in name order for free.
  std::map<std::string, Entry> entries_;
};

}  // namespace ppref::obs

#endif  // PPREF_OBS_METRICS_H_
