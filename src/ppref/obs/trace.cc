#include "ppref/obs/trace.h"

namespace ppref::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kAdmission:
      return "admission";
    case Stage::kDedupFold:
      return "dedup_fold";
    case Stage::kQueue:
      return "queue";
    case Stage::kPlanCompile:
      return "plan_compile";
    case Stage::kCacheWait:
      return "cache_wait";
    case Stage::kDpExecute:
      return "dp_execute";
    case Stage::kMcFallback:
      return "mc_fallback";
    case Stage::kScatter:
      return "scatter";
    case Stage::kCircuitCompile:
      return "circuit_compile";
    case Stage::kCircuitEval:
      return "circuit_eval";
    case Stage::kStoreLoad:
      return "store_load";
    case Stage::kHardSample:
      return "hard_sample";
  }
  return "unknown";
}

std::uint64_t TraceRecord::StageTotalNs() const {
  std::uint64_t total = 0;
  for (std::uint64_t ns : stage_ns) total += ns;
  return total;
}

Tracer::Tracer(std::size_t capacity, unsigned sample_permyriad)
    : sample_permyriad_(sample_permyriad), ring_(capacity) {}

bool Tracer::ShouldSample(std::uint64_t fingerprint) const {
  const unsigned rate = sample_permyriad();
  if (rate == 0) return false;
  if (rate >= 10000) return true;
  // One multiplicative mix (the fingerprint is already a good 64-bit hash,
  // but result keys of one workload can share low bits) and a modulo into
  // the permyriad space. Deterministic per fingerprint.
  const std::uint64_t mixed = fingerprint * 0x9E3779B97F4A7C15ull;
  return (mixed >> 32) % 10000 < rate;
}

}  // namespace ppref::obs
