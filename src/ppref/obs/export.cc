#include "ppref/obs/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace ppref::obs {
namespace {

void Append(std::string& out, const char* format, ...) {
  char buffer[512];
  va_list args;
  va_start(args, format);
  const int written = std::vsnprintf(buffer, sizeof(buffer), format, args);
  va_end(args);
  if (written > 0) {
    out.append(buffer,
               std::min<std::size_t>(static_cast<std::size_t>(written),
                                     sizeof(buffer) - 1));
  }
}

/// Escapes a HELP string per the text format (backslash and newline).
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

const char* TypeName(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter:
      return "counter";
    case InstrumentKind::kGauge:
      return "gauge";
    case InstrumentKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

void RenderHistogramPrometheus(std::string& out, const MetricSample& sample) {
  const HistogramData& data = sample.histogram;
  // Cumulative buckets. Empty buckets below occupied ones still matter for
  // the cumulative reading, but emitting all 39 per histogram would bloat
  // the scrape; the standard trick is to emit a bucket only when its
  // cumulative count changes, plus the mandatory +Inf bucket.
  std::uint64_t cumulative = 0;
  std::uint64_t emitted = 0;
  for (unsigned i = 0; i + 1 < data.buckets.size(); ++i) {
    cumulative += data.buckets[i];
    if (cumulative == emitted) continue;
    emitted = cumulative;
    Append(out, "%s_bucket{le=\"%" PRIu64 "\"} %" PRIu64 "\n",
           sample.name.c_str(), Histogram::BucketUpperBound(i), cumulative);
  }
  Append(out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n", sample.name.c_str(),
         data.count);
  Append(out, "%s_sum %" PRIu64 "\n", sample.name.c_str(), data.sum);
  Append(out, "%s_count %" PRIu64 "\n", sample.name.c_str(), data.count);
}

void AppendJsonHistogram(std::string& out, const HistogramData& data) {
  Append(out,
         "{\"count\": %" PRIu64 ", \"sum\": %" PRIu64 ", \"max\": %" PRIu64
         ", \"p50\": %" PRIu64 ", \"p95\": %" PRIu64 ", \"p99\": %" PRIu64
         ", \"buckets\": {",
         data.count, data.sum, data.max, data.Quantile(0.50),
         data.Quantile(0.95), data.Quantile(0.99));
  bool first = true;
  for (unsigned i = 0; i < data.buckets.size(); ++i) {
    if (data.buckets[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    if (i + 1 == data.buckets.size()) {
      Append(out, "\"+Inf\": %" PRIu64, data.buckets[i]);
    } else {
      Append(out, "\"%" PRIu64 "\": %" PRIu64, Histogram::BucketUpperBound(i),
             data.buckets[i]);
    }
  }
  out += "}}";
}

}  // namespace

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricSample& sample : snapshot.samples) {
    if (!sample.help.empty()) {
      Append(out, "# HELP %s %s\n", sample.name.c_str(),
             EscapeHelp(sample.help).c_str());
    }
    Append(out, "# TYPE %s %s\n", sample.name.c_str(), TypeName(sample.kind));
    switch (sample.kind) {
      case InstrumentKind::kCounter:
        Append(out, "%s %" PRIu64 "\n", sample.name.c_str(),
               sample.counter_value);
        break;
      case InstrumentKind::kGauge:
        Append(out, "%s %" PRId64 "\n", sample.name.c_str(),
               sample.gauge_value);
        break;
      case InstrumentKind::kHistogram: {
        RenderHistogramPrometheus(out, sample);
        // The exact maximum as a companion gauge (see file comment).
        const std::string max_name = sample.name + "_max";
        Append(out, "# TYPE %s gauge\n", max_name.c_str());
        Append(out, "%s %" PRIu64 "\n", max_name.c_str(),
               sample.histogram.max);
        break;
      }
    }
  }
  return out;
}

std::string RenderJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"metrics\": {";
  bool first = true;
  for (const MetricSample& sample : snapshot.samples) {
    if (!first) out += ", ";
    first = false;
    Append(out, "\"%s\": ", sample.name.c_str());
    switch (sample.kind) {
      case InstrumentKind::kCounter:
        Append(out, "%" PRIu64, sample.counter_value);
        break;
      case InstrumentKind::kGauge:
        Append(out, "%" PRId64, sample.gauge_value);
        break;
      case InstrumentKind::kHistogram:
        AppendJsonHistogram(out, sample.histogram);
        break;
    }
  }
  out += "}}\n";
  return out;
}

std::string RenderTracesJson(const std::vector<TraceRecord>& records) {
  std::string out = "{\"traces\": [";
  for (std::size_t r = 0; r < records.size(); ++r) {
    const TraceRecord& record = records[r];
    if (r != 0) out += ", ";
    Append(out,
           "\n  {\"fingerprint\": \"%016" PRIx64 "\", \"total_ns\": %" PRIu64
           ", \"status\": %u, \"approximate\": %s, \"cache_hit\": %s, "
           "\"stages\": {",
           record.fingerprint, record.TotalNs(),
           static_cast<unsigned>(record.status_code),
           record.approximate ? "true" : "false",
           record.cache_hit ? "true" : "false");
    bool first = true;
    for (unsigned s = 0; s < kStageCount; ++s) {
      if (record.stage_ns[s] == 0) continue;
      if (!first) out += ", ";
      first = false;
      Append(out, "\"%s\": %" PRIu64, StageName(static_cast<Stage>(s)),
             record.stage_ns[s]);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

}  // namespace ppref::obs
