/// \file trace.h
/// \brief `ppref::obs` — request tracing: a per-request, per-stage timeline
/// recorded into a bounded ring buffer, behind a deterministic sampling
/// knob.
///
/// Aggregate histograms (metrics.h) answer "what is the p99"; a trace
/// answers "where did *this* request's time go" — queue vs. plan compile
/// vs. cache wait vs. DP execute vs. Monte-Carlo fallback. A `TraceRecord`
/// carries one duration per pipeline stage plus the end-to-end envelope;
/// stage durations are measured at the transitions of one contiguous
/// pipeline, so they sum to the envelope up to clock-read skew and a few
/// nanoseconds of untimed glue.
///
/// ## Sampling
/// Tracing every request would make the trace buffer the hottest lock in
/// the server. `Tracer::ShouldSample` decides per request fingerprint with
/// one multiply-and-compare — deterministic (the same request is always
/// traced or always not, so a recurring slow query is either always visible
/// or reliably absent, never flickering) and free of any RNG state. At the
/// default 0‱ the whole tracing path is a null-pointer check.
///
/// ## Cost when off
/// A `TraceSpan` over a null record is two inlined branches; no clock read,
/// no atomic, no lock. Publishing (sampled requests only) takes the ring
/// buffer mutex once per request.

#ifndef PPREF_OBS_TRACE_H_
#define PPREF_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "ppref/common/clock.h"
#include "ppref/common/ring_buffer.h"

namespace ppref::obs {

/// The pipeline stages of one served request, in pipeline order.
enum class Stage : std::uint8_t {
  kAdmission = 0,   // admission control + validation
  kDedupFold,       // batch dedup: unit building + result-cache probe
  kQueue,           // waiting for a worker to pick the unit up
  kPlanCompile,     // compiling a DpPlan (plan-cache miss, this thread)
  kCacheWait,       // waiting on another thread's single-flight compile
  kDpExecute,       // the exact DP scan
  kMcFallback,      // Monte-Carlo degradation sampling
  kScatter,         // result publication + response scatter
  kCircuitCompile,  // compiling an arithmetic circuit (circuit-cache miss)
  kCircuitEval,     // evaluating a cached circuit over a parameter sweep
  kStoreLoad,       // loading + decoding a record from the persistent store
  kHardSample,      // hard-tier adaptive / consensus world sampling
};
inline constexpr unsigned kStageCount = 12;

/// Stable lower_snake_case stage names for exposition.
const char* StageName(Stage stage);

/// One traced request: fingerprint, end-to-end envelope, per-stage
/// durations, and the terminal disposition.
struct TraceRecord {
  /// The request's content fingerprint (result key) — correlates the trace
  /// with cache keys and with recurring requests across scrapes.
  std::uint64_t fingerprint = 0;
  /// Envelope on the monotonic clock (MonotonicNowNs).
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  /// Nanoseconds spent per stage; untouched stages stay 0.
  std::uint64_t stage_ns[kStageCount] = {};
  /// `Status::code()` of the response, as its numeric value.
  std::uint8_t status_code = 0;
  /// The answer was a Monte-Carlo degradation.
  bool approximate = false;
  /// The answer came from the result cache (no execute stage at all).
  bool cache_hit = false;

  std::uint64_t TotalNs() const { return end_ns - start_ns; }
  std::uint64_t StageTotalNs() const;
};

/// Owns the sampling decision and the bounded record ring.
class Tracer {
 public:
  /// `capacity` bounds retained records (oldest overwritten);
  /// `sample_permyriad` is the sampling rate in 1/10000ths (100 = 1%).
  explicit Tracer(std::size_t capacity = 1024,
                  unsigned sample_permyriad = 0);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Deterministic per-fingerprint sampling decision; rate 0 never samples,
  /// rate >= 10000 always does.
  bool ShouldSample(std::uint64_t fingerprint) const;

  /// Current sampling rate in permyriad; adjustable at runtime (relaxed —
  /// a racing request samples under either rate, both are valid).
  unsigned sample_permyriad() const {
    return sample_permyriad_.load(std::memory_order_relaxed);
  }
  void set_sample_permyriad(unsigned permyriad) {
    sample_permyriad_.store(permyriad, std::memory_order_relaxed);
  }

  void Publish(const TraceRecord& record) { ring_.Push(record); }

  /// Retained records, oldest first.
  std::vector<TraceRecord> Snapshot() const { return ring_.Snapshot(); }

  /// Records ever published (including overwritten ones).
  std::uint64_t total_published() const { return ring_.total_pushed(); }

  std::size_t capacity() const { return ring_.capacity(); }

 private:
  std::atomic<unsigned> sample_permyriad_;
  BoundedRing<TraceRecord> ring_;
};

/// RAII stage timer: measures its own lifetime into `record->stage_ns`.
/// A null record makes construction and destruction branch-only no-ops —
/// the unsampled fast path.
class TraceSpan {
 public:
  TraceSpan(TraceRecord* record, Stage stage) : record_(record) {
    if (record_ != nullptr) {
      stage_ = stage;
      start_ns_ = MonotonicNowNs();
    }
  }

  ~TraceSpan() {
    if (record_ != nullptr) {
      record_->stage_ns[static_cast<unsigned>(stage_)] +=
          MonotonicNowNs() - start_ns_;
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecord* record_;
  Stage stage_ = Stage::kAdmission;
  std::uint64_t start_ns_ = 0;
};

}  // namespace ppref::obs

#endif  // PPREF_OBS_TRACE_H_
