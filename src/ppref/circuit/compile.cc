#include "ppref/circuit/compile.h"

#include "ppref/common/check.h"
#include "ppref/infer/internal/dp_engine.h"
#include "ppref/obs/metrics.h"

namespace ppref::circuit {
namespace {

using infer::internal::DpPlan;

obs::Counter& CompileCounter() {
  static obs::Counter* counter = &obs::MetricsRegistry::Default().GetCounter(
      "ppref_circuit_compiles_total",
      "Arithmetic circuits compiled from DP plans");
  return *counter;
}

obs::Counter& CompiledNodesCounter() {
  static obs::Counter* counter = &obs::MetricsRegistry::Default().GetCounter(
      "ppref_circuit_nodes_total",
      "Arena nodes emitted across all circuit compilations");
  return *counter;
}

Circuit Finish(CircuitBuilder&& builder) {
  Circuit circuit = std::move(builder).Build();
  CompileCounter().Inc();
  CompiledNodesCounter().Inc(circuit.size());
  return circuit;
}

}  // namespace

Circuit CompileTopProb(const DpPlan& plan, const infer::Matching& gamma,
                       const infer::MinMaxCondition* condition) {
  CircuitBuilder builder(plan.model().model().size());
  DpPlan::Scratch scratch;
  builder.SetRoot(plan.RecordTopProb(gamma, condition, scratch, builder));
  return Finish(std::move(builder));
}

Circuit CompilePatternProb(const DpPlan& plan, bool prune_candidates) {
  PPREF_CHECK_MSG(plan.tracked().empty(),
                  "PatternProb circuits require a tracked-free plan");
  CircuitBuilder builder(plan.model().model().size());
  // Mirrors PatternProbWithPlan: the empty pattern always matches; otherwise
  // total starts at 0.0 and folds per-candidate TopProb in enumeration order.
  if (plan.pattern().NodeCount() == 0) {
    builder.SetRoot(builder.One());
    return Finish(std::move(builder));
  }
  DpPlan::Scratch scratch;
  NodeId total = builder.Zero();
  infer::internal::ForEachCandidate(
      plan.model(), plan.pattern(),
      [&](const infer::Matching& gamma) {
        total = builder.Add(
            total, plan.RecordTopProb(gamma, /*condition=*/nullptr, scratch,
                                      builder));
      },
      prune_candidates);
  builder.SetRoot(total);
  return Finish(std::move(builder));
}

Circuit CompilePatternMinMaxProb(const DpPlan& plan,
                                 const infer::MinMaxCondition& condition,
                                 bool prune_candidates) {
  PPREF_CHECK(condition != nullptr);
  CircuitBuilder builder(plan.model().model().size());
  // Mirrors PatternMinMaxProbWithPlan, including the empty-pattern case
  // (one conditioned run with the empty matching).
  DpPlan::Scratch scratch;
  if (plan.pattern().NodeCount() == 0) {
    builder.SetRoot(
        plan.RecordTopProb(/*gamma=*/{}, &condition, scratch, builder));
    return Finish(std::move(builder));
  }
  NodeId total = builder.Zero();
  infer::internal::ForEachCandidate(
      plan.model(), plan.pattern(),
      [&](const infer::Matching& gamma) {
        total = builder.Add(
            total, plan.RecordTopProb(gamma, &condition, scratch, builder));
      },
      prune_candidates);
  builder.SetRoot(total);
  return Finish(std::move(builder));
}

}  // namespace ppref::circuit
