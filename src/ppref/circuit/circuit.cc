#include "ppref/circuit/circuit.h"

#include <algorithm>
#include <bit>

#include "ppref/common/check.h"

namespace ppref::circuit {

namespace {
constexpr NodeId kNoNode = static_cast<NodeId>(-1);
}  // namespace

CircuitBuilder::CircuitBuilder(unsigned items) {
  circuit_.items_ = items;
  leaf_index_.assign(static_cast<std::size_t>(items) * items, kNoNode);
  // Pinned singletons: node 0 == 0.0, node 1 == 1.0 (see class comment).
  Constant(0.0);
  Constant(1.0);
}

NodeId CircuitBuilder::Append(Op op, NodeId a, NodeId b, NodeId c) {
  const auto id = static_cast<NodeId>(circuit_.nodes_.size());
  circuit_.nodes_.push_back(Circuit::Node{a, b, c, op});
  return id;
}

NodeId CircuitBuilder::Constant(double value) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  if (const auto it = const_index_.find(bits); it != const_index_.end()) {
    return it->second;
  }
  const auto slot = static_cast<NodeId>(circuit_.consts_.size());
  circuit_.consts_.push_back(value);
  const NodeId id = Append(Op::kConst, slot, 0, 0);
  const_index_.emplace(bits, id);
  return id;
}

NodeId CircuitBuilder::Leaf(unsigned t, unsigned slot) {
  PPREF_CHECK(t < circuit_.items_ && slot <= t);
  NodeId& cached =
      leaf_index_[static_cast<std::size_t>(t) * circuit_.items_ + slot];
  if (cached != kNoNode) return cached;
  cached = Append(Op::kLeaf, t, slot, 0);
  return cached;
}

NodeId CircuitBuilder::Add(NodeId a, NodeId b) {
  return Append(Op::kAdd, a, b, 0);
}

NodeId CircuitBuilder::Mul(NodeId a, NodeId b) {
  return Append(Op::kMul, a, b, 0);
}

NodeId CircuitBuilder::MulAdd(NodeId acc, NodeId b, NodeId c) {
  return Append(Op::kMulAdd, acc, b, c);
}

NodeId CircuitBuilder::PrefixDiff(unsigned t, unsigned hi_index,
                                  unsigned lo_index) {
  PPREF_CHECK(t < circuit_.items_ && lo_index <= hi_index &&
              hi_index <= t + 1);
  return Append(Op::kPrefixDiff, t, hi_index, lo_index);
}

Circuit CircuitBuilder::Build() && {
  Circuit& c = circuit_;
  c.prefix_steps_.clear();
  for (const Circuit::Node& node : c.nodes_) {
    if (node.op == Op::kPrefixDiff) c.prefix_steps_.push_back(node.a);
  }
  std::sort(c.prefix_steps_.begin(), c.prefix_steps_.end());
  c.prefix_steps_.erase(
      std::unique(c.prefix_steps_.begin(), c.prefix_steps_.end()),
      c.prefix_steps_.end());
  c.nodes_.shrink_to_fit();
  c.consts_.shrink_to_fit();
  return std::move(circuit_);
}

Circuit Circuit::FromBorrowedArena(const Node* nodes, std::size_t count,
                                   std::vector<double> consts,
                                   std::vector<unsigned> prefix_steps,
                                   NodeId root, unsigned items,
                                   std::shared_ptr<const void> owner) {
  PPREF_CHECK(nodes != nullptr && root < count);
  Circuit c;
  c.arena_ = nodes;
  c.arena_size_ = count;
  c.arena_owner_ = std::move(owner);
  c.consts_ = std::move(consts);
  c.prefix_steps_ = std::move(prefix_steps);
  c.root_ = root;
  c.items_ = items;
  return c;
}

namespace {

/// Builds the Π prefix rows a binding needs, by the same left-to-right
/// accumulation the DP uses (bit-identity): row(t)[0] = 0,
/// row(t)[x + 1] = row(t)[x] + Π(t, x). Rows for all steps in
/// `prefix_steps` are packed back to back with a lane stride of `lanes`
/// (lane-major within each entry), written at lane `lane`.
void FillPrefixRows(const std::vector<unsigned>& prefix_steps,
                    const rim::InsertionFunction& pi, std::size_t lanes,
                    std::size_t lane, std::vector<std::size_t>& offsets,
                    double* prefix) {
  std::size_t offset = 0;
  for (unsigned t : prefix_steps) {
    offsets[t] = offset;
    double* row = prefix + offset * lanes + lane;
    row[0] = 0.0;
    for (unsigned x = 0; x <= t; ++x) {
      row[(x + 1) * lanes] = row[x * lanes] + pi.Prob(t, x);
    }
    offset += t + 2;
  }
}

}  // namespace

double Circuit::Evaluate(const rim::InsertionFunction& pi,
                         EvalScratch& scratch) const {
  PPREF_CHECK_MSG(pi.size() == items_,
                  "insertion function size does not match circuit");
  // Π prefix rows for the steps the circuit references, rebuilt per binding.
  scratch.prefix_offset_.assign(items_, 0);
  std::size_t total = 0;
  for (unsigned t : prefix_steps_) total += t + 2;
  scratch.prefix_.resize(total);
  FillPrefixRows(prefix_steps_, pi, /*lanes=*/1, /*lane=*/0,
                 scratch.prefix_offset_, scratch.prefix_.data());

  scratch.values_.resize(size());
  double* __restrict v = scratch.values_.data();
  const double* prefix = scratch.prefix_.data();
  const std::size_t* offsets = scratch.prefix_offset_.data();
  const Node* nodes = arena();
  const std::size_t count = size();
  for (std::size_t i = 0; i < count; ++i) {
    const Node node = nodes[i];
    switch (node.op) {
      case Op::kConst:
        v[i] = consts_[node.a];
        break;
      case Op::kLeaf:
        v[i] = pi.Prob(node.a, node.b);
        break;
      case Op::kAdd:
        v[i] = v[node.a] + v[node.b];
        break;
      case Op::kMul:
        v[i] = v[node.a] * v[node.b];
        break;
      case Op::kMulAdd:
        v[i] = v[node.a] + v[node.b] * v[node.c];
        break;
      case Op::kPrefixDiff: {
        const double* row = prefix + offsets[node.a];
        v[i] = row[node.b] - row[node.c];
        break;
      }
    }
  }
  return v[root_];
}

void Circuit::EvaluateMany(const rim::InsertionFunction* pis,
                           std::size_t count, EvalScratch& scratch,
                           double* out) const {
  constexpr std::size_t W = kEvalLanes;
  std::size_t p = 0;
  for (; p + W <= count; p += W) {
    for (std::size_t w = 0; w < W; ++w) {
      PPREF_CHECK_MSG(pis[p + w].size() == items_,
                      "insertion function size does not match circuit");
    }
    // Lane-major prefix rows: entry x of step t for lane w lives at
    // offset(t)*W + x*W + w.
    scratch.prefix_offset_.assign(items_, 0);
    std::size_t total = 0;
    for (unsigned t : prefix_steps_) total += t + 2;
    scratch.prefix_.resize(total * W);
    for (std::size_t w = 0; w < W; ++w) {
      FillPrefixRows(prefix_steps_, pis[p + w], W, w,
                     scratch.prefix_offset_, scratch.prefix_.data());
    }

    scratch.values_.resize(size() * W);
    double* __restrict v = scratch.values_.data();
    const double* prefix = scratch.prefix_.data();
    const std::size_t* offsets = scratch.prefix_offset_.data();
    const Node* nodes = arena();
    const std::size_t node_count = size();
    // Each lane runs the exact scalar op sequence on its own values; the
    // inner fixed-width loops are contiguous and branch-free, so the block
    // pass is one arena traversal for W bindings instead of W.
    for (std::size_t i = 0; i < node_count; ++i) {
      const Node node = nodes[i];
      double* lane = v + i * W;
      const double* a = v + static_cast<std::size_t>(node.a) * W;
      const double* b = v + static_cast<std::size_t>(node.b) * W;
      const double* c = v + static_cast<std::size_t>(node.c) * W;
      switch (node.op) {
        case Op::kConst: {
          const double value = consts_[node.a];
          for (std::size_t w = 0; w < W; ++w) lane[w] = value;
          break;
        }
        case Op::kLeaf:
          for (std::size_t w = 0; w < W; ++w) {
            lane[w] = pis[p + w].Prob(node.a, node.b);
          }
          break;
        case Op::kAdd:
          for (std::size_t w = 0; w < W; ++w) lane[w] = a[w] + b[w];
          break;
        case Op::kMul:
          for (std::size_t w = 0; w < W; ++w) lane[w] = a[w] * b[w];
          break;
        case Op::kMulAdd:
          for (std::size_t w = 0; w < W; ++w) lane[w] = a[w] + b[w] * c[w];
          break;
        case Op::kPrefixDiff: {
          const double* row = prefix + offsets[node.a] * W;
          const std::size_t hi = static_cast<std::size_t>(node.b) * W;
          const std::size_t lo = static_cast<std::size_t>(node.c) * W;
          for (std::size_t w = 0; w < W; ++w) {
            lane[w] = row[hi + w] - row[lo + w];
          }
          break;
        }
      }
    }
    const double* root = v + static_cast<std::size_t>(root_) * W;
    for (std::size_t w = 0; w < W; ++w) out[p + w] = root[w];
  }
  for (; p < count; ++p) out[p] = Evaluate(pis[p], scratch);
}

}  // namespace ppref::circuit
