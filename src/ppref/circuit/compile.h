/// \file compile.h
/// \brief Compiles safe-query plans into parameterized arithmetic circuits.
///
/// Each driver here mirrors one of the plan-injection entry points of the
/// inference layer (`PatternProbWithPlan`, `PatternMinMaxProbWithPlan`,
/// `DpPlan::TopProb`): it replays the same candidate enumeration and the
/// same DP scan once, in recording mode, and returns a `Circuit` whose
/// evaluation against any `rim::InsertionFunction` of the same size equals
/// the corresponding numeric call bit for bit (see circuit/circuit.h for
/// the contract). Compilation cost is one DP pass over all candidates —
/// the same work as a single numeric query — amortized across every
/// subsequent re-binding.

#ifndef PPREF_CIRCUIT_COMPILE_H_
#define PPREF_CIRCUIT_COMPILE_H_

#include "ppref/circuit/circuit.h"
#include "ppref/infer/internal/dp_plan.h"
#include "ppref/infer/matching.h"
#include "ppref/infer/minmax_condition.h"

namespace ppref::circuit {

/// Circuit for `plan.TopProb(gamma, condition)` — a single candidate γ.
Circuit CompileTopProb(const infer::internal::DpPlan& plan,
                       const infer::Matching& gamma,
                       const infer::MinMaxCondition* condition = nullptr);

/// Circuit for `PatternProbWithPlan(plan, ...)`: per-candidate TopProb
/// summed in enumeration order (bit-identical to both the serial and the
/// ordered-parallel reduction). `plan` must be tracked-free.
Circuit CompilePatternProb(const infer::internal::DpPlan& plan,
                           bool prune_candidates = true);

/// Circuit for `PatternMinMaxProbWithPlan(plan, condition, ...)`. The
/// condition is folded at compile time (it filters packed states, never
/// Π values), so the circuit is specific to it.
Circuit CompilePatternMinMaxProb(const infer::internal::DpPlan& plan,
                                 const infer::MinMaxCondition& condition,
                                 bool prune_candidates = true);

}  // namespace ppref::circuit

#endif  // PPREF_CIRCUIT_COMPILE_H_
