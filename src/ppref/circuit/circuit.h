/// \file circuit.h
/// \brief Parameterized arithmetic circuits compiled from safe-query plans.
///
/// A `Circuit` is the multiply-add structure of one `DpPlan` execution (or a
/// sum of executions over candidate matchings), recorded once and re-playable
/// against any insertion function Π over the same number of items. Leaves
/// reference insertion probabilities *symbolically* as (reference step t,
/// slot j) pairs — the paper's Π(t+1, j+1) — so the circuit captures
/// everything about the model *except* Π: re-binding the leaves from a new
/// `rim::InsertionFunction` and evaluating in topological order answers the
/// same query under new parameters without re-running the DP. That is the
/// Monet–Olteanu observation specialized to the RIM DP: safe plans compile
/// to decomposable arithmetic circuits, and φ-sweeps / per-user
/// re-parameterizations become cheap circuit evaluations.
///
/// Bit-identity contract: evaluation performs *exactly* the floating-point
/// operations of the DP, in the same order — every node kind mirrors one
/// source expression of `DpPlan`'s scan (`RunCoreImpl`), including the
/// sequential prefix-sum accumulation behind the collapsed slot-range
/// weights (`kPrefixDiff` re-derives its row by the same left-to-right
/// summation rather than a direct range sum, which would round differently).
/// Since the DP's control flow never depends on Π values, the recorded
/// structure is valid for every re-binding: `Evaluate(pi)` equals what the
/// DP would return for `pi`, bit for bit, not just at the compile-time
/// parameters. Tests gate the compile-time case exactly and the re-binding
/// case through a fuzz sweep.
///
/// Nodes live in a flat arena of packed 16-byte records in construction
/// order, which is already topological (operands are created before
/// consumers), so evaluation is a single forward pass with no recursion,
/// pointer chasing, or per-node allocation — one cache line covers four
/// nodes. `EvaluateMany` amortizes that pass over several bindings at once:
/// lanes of `kEvalLanes` parameter vectors advance through the arena
/// together (each lane performing exactly the scalar op sequence, so
/// per-lane bit-identity is untouched), which turns the memory-bound arena
/// walk into arithmetic on contiguous lane blocks.

#ifndef PPREF_CIRCUIT_CIRCUIT_H_
#define PPREF_CIRCUIT_CIRCUIT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ppref/rim/insertion.h"

namespace ppref::circuit {

/// Node id: an index into the arena. Construction order == topological order.
using NodeId = std::uint32_t;

/// Node kinds. Operand fields a/b/c are interpreted per kind.
enum class Op : std::uint8_t {
  kConst,       // consts[a]
  kLeaf,        // pi.Prob(a, b)                — insertion probability Π
  kAdd,         // v[a] + v[b]
  kMul,         // v[a] * v[b]
  kMulAdd,      // v[a] + v[b] * v[c]           — the DP's fused accumulate
  kPrefixDiff,  // prefix_row(a)[b] - prefix_row(a)[c]
};

/// Lane width of `EvaluateMany`'s blocked pass (number of bindings that
/// advance through the arena together).
inline constexpr std::size_t kEvalLanes = 4;

/// Reusable evaluation buffers; grow on first use, recycled across calls.
/// One scratch per concurrently evaluating thread.
class EvalScratch {
 public:
  EvalScratch() = default;

 private:
  friend class Circuit;
  std::vector<double> values_;
  std::vector<double> prefix_;               // concatenated Π prefix rows
  std::vector<std::size_t> prefix_offset_;   // step t -> offset into prefix_
};

/// A compiled, immutable arithmetic circuit. Thread-safe to share; each
/// evaluating thread brings its own `EvalScratch`.
///
/// The node arena is either owned (built by `CircuitBuilder`) or *borrowed*
/// from external storage via `FromBorrowedArena` — the store's zero-copy
/// load path hands the arena straight out of an mmap'ed segment, with a
/// keep-alive `shared_ptr` pinning the mapping for the circuit's lifetime.
/// Evaluation is identical either way: the records are the on-disk bytes.
class Circuit {
 public:
  /// One packed arena record; four per cache line. The layout is part of
  /// the store's on-disk format (store/format.h) — records are written and
  /// mapped back verbatim.
  struct Node {
    NodeId a;
    NodeId b;
    NodeId c;
    Op op;
  };
  static_assert(sizeof(Node) == 16, "arena records are 16 bytes on disk");

  /// Re-binds the leaves from `pi` and evaluates the circuit. `pi.size()`
  /// must equal `items()`. Returns the root value — bit-identical to the
  /// DP execution the circuit was recorded from, run against `pi`.
  double Evaluate(const rim::InsertionFunction& pi, EvalScratch& scratch) const;

  /// Evaluates the circuit against `count` bindings in one blocked arena
  /// pass, writing root values to `out[0..count)`. `out[i]` is bit-identical
  /// to `Evaluate(pis[i], scratch)` — lanes never mix, each performs the
  /// scalar op sequence — the blocking only amortizes the arena traversal.
  void EvaluateMany(const rim::InsertionFunction* pis, std::size_t count,
                    EvalScratch& scratch, double* out) const;

  /// Assembles a circuit over a borrowed node arena. `nodes` must stay
  /// valid for the circuit's lifetime; `owner` pins the backing storage
  /// (an mmap'ed segment). The caller is responsible for having validated
  /// the arena (store/codec.cc does: ops known, operands topological and
  /// in range) — evaluation trusts it like a built one.
  static Circuit FromBorrowedArena(const Node* nodes, std::size_t count,
                                   std::vector<double> consts,
                                   std::vector<unsigned> prefix_steps,
                                   NodeId root, unsigned items,
                                   std::shared_ptr<const void> owner);

  /// Number of items m the circuit was compiled for (leaves reference
  /// steps t < m).
  unsigned items() const { return items_; }

  /// The node arena in topological order (owned or borrowed).
  const Node* arena() const {
    return arena_ != nullptr ? arena_ : nodes_.data();
  }

  /// Total node count (arena size).
  std::size_t size() const {
    return arena_ != nullptr ? arena_size_ : nodes_.size();
  }

  /// Read accessors for serialization (store/codec.cc).
  const std::vector<double>& consts() const { return consts_; }
  const std::vector<unsigned>& prefix_steps() const { return prefix_steps_; }
  NodeId root() const { return root_; }

  /// Approximate resident bytes of the arena — the circuit-cache weight.
  /// A borrowed arena still counts: its pages are resident via the mapping.
  std::size_t MemoryBytes() const {
    return size() * sizeof(Node) + consts_.size() * sizeof(double) +
           prefix_steps_.size() * sizeof(unsigned);
  }

 private:
  friend class CircuitBuilder;

  std::vector<Node> nodes_;             // owned arena (empty when borrowed)
  const Node* arena_ = nullptr;         // borrowed arena (null when owned)
  std::size_t arena_size_ = 0;
  std::shared_ptr<const void> arena_owner_;  // keep-alive for `arena_`
  std::vector<double> consts_;
  std::vector<unsigned> prefix_steps_;  // sorted distinct steps of kPrefixDiff
  NodeId root_ = 0;
  unsigned items_ = 0;
};

/// Append-only circuit builder. Node 0 is always Const(0.0) and node 1 is
/// always Const(1.0) — `FlatStateMap` initializes fresh entries to 0.0, so
/// a recorded accumulator slot whose value reads 0.0 *is* node id `Zero()`.
/// Leaves and constants are deduplicated; Add/Mul/MulAdd/PrefixDiff are
/// appended verbatim because their order is the recorded accumulation order.
class CircuitBuilder {
 public:
  /// `items` is the model size m; leaves must reference steps t < items.
  explicit CircuitBuilder(unsigned items);

  NodeId Zero() const { return 0; }
  NodeId One() const { return 1; }
  NodeId Constant(double value);
  NodeId Leaf(unsigned t, unsigned slot);
  NodeId Add(NodeId a, NodeId b);
  NodeId Mul(NodeId a, NodeId b);
  NodeId MulAdd(NodeId acc, NodeId b, NodeId c);  // acc + b * c
  /// prefix_row(t)[hi_index] - prefix_row(t)[lo_index], where prefix_row(t)
  /// is the sequential prefix sum of Π's row t: row[0] = 0,
  /// row[x + 1] = row[x] + Π(t, x).
  NodeId PrefixDiff(unsigned t, unsigned hi_index, unsigned lo_index);

  void SetRoot(NodeId root) { circuit_.root_ = root; }

  std::size_t size() const { return circuit_.nodes_.size(); }

  /// Finalizes and returns the circuit; the builder is consumed.
  Circuit Build() &&;

 private:
  NodeId Append(Op op, NodeId a, NodeId b, NodeId c);

  Circuit circuit_;
  /// Dense (t, slot) -> id table: recording calls Leaf for every Π read the
  /// DP performs, so this lookup must be an array index, not a hash probe.
  std::vector<NodeId> leaf_index_;
  std::unordered_map<std::uint64_t, NodeId> const_index_;  // bits -> id
};

}  // namespace ppref::circuit

#endif  // PPREF_CIRCUIT_CIRCUIT_H_
