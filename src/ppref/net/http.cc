#include "ppref/net/http.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>

#include "ppref/infer/labeling.h"
#include "ppref/net/codec.h"
#include "ppref/rim/insertion.h"
#include "ppref/rim/ranking.h"
#include "ppref/rim/rim_model.h"

namespace ppref::net {
namespace {

std::string ToLower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

const std::string* HttpRequest::Header(std::string_view lowercase_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lowercase_name) return &value;
  }
  return nullptr;
}

HttpAccumulator::State HttpAccumulator::Fail(std::string message) {
  state_ = State::kError;
  status_ = Status::InvalidArgument(std::move(message));
  return state_;
}

HttpAccumulator::State HttpAccumulator::Feed(std::string_view data) {
  if (state_ != State::kNeedMore) return state_;
  if (buffer_.size() + data.size() > max_bytes_) {
    return Fail("HTTP request exceeds size limit");
  }
  buffer_.append(data);
  return ParseBuffer();
}

HttpAccumulator::State HttpAccumulator::ParseBuffer() {
  const std::size_t header_end = buffer_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    // A request line must arrive eventually; catch plainly-not-HTTP early.
    if (buffer_.size() > 8192 && buffer_.find("\r\n") == std::string::npos) {
      return Fail("oversized HTTP request line");
    }
    return state_;
  }

  // Request line.
  const std::string_view head =
      std::string_view(buffer_).substr(0, header_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      head.substr(0, line_end == std::string_view::npos ? head.size()
                                                        : line_end);
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Fail("malformed HTTP request line");
  }
  const std::string_view version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    return Fail("unsupported HTTP version");
  }
  request_.method = std::string(request_line.substr(0, sp1));
  request_.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));

  // Headers.
  request_.headers.clear();
  std::size_t cursor = line_end == std::string_view::npos
                           ? head.size()
                           : line_end + 2;
  while (cursor < head.size()) {
    std::size_t next = head.find("\r\n", cursor);
    if (next == std::string_view::npos) next = head.size();
    const std::string_view line = head.substr(cursor, next - cursor);
    cursor = next + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Fail("malformed HTTP header");
    }
    request_.headers.emplace_back(ToLower(line.substr(0, colon)),
                                  std::string(Trim(line.substr(colon + 1))));
  }

  if (request_.Header("transfer-encoding") != nullptr) {
    return Fail("chunked transfer encoding unsupported");
  }
  std::size_t content_length = 0;
  if (const std::string* header = request_.Header("content-length")) {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(header->c_str(), &end, 10);
    if (end == header->c_str() || *end != '\0') {
      return Fail("malformed Content-Length");
    }
    content_length = static_cast<std::size_t>(parsed);
    if (content_length > max_bytes_) {
      return Fail("Content-Length exceeds size limit");
    }
  }
  const std::size_t body_start = header_end + 4;
  if (body_start + content_length > max_bytes_) {
    return Fail("HTTP request exceeds size limit");
  }
  if (buffer_.size() < body_start + content_length) return state_;
  if (buffer_.size() > body_start + content_length) {
    return Fail("bytes beyond Content-Length");
  }
  request_.body = buffer_.substr(body_start, content_length);
  state_ = State::kComplete;
  return state_;
}

std::string RenderHttpResponse(int status_code, std::string_view reason,
                               std::string_view content_type,
                               std::string_view body) {
  std::string out = "HTTP/1.1 " + std::to_string(status_code) + " " +
                    std::string(reason) + "\r\n";
  out += "Content-Type: " + std::string(content_type) + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

// ---------------------------------------------------------------------------
// /query JSON <-> wire mapping

namespace {

Status Bad(const char* what) {
  return Status::InvalidArgument(std::string("bad query: ") + what);
}

/// A JSON number that must be a non-negative integer below `limit`.
bool AsIndex(const JsonValue* value, std::uint64_t limit, std::uint64_t* out) {
  if (value == nullptr || !value->IsNumber()) return false;
  const double number = value->number;
  if (!(number >= 0) || number >= static_cast<double>(limit) ||
      number != std::floor(number)) {
    return false;
  }
  *out = static_cast<std::uint64_t>(number);
  return true;
}

}  // namespace

StatusOr<WireRequest> WireRequestFromJson(const JsonValue& root) {
  if (!root.IsObject()) return Bad("document must be an object");

  std::uint64_t id = 0;
  if (const JsonValue* id_value = root.Find("id")) {
    if (!AsIndex(id_value, static_cast<std::uint64_t>(1) << 53, &id)) {
      return Bad("\"id\" must be a non-negative integer");
    }
  }

  serve::Request::Kind kind = serve::Request::Kind::kPatternProb;
  if (const JsonValue* kind_value = root.Find("kind")) {
    if (!kind_value->IsString()) return Bad("\"kind\" must be a string");
    if (kind_value->string == "pattern_prob") {
      kind = serve::Request::Kind::kPatternProb;
    } else if (kind_value->string == "top_matching") {
      kind = serve::Request::Kind::kTopMatching;
    } else {
      return Bad("\"kind\" must be \"pattern_prob\" or \"top_matching\"");
    }
  }

  std::uint64_t deadline_us = 0;
  if (const JsonValue* deadline = root.Find("deadline_us")) {
    if (!AsIndex(deadline, static_cast<std::uint64_t>(1) << 53,
                 &deadline_us)) {
      return Bad("\"deadline_us\" must be a non-negative integer");
    }
  }

  // --- model ---
  const JsonValue* model_value = root.Find("model");
  if (model_value == nullptr || !model_value->IsObject()) {
    return Bad("\"model\" object required");
  }

  // Reference order: explicit permutation, or identity over "m" items.
  std::vector<rim::ItemId> order;
  if (const JsonValue* reference = model_value->Find("reference")) {
    if (!reference->IsArray() || reference->array.empty() ||
        reference->array.size() > kMaxWireItems) {
      return Bad("\"reference\" must be a non-empty array");
    }
    const std::size_t m = reference->array.size();
    order.resize(m);
    std::vector<bool> seen(m, false);
    for (std::size_t p = 0; p < m; ++p) {
      std::uint64_t item = 0;
      if (!AsIndex(&reference->array[p], m, &item) || seen[item]) {
        return Bad("\"reference\" must be a permutation of 0..m-1");
      }
      seen[item] = true;
      order[p] = static_cast<rim::ItemId>(item);
    }
  } else {
    std::uint64_t m = 0;
    if (!AsIndex(model_value->Find("m"), kMaxWireItems + 1ull, &m) || m == 0) {
      return Bad("\"model\" needs \"reference\" or a positive \"m\"");
    }
    order.resize(m);
    for (std::uint64_t item = 0; item < m; ++item) {
      order[item] = static_cast<rim::ItemId>(item);
    }
  }
  const unsigned m = static_cast<unsigned>(order.size());

  // Insertion function.
  const JsonValue* insertion_value = model_value->Find("insertion");
  if (insertion_value == nullptr || !insertion_value->IsObject()) {
    return Bad("\"insertion\" object required");
  }
  std::optional<rim::InsertionFunction> insertion;
  if (const JsonValue* phi_value = insertion_value->Find("phi")) {
    if (!phi_value->IsNumber() || !(phi_value->number > 0.0) ||
        !(phi_value->number <= 1.0)) {
      return Bad("\"phi\" must be in (0, 1]");
    }
    insertion = rim::InsertionFunction::Mallows(m, phi_value->number);
  } else if (const JsonValue* phis_value = insertion_value->Find("phis")) {
    if (!phis_value->IsArray() || phis_value->array.size() != m) {
      return Bad("\"phis\" must be an array of m numbers");
    }
    std::vector<double> phis(m);
    for (unsigned t = 0; t < m; ++t) {
      const JsonValue& phi = phis_value->array[t];
      if (!phi.IsNumber() || !(phi.number > 0.0) || !(phi.number <= 1.0)) {
        return Bad("\"phis\" entries must be in (0, 1]");
      }
      phis[t] = phi.number;
    }
    insertion = rim::InsertionFunction::GeneralizedMallows(phis);
  } else if (insertion_value->Find("uniform") != nullptr) {
    insertion = rim::InsertionFunction::Uniform(m);
  } else if (const JsonValue* rows_value = insertion_value->Find("rows")) {
    if (!rows_value->IsArray() || rows_value->array.size() != m) {
      return Bad("\"rows\" must be an array of m rows");
    }
    std::vector<std::vector<double>> rows(m);
    for (unsigned t = 0; t < m; ++t) {
      const JsonValue& row = rows_value->array[t];
      if (!row.IsArray() || row.array.size() != t + 1) {
        return Bad("insertion row t must have t+1 entries");
      }
      rows[t].resize(t + 1);
      double sum = 0.0;
      for (unsigned j = 0; j <= t; ++j) {
        if (!row.array[j].IsNumber() || !std::isfinite(row.array[j].number) ||
            row.array[j].number < 0.0) {
          return Bad("insertion probabilities must be finite and >= 0");
        }
        rows[t][j] = row.array[j].number;
        sum += rows[t][j];
      }
      if (std::abs(sum - 1.0) > rim::InsertionFunction::kRowSumTolerance) {
        return Bad("insertion row does not sum to 1");
      }
    }
    insertion = rim::InsertionFunction(std::move(rows));
  } else {
    return Bad("\"insertion\" needs \"phi\", \"phis\", \"uniform\", or \"rows\"");
  }

  // Labeling.
  const JsonValue* labels_value = model_value->Find("labels");
  if (labels_value == nullptr || !labels_value->IsArray() ||
      labels_value->array.size() != m) {
    return Bad("\"labels\" must be an array of m label sets");
  }
  infer::ItemLabeling labeling(m);
  for (unsigned item = 0; item < m; ++item) {
    const JsonValue& item_labels = labels_value->array[item];
    if (!item_labels.IsArray() ||
        item_labels.array.size() > kMaxWireLabelsPerItem) {
      return Bad("each \"labels\" entry must be a small array");
    }
    for (const JsonValue& label : item_labels.array) {
      std::uint64_t label_id = 0;
      if (!AsIndex(&label, static_cast<std::uint64_t>(1) << 32, &label_id)) {
        return Bad("labels must be 32-bit non-negative integers");
      }
      labeling.AddLabel(item, static_cast<infer::LabelId>(label_id));
    }
  }

  // --- pattern ---
  const JsonValue* pattern_value = root.Find("pattern");
  if (pattern_value == nullptr || !pattern_value->IsObject()) {
    return Bad("\"pattern\" object required");
  }
  const JsonValue* nodes_value = pattern_value->Find("nodes");
  if (nodes_value == nullptr || !nodes_value->IsArray() ||
      nodes_value->array.size() > kMaxWireNodes) {
    return Bad("\"nodes\" must be an array of at most 64 labels");
  }
  infer::LabelPattern pattern;
  std::vector<std::uint64_t> node_labels;
  for (const JsonValue& node : nodes_value->array) {
    std::uint64_t label = 0;
    if (!AsIndex(&node, static_cast<std::uint64_t>(1) << 32, &label)) {
      return Bad("pattern nodes must be 32-bit non-negative integers");
    }
    for (const std::uint64_t prev : node_labels) {
      if (prev == label) return Bad("duplicate pattern node label");
    }
    node_labels.push_back(label);
    pattern.AddNode(static_cast<infer::LabelId>(label));
  }
  if (const JsonValue* edges_value = pattern_value->Find("edges")) {
    if (!edges_value->IsArray()) return Bad("\"edges\" must be an array");
    for (const JsonValue& edge : edges_value->array) {
      std::uint64_t from = 0;
      std::uint64_t to = 0;
      if (!edge.IsArray() || edge.array.size() != 2 ||
          !AsIndex(&edge.array[0], node_labels.size(), &from) ||
          !AsIndex(&edge.array[1], node_labels.size(), &to)) {
        return Bad("each edge must be [from, to] with valid node indices");
      }
      if (from == to) return Bad("self-loop edge");
      pattern.AddEdge(static_cast<unsigned>(from), static_cast<unsigned>(to));
    }
  }

  return WireRequest(
      id, kind, deadline_us * 1000,
      infer::LabeledRimModel(rim::RimModel(rim::Ranking(std::move(order)),
                                           std::move(*insertion)),
                             std::move(labeling)),
      std::move(pattern));
}

StatusOr<WireSweepRequest> SweepRequestFromJson(const JsonValue& root) {
  StatusOr<WireRequest> base = WireRequestFromJson(root);
  if (!base.ok()) return base.status();
  if (base->kind != serve::Request::Kind::kPatternProb) {
    return Bad("\"kind\" must be \"pattern_prob\" for a sweep");
  }
  const unsigned m = base->model.model().size();

  const JsonValue* params_value = root.Find("params");
  if (params_value == nullptr || !params_value->IsArray() ||
      params_value->array.size() > kMaxWirePoints) {
    return Bad("\"params\" must be a bounded array");
  }
  std::vector<std::vector<double>> params;
  params.reserve(params_value->array.size());
  for (const JsonValue& entry : params_value->array) {
    std::vector<double> point;
    if (entry.IsNumber()) {
      point.push_back(entry.number);
    } else if (entry.IsArray() &&
               (entry.array.size() == 1 || entry.array.size() == m)) {
      for (const JsonValue& phi : entry.array) {
        if (!phi.IsNumber()) {
          return Bad("\"params\" vectors must hold numbers");
        }
        point.push_back(phi.number);
      }
    } else {
      return Bad("each \"params\" entry must be a number or m numbers");
    }
    for (double phi : point) {
      if (!std::isfinite(phi) || !(phi > 0.0 && phi <= 1.0)) {
        return Bad("\"params\" dispersions must be in (0, 1]");
      }
    }
    params.push_back(std::move(point));
  }

  return WireSweepRequest(base->id, base->deadline_ns, std::move(base->model),
                          std::move(base->pattern), std::move(params));
}

std::string JsonFromWireSweepResponse(const WireSweepResponse& response) {
  std::string out = "{";
  out += "\"id\":" + std::to_string(response.id);
  out += ",\"status\":" + JsonQuote(StatusCodeName(response.status.code()));
  out += ",\"message\":" + JsonQuote(response.status.message());
  out += ",\"probabilities\":[";
  for (std::size_t i = 0; i < response.probabilities.size(); ++i) {
    if (i != 0) out += ",";
    out += FormatDouble(response.probabilities[i]);
  }
  out += "]}";
  return out;
}

StatusOr<WireHardRequest> HardRequestFromJson(const JsonValue& root) {
  StatusOr<WireRequest> base = WireRequestFromJson(root);
  if (!base.ok()) return base.status();
  if (base->kind != serve::Request::Kind::kPatternProb) {
    return Bad("\"kind\" must be \"pattern_prob\" for a hard query");
  }
  double target = 0.0;
  if (const JsonValue* target_value = root.Find("target")) {
    if (!target_value->IsNumber() ||
        !(target_value->number >= 0.0 && target_value->number <= 1.0)) {
      return Bad("\"target\" must be a number in [0, 1]");
    }
    target = target_value->number;
  }
  return WireHardRequest(base->id, base->deadline_ns, target,
                         std::move(base->model), std::move(base->pattern));
}

std::string JsonFromWireHardResponse(const WireHardResponse& response) {
  std::string out = "{";
  out += "\"id\":" + std::to_string(response.id);
  out += ",\"status\":" + JsonQuote(StatusCodeName(response.status.code()));
  out += ",\"message\":" + JsonQuote(response.status.message());
  out += ",\"estimate\":" + FormatDouble(response.estimate);
  out += ",\"std_error\":" + FormatDouble(response.std_error);
  out += ",\"n_samples\":" + std::to_string(response.n_samples);
  out += ",\"target_met\":";
  out += response.target_met ? "true" : "false";
  out += ",\"deadline_limited\":";
  out += response.deadline_limited ? "true" : "false";
  out += "}";
  return out;
}

StatusOr<WireConsensusRequest> ConsensusRequestFromJson(const JsonValue& root) {
  if (!root.IsObject()) return Bad("document must be an object");
  std::uint64_t top_k = 0;
  if (!AsIndex(root.Find("top_k"), kMaxWireItems + 1ull, &top_k) ||
      top_k == 0) {
    return Bad("\"top_k\" must be a positive integer");
  }
  // The shared model rules come from the /query mapper; a missing "pattern"
  // means the empty pattern (a consensus query is about the model alone).
  JsonValue patched = root;
  if (patched.Find("pattern") == nullptr) {
    JsonValue nodes;
    nodes.kind = JsonValue::Kind::kArray;
    JsonValue pattern;
    pattern.kind = JsonValue::Kind::kObject;
    pattern.object.emplace_back("nodes", std::move(nodes));
    patched.object.emplace_back("pattern", std::move(pattern));
  }
  StatusOr<WireRequest> base = WireRequestFromJson(patched);
  if (!base.ok()) return base.status();
  if (base->kind != serve::Request::Kind::kPatternProb) {
    return Bad("\"kind\" must be \"pattern_prob\" for consensus");
  }
  if (base->pattern.NodeCount() != 0) {
    return Bad("consensus takes no pattern");
  }
  return WireConsensusRequest(base->id, base->deadline_ns,
                              static_cast<std::uint32_t>(top_k),
                              std::move(base->model));
}

std::string JsonFromWireConsensusResponse(
    const WireConsensusResponse& response) {
  std::string out = "{";
  out += "\"id\":" + std::to_string(response.id);
  out += ",\"status\":" + JsonQuote(StatusCodeName(response.status.code()));
  out += ",\"message\":" + JsonQuote(response.status.message());
  out += ",\"ranking\":[";
  for (std::size_t i = 0; i < response.ranking.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(response.ranking[i]);
  }
  out += "]";
  out += ",\"mean_footrule\":" + FormatDouble(response.mean_footrule);
  out += ",\"footrule_std_error\":" + FormatDouble(response.footrule_std_error);
  out += ",\"mean_kendall\":" + FormatDouble(response.mean_kendall);
  out += ",\"kendall_std_error\":" + FormatDouble(response.kendall_std_error);
  out += ",\"n_samples\":" + std::to_string(response.n_samples);
  out += "}";
  return out;
}

std::string JsonFromWireResponse(const WireResponse& response) {
  std::string out = "{";
  out += "\"id\":" + std::to_string(response.id);
  out += ",\"status\":" + JsonQuote(StatusCodeName(response.status.code()));
  out += ",\"message\":" + JsonQuote(response.status.message());
  out += ",\"probability\":" + FormatDouble(response.probability);
  out += ",\"approximate\":";
  out += response.approximate ? "true" : "false";
  out += ",\"std_error\":" + FormatDouble(response.std_error);
  out += ",\"retry_after_ns\":" + std::to_string(response.retry_after_ns);
  out += ",\"top_matching\":";
  if (response.top_matching.has_value()) {
    out += "[";
    for (std::size_t i = 0; i < response.top_matching->size(); ++i) {
      if (i != 0) out += ",";
      out += std::to_string((*response.top_matching)[i]);
    }
    out += "]";
  } else {
    out += "null";
  }
  out += "}";
  return out;
}

}  // namespace ppref::net
