#include "ppref/net/frame.h"

#include <cstring>

namespace ppref::net {
namespace {

void PutU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

std::uint32_t GetU32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

bool KnownType(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kRequest) &&
         type <= static_cast<std::uint8_t>(FrameType::kConsensusResponse);
}

/// Validates one complete 12-byte header prefix.
Status ValidateHeader(const char* header, std::size_t max_body_bytes) {
  if (GetU32(header) != kWireMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (static_cast<std::uint8_t>(header[4]) != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version");
  }
  if (!KnownType(static_cast<std::uint8_t>(header[5]))) {
    return Status::InvalidArgument("unknown frame type");
  }
  if (header[6] != 0 || header[7] != 0) {
    return Status::InvalidArgument("nonzero reserved frame flags");
  }
  if (GetU32(header + 8) > max_body_bytes) {
    return Status::InvalidArgument("frame body exceeds size limit");
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view body) {
  std::string out;
  out.reserve(kFrameHeaderBytes + body.size());
  PutU32(out, kWireMagic);
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  PutU16(out, 0);  // flags
  PutU32(out, static_cast<std::uint32_t>(body.size()));
  out.append(body);
  return out;
}

Status FrameAssembler::Feed(const void* data, std::size_t size) {
  if (!status_.ok()) return status_;
  if (size != 0) buffer_.append(static_cast<const char*>(data), size);
  // Validate the header eagerly so a poisoned stream fails on the bytes that
  // poison it, not on the (possibly never-arriving) body completion. Only
  // the *next* unconsumed header can be validated — later bytes are body
  // payload until framing says otherwise.
  if (buffer_.size() - consumed_ >= kFrameHeaderBytes) {
    status_ = ValidateHeader(buffer_.data() + consumed_, max_body_bytes_);
  }
  return status_;
}

bool FrameAssembler::Next(Frame* out) {
  if (!status_.ok()) return false;
  const std::size_t pending = buffer_.size() - consumed_;
  if (pending < kFrameHeaderBytes) return false;
  const char* header = buffer_.data() + consumed_;
  const std::size_t body_len = GetU32(header + 8);
  if (pending < kFrameHeaderBytes + body_len) return false;
  out->type = static_cast<FrameType>(static_cast<std::uint8_t>(header[5]));
  out->body.assign(header + kFrameHeaderBytes, body_len);
  consumed_ += kFrameHeaderBytes + body_len;
  // Compact once the parsed prefix dominates, so a long-lived connection
  // does not accrete its whole history.
  if (consumed_ > 4096 && consumed_ * 2 >= buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  // The header of the following frame (if already buffered) gets its eager
  // validation now.
  Feed(nullptr, 0);
  return true;
}

}  // namespace ppref::net
