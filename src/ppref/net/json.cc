#include "ppref/net/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ppref::net {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) found = &v;
  }
  return found;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing bytes after JSON document");
    }
    return value;
  }

 private:
  Status Error(const char* what) const {
    return Status::InvalidArgument(std::string("JSON parse error at byte ") +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.substr(pos_, len) == word) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, unsigned depth) {
    if (depth > kMaxJsonDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (ConsumeWord("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Status::Ok();
    }
    if (ConsumeWord("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Status::Ok();
    }
    if (ConsumeWord("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::Ok();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
    return Error("unexpected character");
  }

  Status ParseNumber(JsonValue* out) {
    // Validate the RFC 8259 grammar prefix, then let strtod produce the
    // double from exactly those bytes.
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    if (!(pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(
                                     text_[pos_])))) {
      return Error("malformed number");
    }
    // RFC 8259 int: "0" or a nonzero digit followed by more digits — "01"
    // is not a number.
    if (text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("leading zero in number");
      }
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (!(pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(
                                       text_[pos_])))) {
        return Error("malformed number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!(pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(
                                       text_[pos_])))) {
        return Error("malformed number");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string literal(text_.substr(start, pos_ - start));
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(literal.c_str(), nullptr);
    return Status::Ok();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_++]);
      if (c == '"') return Status::Ok();
      if (c < 0x20) return Error("control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape digit");
          }
          // BMP-only UTF-8 encoding (no surrogate pairs; see file comment).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Error("surrogate \\u escapes unsupported");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  Status ParseArray(JsonValue* out, unsigned depth) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue element;
      Status status = ParseValue(&element, depth + 1);
      if (!status.ok()) return status;
      out->array.push_back(std::move(element));
      SkipSpace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or ']'");
    }
  }

  Status ParseObject(JsonValue* out, unsigned depth) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipSpace();
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonQuote(std::string_view text) {
  std::string out = "\"";
  for (const char c : text) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (c == '"') {
      out += "\\\"";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (c == '\r') {
      out += "\\r";
    } else if (u < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", u);
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace ppref::net
