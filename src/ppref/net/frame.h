/// \file frame.h
/// \brief `ppref::net` — the length-prefixed binary framing layer.
///
/// Every binary-protocol message is one frame:
///
/// ```
///  offset  size  field
///       0     4  magic      0x46525050 ("PPRF" as little-endian bytes)
///       4     1  version    kWireVersion (1)
///       5     1  type       FrameType
///       6     2  flags      reserved, must be 0
///       8     4  body_len   little-endian byte length of the body
///      12     …  body       type-specific payload (codec.h)
/// ```
///
/// The 12-byte header is fixed for all versions — a future version may
/// change body layouts but never the header, so a peer can always reject a
/// version it does not speak with a clean error instead of desynchronizing.
///
/// `FrameAssembler` is the *only* reader of wire bytes: an incremental,
/// allocation-bounded state machine that accepts arbitrary partial reads
/// (`Feed`) and yields complete frames (`Next`). Its failure contract is the
/// one the fuzz suite pins down: hostile bytes — garbage magic, unknown
/// versions, nonzero flags, body lengths beyond the configured bound,
/// truncation at any offset — produce a sticky `kInvalidArgument` status,
/// never a crash, never a read past the fed bytes, and never an allocation
/// larger than `max_body_bytes` + one header. After an error the stream is
/// unparseable by definition (framing is what delimits messages), so the
/// owner must close the connection.

#ifndef PPREF_NET_FRAME_H_
#define PPREF_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "ppref/common/status.h"

namespace ppref::net {

/// Wire magic: the bytes 'P' 'P' 'R' 'F' on the wire.
inline constexpr std::uint32_t kWireMagic = 0x46525050u;

/// Protocol version this build speaks.
inline constexpr std::uint8_t kWireVersion = 1;

/// Fixed header size, all versions.
inline constexpr std::size_t kFrameHeaderBytes = 12;

/// Default cap on one frame's body. A request carrying a 4096-item model is
/// ~67 MB of insertion rows, far beyond anything the DP could serve; 16 MiB
/// bounds a hostile peer's memory bill per connection.
inline constexpr std::size_t kDefaultMaxBodyBytes = 16u << 20;

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  kPing = 3,
  kPong = 4,
  kSweepRequest = 5,
  kSweepResponse = 6,
  kHardRequest = 7,
  kHardResponse = 8,
  kConsensusRequest = 9,
  kConsensusResponse = 10,
};

/// One complete frame, body owned.
struct Frame {
  FrameType type = FrameType::kRequest;
  std::string body;
};

/// Serializes a frame: header + body.
std::string EncodeFrame(FrameType type, std::string_view body);

/// Incremental frame parser over a byte stream. Not thread-safe; one per
/// connection.
class FrameAssembler {
 public:
  explicit FrameAssembler(std::size_t max_body_bytes = kDefaultMaxBodyBytes)
      : max_body_bytes_(max_body_bytes) {}

  /// Appends stream bytes. Returns (and latches) kInvalidArgument as soon as
  /// the accumulated prefix cannot be a valid frame sequence; OK otherwise.
  /// After an error every further Feed returns the same error and Next
  /// yields nothing.
  Status Feed(const void* data, std::size_t size);

  /// Pops the next complete frame into `out`; false when no complete frame
  /// is buffered (or the stream is in error).
  bool Next(Frame* out);

  /// The latched stream status (OK until the first framing violation).
  const Status& status() const { return status_; }

  /// Bytes buffered and not yet consumed by Next (partial frame).
  std::size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::size_t max_body_bytes_;
  std::string buffer_;
  std::size_t consumed_ = 0;
  Status status_;
};

}  // namespace ppref::net

#endif  // PPREF_NET_FRAME_H_
