/// \file wire.h
/// \brief `ppref::net` — the owned request/response values that cross the
/// wire.
///
/// `serve::Request` *borrows* its model and pattern (the in-process embedder
/// already owns them); a network peer has nothing to borrow from, so the
/// wire layer's unit of exchange is a `WireRequest` that **owns** a full
/// `LabeledRimModel` and `LabelPattern` reconstructed from bytes. The codec
/// (codec.h) round-trips every double by bit pattern, which is what makes
/// the end-to-end bit-identity contract possible: the model a daemon rebuilds
/// from a client's bytes is byte-identical to the client's, so the exact DP
/// answer is too.
///
/// `id` is an opaque client-chosen correlation token echoed in the response.
/// The daemon may answer pipelined requests of one connection out of order
/// (they fan out over the worker pool); the id is how a pipelining client
/// re-associates answers. `net::Client::Call` is strictly request/response
/// and checks the echo.

#ifndef PPREF_NET_WIRE_H_
#define PPREF_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "ppref/common/status.h"
#include "ppref/infer/labeled_rim.h"
#include "ppref/infer/matching.h"
#include "ppref/infer/pattern.h"
#include "ppref/rim/ranking.h"
#include "ppref/serve/server.h"

namespace ppref::net {

/// One query, self-contained: everything `serve::Server::Evaluate` needs,
/// owned by this value.
struct WireRequest {
  WireRequest(std::uint64_t id, serve::Request::Kind kind,
              std::uint64_t deadline_ns, infer::LabeledRimModel model,
              infer::LabelPattern pattern)
      : id(id),
        kind(kind),
        deadline_ns(deadline_ns),
        model(std::move(model)),
        pattern(std::move(pattern)) {}

  std::uint64_t id = 0;
  serve::Request::Kind kind = serve::Request::Kind::kPatternProb;
  /// Per-request deadline in nanoseconds, measured from daemon dispatch;
  /// 0 = the server's default.
  std::uint64_t deadline_ns = 0;
  /// Client-chosen idempotency key; 0 = unkeyed. All attempts (retries,
  /// hedges) of one logical request must carry the same key *and* the same
  /// `id`: the daemon single-flights and replays by (key, id), so retries
  /// coalesce onto the first execution and replayed bytes echo the right
  /// correlation id. See net/dedup.h for the lifecycle.
  std::uint64_t idempotency_key = 0;
  infer::LabeledRimModel model;
  infer::LabelPattern pattern;

  /// A serve request borrowing this value's model and pattern; valid only
  /// while `*this` is alive.
  serve::Request ToRequest() const {
    serve::Request request;
    request.kind = kind;
    request.model = &model;
    request.pattern = &pattern;
    request.control.deadline_ns = deadline_ns;
    return request;
  }
};

/// One parameter sweep: the query shape of a `WireRequest` (model, pattern)
/// plus a grid of dispersion vectors to evaluate it at. Each entry of
/// `params` is {φ} (Mallows over the model's m items) or {φ_1..φ_m}
/// (generalized Mallows); the model's own insertion function seeds the
/// circuit compile but every answer is for the re-bound point.
struct WireSweepRequest {
  WireSweepRequest(std::uint64_t id, std::uint64_t deadline_ns,
                   infer::LabeledRimModel model, infer::LabelPattern pattern,
                   std::vector<std::vector<double>> params)
      : id(id),
        deadline_ns(deadline_ns),
        model(std::move(model)),
        pattern(std::move(pattern)),
        params(std::move(params)) {}

  std::uint64_t id = 0;
  /// Deadline for the whole sweep, from daemon dispatch; 0 = server default.
  std::uint64_t deadline_ns = 0;
  infer::LabeledRimModel model;
  infer::LabelPattern pattern;
  std::vector<std::vector<double>> params;
};

/// The sweep answer: one probability per parameter vector, in request
/// order, or a single non-OK status for the whole sweep.
struct WireSweepResponse {
  std::uint64_t id = 0;
  Status status;
  std::vector<double> probabilities;
};

/// One hard-tier query: the shape of a pattern-probability `WireRequest`
/// plus a requested confidence-interval half-width. The daemon answers it
/// with the adaptive Monte-Carlo estimator instead of the exact DP — the
/// tier for models too large to scan exactly.
struct WireHardRequest {
  WireHardRequest(std::uint64_t id, std::uint64_t deadline_ns,
                  double target_half_width, infer::LabeledRimModel model,
                  infer::LabelPattern pattern)
      : id(id),
        deadline_ns(deadline_ns),
        target_half_width(target_half_width),
        model(std::move(model)),
        pattern(std::move(pattern)) {}

  std::uint64_t id = 0;
  /// Deadline from daemon dispatch; 0 = server default. Besides stopping the
  /// run, the deadline *value* coarsens the effective precision target, so a
  /// tight budget yields an honest wide-error answer instead of an error.
  std::uint64_t deadline_ns = 0;
  /// Requested 95%-CI half-width in [0, 1]; 0 = the server's default target.
  double target_half_width = 0.0;
  infer::LabeledRimModel model;
  infer::LabelPattern pattern;
};

/// The hard-tier answer: a point estimate with its standard error and the
/// sampling disposition (how many worlds, and why sampling stopped).
struct WireHardResponse {
  std::uint64_t id = 0;
  Status status;
  double estimate = 0.0;
  double std_error = 0.0;
  std::uint64_t n_samples = 0;
  /// The precision target was reached before the sample cap.
  bool target_met = false;
  /// The deadline budget expired mid-run; the answer is honest but coarser
  /// than asked, and the server never caches it.
  bool deadline_limited = false;
};

/// One consensus top-k query: a model and how many items of the consensus
/// ranking to return. No pattern — the query is about the model itself.
struct WireConsensusRequest {
  WireConsensusRequest(std::uint64_t id, std::uint64_t deadline_ns,
                       std::uint32_t top_k, infer::LabeledRimModel model)
      : id(id),
        deadline_ns(deadline_ns),
        top_k(top_k),
        model(std::move(model)) {}

  std::uint64_t id = 0;
  std::uint64_t deadline_ns = 0;
  /// Prefix length of the consensus ranking to return (>= 1; clamped to m).
  std::uint32_t top_k = 0;
  infer::LabeledRimModel model;
};

/// The consensus answer: the top-k prefix of the footrule-optimal consensus
/// ranking plus the estimated mean distances from a random world to it.
struct WireConsensusResponse {
  std::uint64_t id = 0;
  Status status;
  std::vector<rim::ItemId> ranking;
  double mean_footrule = 0.0;
  double footrule_std_error = 0.0;
  double mean_kendall = 0.0;
  double kendall_std_error = 0.0;
  std::uint64_t n_samples = 0;
};

/// One answer: `serve::Response` plus the echoed request id.
struct WireResponse {
  std::uint64_t id = 0;
  Status status;
  double probability = 0.0;
  std::optional<infer::Matching> top_matching;
  bool approximate = false;
  double std_error = 0.0;
  std::uint64_t retry_after_ns = 0;

  static WireResponse From(std::uint64_t id, const serve::Response& response) {
    WireResponse wire;
    wire.id = id;
    wire.status = response.status;
    wire.probability = response.probability;
    wire.top_matching = response.top_matching;
    wire.approximate = response.approximate;
    wire.std_error = response.std_error;
    wire.retry_after_ns = response.retry_after_ns;
    return wire;
  }
};

}  // namespace ppref::net

#endif  // PPREF_NET_WIRE_H_
