#include "ppref/net/codec.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "ppref/infer/labeling.h"
#include "ppref/rim/insertion.h"
#include "ppref/rim/ranking.h"
#include "ppref/rim/rim_model.h"

namespace ppref::net {
namespace {

// ---------------------------------------------------------------------------
// Little-endian byte writer / bounds-checked reader.

class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void U64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }
  void Bytes(std::string_view bytes) { out_.append(bytes); }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Every Get* returns false once the input is exhausted; the caller pattern
/// is `if (!reader.U32(&v)) return Malformed(...)`, so a truncated body can
/// never be read past its end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool U8(std::uint8_t* v) {
    if (offset_ + 1 > data_.size()) return false;
    *v = static_cast<std::uint8_t>(data_[offset_++]);
    return true;
  }
  bool U32(std::uint32_t* v) {
    if (offset_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<std::uint32_t>(
                static_cast<unsigned char>(data_[offset_ + i]))
            << (8 * i);
    }
    offset_ += 4;
    return true;
  }
  bool U64(std::uint64_t* v) {
    if (offset_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(data_[offset_ + i]))
            << (8 * i);
    }
    offset_ += 8;
    return true;
  }
  bool F64(double* v) {
    std::uint64_t bits = 0;
    if (!U64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }
  bool Bytes(std::size_t n, std::string* v) {
    if (offset_ + n > data_.size() || n > data_.size()) return false;
    v->assign(data_.data() + offset_, n);
    offset_ += n;
    return true;
  }
  bool AtEnd() const { return offset_ == data_.size(); }

 private:
  std::string_view data_;
  std::size_t offset_ = 0;
};

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed request body: ") +
                                 what);
}

}  // namespace

// ---------------------------------------------------------------------------
// Request

std::string EncodeRequest(const WireRequest& request) {
  Writer w;
  w.U64(request.id);
  w.U8(static_cast<std::uint8_t>(request.kind));
  w.U8(request.idempotency_key != 0 ? kRequestFlagIdempotencyKey : 0);
  w.U8(0);
  w.U8(0);
  w.U64(request.deadline_ns);
  if (request.idempotency_key != 0) w.U64(request.idempotency_key);

  const rim::RimModel& model = request.model.model();
  const unsigned m = model.size();
  w.U32(m);
  for (unsigned p = 0; p < m; ++p) w.U32(model.reference().At(p));
  for (unsigned t = 0; t < m; ++t) {
    for (double prob : model.insertion().Row(t)) w.F64(prob);
  }
  const infer::ItemLabeling& labeling = request.model.labeling();
  for (unsigned item = 0; item < m; ++item) {
    const std::vector<infer::LabelId>& labels = labeling.LabelsOf(item);
    w.U32(static_cast<std::uint32_t>(labels.size()));
    for (infer::LabelId label : labels) w.U32(label);
  }

  const infer::LabelPattern& pattern = request.pattern;
  const unsigned nodes = pattern.NodeCount();
  w.U32(nodes);
  for (unsigned node = 0; node < nodes; ++node) w.U32(pattern.NodeLabel(node));
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (unsigned from = 0; from < nodes; ++from) {
    for (unsigned to : pattern.Children(from)) edges.emplace_back(from, to);
  }
  w.U32(static_cast<std::uint32_t>(edges.size()));
  for (const auto& [from, to] : edges) {
    w.U32(from);
    w.U32(to);
  }
  return w.Take();
}

StatusOr<WireRequest> DecodeRequest(std::string_view body) {
  Reader r(body);
  std::uint64_t id = 0;
  std::uint8_t kind = 0;
  std::uint8_t flags = 0;
  std::uint64_t deadline_ns = 0;
  std::uint8_t reserved[2];
  if (!r.U64(&id) || !r.U8(&kind) || !r.U8(&flags) || !r.U8(&reserved[0]) ||
      !r.U8(&reserved[1]) || !r.U64(&deadline_ns)) {
    return Malformed("truncated preamble");
  }
  if (kind > static_cast<std::uint8_t>(serve::Request::Kind::kTopMatching)) {
    return Malformed("unknown request kind");
  }
  if ((flags & ~kRequestFlagIdempotencyKey) != 0) {
    return Malformed("unknown request flags");
  }
  if (reserved[0] != 0 || reserved[1] != 0) {
    return Malformed("nonzero reserved bytes");
  }
  std::uint64_t idempotency_key = 0;
  if ((flags & kRequestFlagIdempotencyKey) != 0) {
    if (!r.U64(&idempotency_key)) return Malformed("truncated preamble");
    if (idempotency_key == 0) return Malformed("zero idempotency key");
  }

  // Model: reference ranking. Must be a permutation of 0..m-1 — the Ranking
  // constructor PPREF_CHECKs exactly that, so verify before constructing.
  std::uint32_t m = 0;
  if (!r.U32(&m)) return Malformed("truncated item count");
  if (m == 0 || m > kMaxWireItems) return Malformed("item count out of range");
  std::vector<rim::ItemId> order(m);
  std::vector<bool> seen(m, false);
  for (std::uint32_t p = 0; p < m; ++p) {
    if (!r.U32(&order[p])) return Malformed("truncated reference ranking");
    if (order[p] >= m || seen[order[p]]) {
      return Malformed("reference ranking is not a permutation");
    }
    seen[order[p]] = true;
  }

  // Insertion rows: row t has t+1 finite non-negative entries summing to 1
  // within the InsertionFunction tolerance (again, pre-validating the
  // constructor's checks).
  std::vector<std::vector<double>> rows(m);
  for (std::uint32_t t = 0; t < m; ++t) {
    rows[t].resize(t + 1);
    double sum = 0.0;
    for (std::uint32_t j = 0; j <= t; ++j) {
      if (!r.F64(&rows[t][j])) return Malformed("truncated insertion rows");
      if (!std::isfinite(rows[t][j]) || rows[t][j] < 0.0) {
        return Malformed("insertion probability not in [0, 1]");
      }
      sum += rows[t][j];
    }
    if (std::abs(sum - 1.0) > rim::InsertionFunction::kRowSumTolerance) {
      return Malformed("insertion row does not sum to 1");
    }
  }

  // Labeling: per-item label lists, bounded.
  infer::ItemLabeling labeling(m);
  for (std::uint32_t item = 0; item < m; ++item) {
    std::uint32_t count = 0;
    if (!r.U32(&count)) return Malformed("truncated labeling");
    if (count > kMaxWireLabelsPerItem) {
      return Malformed("too many labels on one item");
    }
    for (std::uint32_t i = 0; i < count; ++i) {
      std::uint32_t label = 0;
      if (!r.U32(&label)) return Malformed("truncated labeling");
      labeling.AddLabel(item, label);
    }
  }

  // Pattern: distinct node labels (AddNode aborts on a duplicate), edges
  // over valid node indices without self-loops (AddEdge aborts on both).
  std::uint32_t node_count = 0;
  if (!r.U32(&node_count)) return Malformed("truncated pattern");
  if (node_count > kMaxWireNodes) return Malformed("too many pattern nodes");
  infer::LabelPattern pattern;
  std::vector<std::uint32_t> node_labels(node_count);
  for (std::uint32_t node = 0; node < node_count; ++node) {
    if (!r.U32(&node_labels[node])) return Malformed("truncated pattern");
    for (std::uint32_t prev = 0; prev < node; ++prev) {
      if (node_labels[prev] == node_labels[node]) {
        return Malformed("duplicate pattern node label");
      }
    }
    pattern.AddNode(node_labels[node]);
  }
  std::uint32_t edge_count = 0;
  if (!r.U32(&edge_count)) return Malformed("truncated pattern edges");
  if (edge_count > node_count * node_count) {
    return Malformed("edge count out of range");
  }
  for (std::uint32_t e = 0; e < edge_count; ++e) {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    if (!r.U32(&from) || !r.U32(&to)) return Malformed("truncated pattern edges");
    if (from >= node_count || to >= node_count) {
      return Malformed("edge endpoint out of range");
    }
    if (from == to) return Malformed("self-loop edge");
    pattern.AddEdge(from, to);
  }

  if (!r.AtEnd()) return Malformed("trailing bytes");

  WireRequest request(
      id, static_cast<serve::Request::Kind>(kind), deadline_ns,
      infer::LabeledRimModel(
          rim::RimModel(rim::Ranking(std::move(order)),
                        rim::InsertionFunction(std::move(rows))),
          std::move(labeling)),
      std::move(pattern));
  request.idempotency_key = idempotency_key;
  return request;
}

std::uint64_t PeekIdempotencyKey(std::string_view body) {
  // Preamble: id(8) kind(1) flags(1) reserved(2) deadline(8) [key(8)].
  if (body.size() < 28) return 0;
  const auto flags = static_cast<std::uint8_t>(body[9]);
  if ((flags & kRequestFlagIdempotencyKey) == 0) return 0;
  std::uint64_t key = 0;
  for (int i = 0; i < 8; ++i) {
    key |= static_cast<std::uint64_t>(static_cast<unsigned char>(body[20 + i]))
           << (8 * i);
  }
  return key;
}

// ---------------------------------------------------------------------------
// Response

std::string EncodeResponse(const WireResponse& response) {
  Writer w;
  w.U64(response.id);
  w.U8(static_cast<std::uint8_t>(response.status.code()));
  w.U8(response.approximate ? 1 : 0);
  w.U8(response.top_matching.has_value() ? 1 : 0);
  w.U8(0);
  w.U32(static_cast<std::uint32_t>(response.status.message().size()));
  w.Bytes(response.status.message());
  w.F64(response.probability);
  w.F64(response.std_error);
  w.U64(response.retry_after_ns);
  if (response.top_matching.has_value()) {
    w.U32(static_cast<std::uint32_t>(response.top_matching->size()));
    for (rim::ItemId item : *response.top_matching) w.U32(item);
  }
  return w.Take();
}

StatusOr<WireResponse> DecodeResponse(std::string_view body) {
  Reader r(body);
  WireResponse response;
  std::uint8_t code = 0;
  std::uint8_t approximate = 0;
  std::uint8_t has_matching = 0;
  std::uint8_t reserved = 0;
  std::uint32_t message_len = 0;
  std::string message;
  double probability = 0.0;
  double std_error = 0.0;
  if (!r.U64(&response.id) || !r.U8(&code) || !r.U8(&approximate) ||
      !r.U8(&has_matching) || !r.U8(&reserved) || !r.U32(&message_len) ||
      !r.Bytes(message_len, &message) || !r.F64(&probability) ||
      !r.F64(&std_error) || !r.U64(&response.retry_after_ns)) {
    return Status::InvalidArgument("malformed response body");
  }
  if (code > static_cast<std::uint8_t>(StatusCode::kInternal) ||
      approximate > 1 || has_matching > 1 || reserved != 0) {
    return Status::InvalidArgument("malformed response body");
  }
  response.status = Status(static_cast<StatusCode>(code), std::move(message));
  response.probability = probability;
  response.std_error = std_error;
  response.approximate = approximate != 0;
  if (has_matching != 0) {
    std::uint32_t match_len = 0;
    if (!r.U32(&match_len) || match_len > kMaxWireNodes) {
      return Status::InvalidArgument("malformed response body");
    }
    infer::Matching matching(match_len);
    for (std::uint32_t i = 0; i < match_len; ++i) {
      if (!r.U32(&matching[i])) {
        return Status::InvalidArgument("malformed response body");
      }
    }
    response.top_matching = std::move(matching);
  }
  if (!r.AtEnd()) return Status::InvalidArgument("malformed response body");
  return response;
}

// ---------------------------------------------------------------------------
// Sweep request / response

std::string EncodeSweepRequest(const WireSweepRequest& request) {
  // The base slice is a full standard request body so DecodeSweepRequest can
  // delegate model/pattern validation to DecodeRequest verbatim.
  std::string base =
      EncodeRequest(WireRequest(request.id, serve::Request::Kind::kPatternProb,
                                request.deadline_ns, request.model,
                                request.pattern));
  Writer w;
  w.U32(static_cast<std::uint32_t>(base.size()));
  w.Bytes(base);
  w.U32(static_cast<std::uint32_t>(request.params.size()));
  for (const std::vector<double>& point : request.params) {
    w.U32(static_cast<std::uint32_t>(point.size()));
    for (double phi : point) w.F64(phi);
  }
  return w.Take();
}

StatusOr<WireSweepRequest> DecodeSweepRequest(std::string_view body) {
  Reader r(body);
  std::uint32_t base_len = 0;
  std::string base;
  if (!r.U32(&base_len) || !r.Bytes(base_len, &base)) {
    return Malformed("truncated sweep base request");
  }
  StatusOr<WireRequest> decoded = DecodeRequest(base);
  if (!decoded.ok()) return decoded.status();
  if (decoded->kind != serve::Request::Kind::kPatternProb) {
    return Malformed("sweep base request kind must be pattern_prob");
  }
  const unsigned m = decoded->model.model().size();

  std::uint32_t point_count = 0;
  if (!r.U32(&point_count)) return Malformed("truncated sweep point count");
  if (point_count > kMaxWirePoints) {
    return Malformed("too many sweep points");
  }
  std::vector<std::vector<double>> params;
  params.reserve(point_count);
  for (std::uint32_t p = 0; p < point_count; ++p) {
    std::uint32_t len = 0;
    if (!r.U32(&len)) return Malformed("truncated sweep point");
    if (len != 1 && len != m) {
      return Malformed("sweep point arity must be 1 or m");
    }
    std::vector<double> point(len);
    for (std::uint32_t i = 0; i < len; ++i) {
      if (!r.F64(&point[i])) return Malformed("truncated sweep point");
      // `!(x > 0 && x <= 1)` rather than the complement so NaN fails too.
      if (!std::isfinite(point[i]) ||
          !(point[i] > 0.0 && point[i] <= 1.0)) {
        return Malformed("sweep dispersion not in (0, 1]");
      }
    }
    params.push_back(std::move(point));
  }
  if (!r.AtEnd()) return Malformed("trailing bytes");

  return WireSweepRequest(decoded->id, decoded->deadline_ns,
                          std::move(decoded->model),
                          std::move(decoded->pattern), std::move(params));
}

std::string EncodeSweepResponse(const WireSweepResponse& response) {
  Writer w;
  w.U64(response.id);
  w.U8(static_cast<std::uint8_t>(response.status.code()));
  w.U8(0);
  w.U8(0);
  w.U8(0);
  w.U32(static_cast<std::uint32_t>(response.status.message().size()));
  w.Bytes(response.status.message());
  w.U32(static_cast<std::uint32_t>(response.probabilities.size()));
  for (double p : response.probabilities) w.F64(p);
  return w.Take();
}

StatusOr<WireSweepResponse> DecodeSweepResponse(std::string_view body) {
  Reader r(body);
  WireSweepResponse response;
  std::uint8_t code = 0;
  std::uint8_t reserved[3];
  std::uint32_t message_len = 0;
  std::string message;
  std::uint32_t count = 0;
  if (!r.U64(&response.id) || !r.U8(&code) || !r.U8(&reserved[0]) ||
      !r.U8(&reserved[1]) || !r.U8(&reserved[2]) || !r.U32(&message_len) ||
      !r.Bytes(message_len, &message) || !r.U32(&count)) {
    return Status::InvalidArgument("malformed sweep response body");
  }
  if (code > static_cast<std::uint8_t>(StatusCode::kInternal) ||
      reserved[0] != 0 || reserved[1] != 0 || reserved[2] != 0 ||
      count > kMaxWirePoints) {
    return Status::InvalidArgument("malformed sweep response body");
  }
  response.status = Status(static_cast<StatusCode>(code), std::move(message));
  response.probabilities.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!r.F64(&response.probabilities[i])) {
      return Status::InvalidArgument("malformed sweep response body");
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("malformed sweep response body");
  }
  return response;
}

// ---------------------------------------------------------------------------
// Hard request / response

std::string EncodeHardRequest(const WireHardRequest& request) {
  std::string base =
      EncodeRequest(WireRequest(request.id, serve::Request::Kind::kPatternProb,
                                request.deadline_ns, request.model,
                                request.pattern));
  Writer w;
  w.U32(static_cast<std::uint32_t>(base.size()));
  w.Bytes(base);
  w.F64(request.target_half_width);
  return w.Take();
}

StatusOr<WireHardRequest> DecodeHardRequest(std::string_view body) {
  Reader r(body);
  std::uint32_t base_len = 0;
  std::string base;
  if (!r.U32(&base_len) || !r.Bytes(base_len, &base)) {
    return Malformed("truncated hard base request");
  }
  StatusOr<WireRequest> decoded = DecodeRequest(base);
  if (!decoded.ok()) return decoded.status();
  if (decoded->kind != serve::Request::Kind::kPatternProb) {
    return Malformed("hard base request kind must be pattern_prob");
  }
  double target = 0.0;
  if (!r.F64(&target)) return Malformed("truncated hard target");
  // `!(x >= 0 && x <= 1)` rather than the complement so NaN fails too.
  if (!(target >= 0.0 && target <= 1.0)) {
    return Malformed("hard target not in [0, 1]");
  }
  if (!r.AtEnd()) return Malformed("trailing bytes");

  return WireHardRequest(decoded->id, decoded->deadline_ns, target,
                         std::move(decoded->model),
                         std::move(decoded->pattern));
}

std::string EncodeHardResponse(const WireHardResponse& response) {
  Writer w;
  w.U64(response.id);
  w.U8(static_cast<std::uint8_t>(response.status.code()));
  w.U8(response.target_met ? 1 : 0);
  w.U8(response.deadline_limited ? 1 : 0);
  w.U8(0);
  w.U32(static_cast<std::uint32_t>(response.status.message().size()));
  w.Bytes(response.status.message());
  w.F64(response.estimate);
  w.F64(response.std_error);
  w.U64(response.n_samples);
  return w.Take();
}

StatusOr<WireHardResponse> DecodeHardResponse(std::string_view body) {
  Reader r(body);
  WireHardResponse response;
  std::uint8_t code = 0;
  std::uint8_t target_met = 0;
  std::uint8_t deadline_limited = 0;
  std::uint8_t reserved = 0;
  std::uint32_t message_len = 0;
  std::string message;
  if (!r.U64(&response.id) || !r.U8(&code) || !r.U8(&target_met) ||
      !r.U8(&deadline_limited) || !r.U8(&reserved) || !r.U32(&message_len) ||
      !r.Bytes(message_len, &message) || !r.F64(&response.estimate) ||
      !r.F64(&response.std_error) || !r.U64(&response.n_samples)) {
    return Status::InvalidArgument("malformed hard response body");
  }
  if (code > static_cast<std::uint8_t>(StatusCode::kInternal) ||
      target_met > 1 || deadline_limited > 1 || reserved != 0) {
    return Status::InvalidArgument("malformed hard response body");
  }
  if (!r.AtEnd()) return Status::InvalidArgument("malformed hard response body");
  response.status = Status(static_cast<StatusCode>(code), std::move(message));
  response.target_met = target_met != 0;
  response.deadline_limited = deadline_limited != 0;
  return response;
}

// ---------------------------------------------------------------------------
// Consensus request / response

std::string EncodeConsensusRequest(const WireConsensusRequest& request) {
  std::string base =
      EncodeRequest(WireRequest(request.id, serve::Request::Kind::kPatternProb,
                                request.deadline_ns, request.model,
                                infer::LabelPattern()));
  Writer w;
  w.U32(static_cast<std::uint32_t>(base.size()));
  w.Bytes(base);
  w.U32(request.top_k);
  return w.Take();
}

StatusOr<WireConsensusRequest> DecodeConsensusRequest(std::string_view body) {
  Reader r(body);
  std::uint32_t base_len = 0;
  std::string base;
  if (!r.U32(&base_len) || !r.Bytes(base_len, &base)) {
    return Malformed("truncated consensus base request");
  }
  StatusOr<WireRequest> decoded = DecodeRequest(base);
  if (!decoded.ok()) return decoded.status();
  if (decoded->kind != serve::Request::Kind::kPatternProb) {
    return Malformed("consensus base request kind must be pattern_prob");
  }
  if (decoded->pattern.NodeCount() != 0) {
    return Malformed("consensus base pattern must be empty");
  }
  std::uint32_t top_k = 0;
  if (!r.U32(&top_k)) return Malformed("truncated consensus top_k");
  if (top_k == 0 || top_k > kMaxWireItems) {
    return Malformed("consensus top_k out of range");
  }
  if (!r.AtEnd()) return Malformed("trailing bytes");

  return WireConsensusRequest(decoded->id, decoded->deadline_ns, top_k,
                              std::move(decoded->model));
}

std::string EncodeConsensusResponse(const WireConsensusResponse& response) {
  Writer w;
  w.U64(response.id);
  w.U8(static_cast<std::uint8_t>(response.status.code()));
  w.U8(0);
  w.U8(0);
  w.U8(0);
  w.U32(static_cast<std::uint32_t>(response.status.message().size()));
  w.Bytes(response.status.message());
  w.U32(static_cast<std::uint32_t>(response.ranking.size()));
  for (rim::ItemId item : response.ranking) w.U32(item);
  w.F64(response.mean_footrule);
  w.F64(response.footrule_std_error);
  w.F64(response.mean_kendall);
  w.F64(response.kendall_std_error);
  w.U64(response.n_samples);
  return w.Take();
}

StatusOr<WireConsensusResponse> DecodeConsensusResponse(std::string_view body) {
  Reader r(body);
  WireConsensusResponse response;
  std::uint8_t code = 0;
  std::uint8_t reserved[3];
  std::uint32_t message_len = 0;
  std::string message;
  std::uint32_t ranking_len = 0;
  if (!r.U64(&response.id) || !r.U8(&code) || !r.U8(&reserved[0]) ||
      !r.U8(&reserved[1]) || !r.U8(&reserved[2]) || !r.U32(&message_len) ||
      !r.Bytes(message_len, &message) || !r.U32(&ranking_len)) {
    return Status::InvalidArgument("malformed consensus response body");
  }
  if (code > static_cast<std::uint8_t>(StatusCode::kInternal) ||
      reserved[0] != 0 || reserved[1] != 0 || reserved[2] != 0 ||
      ranking_len > kMaxWireItems) {
    return Status::InvalidArgument("malformed consensus response body");
  }
  response.ranking.resize(ranking_len);
  for (std::uint32_t i = 0; i < ranking_len; ++i) {
    if (!r.U32(&response.ranking[i])) {
      return Status::InvalidArgument("malformed consensus response body");
    }
  }
  if (!r.F64(&response.mean_footrule) ||
      !r.F64(&response.footrule_std_error) ||
      !r.F64(&response.mean_kendall) || !r.F64(&response.kendall_std_error) ||
      !r.U64(&response.n_samples)) {
    return Status::InvalidArgument("malformed consensus response body");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("malformed consensus response body");
  }
  response.status = Status(static_cast<StatusCode>(code), std::move(message));
  return response;
}

}  // namespace ppref::net
