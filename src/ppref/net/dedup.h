/// \file dedup.h
/// \brief `ppref::net` — the idempotent re-execution table.
///
/// A resilient client retries: after a torn connection it cannot know
/// whether the daemon already executed its request, so it sends the same
/// bytes again. Without help, every retry recomputes — wasted work under
/// exactly the overload that caused the retry — and a *degraded* answer
/// (seeded Monte-Carlo) might legally differ between executions. The
/// idempotency table makes re-execution safe and free: requests carrying a
/// client-chosen 64-bit idempotency key are single-flighted by key, and the
/// encoded response bytes are retained for a bounded window so a late retry
/// replays *the* answer — bit-identical — instead of computing *an* answer.
///
/// Three roles come out of `Begin`:
///   kOwner   first arrival; caller computes, then `Publish`es the bytes.
///   kWaiter  the key is being computed right now; caller does nothing —
///            `Publish` returns the waiter's token so the publisher can
///            deliver the same bytes to it (in-flight coalescing).
///   kReplay  the key completed recently; the retained bytes come back
///            immediately (completed-request replay).
///
/// Retention policy is the caller's per-response decision (`retain` on
/// `Publish`): terminal answers — OK, and degraded-but-approximate ones,
/// which are seeded and must stay bit-stable across retries — are retained;
/// transient failures (shed, timed out with nothing to show) are delivered
/// to current waiters but *not* retained, so a later retry gets a fresh
/// execution instead of a cached refusal.
///
/// The caller builds keys; this table treats them as opaque. The daemon
/// folds the wire correlation id and a protocol-plane tag into the key
/// (daemon.cc), so the retained bytes always echo the right id and the
/// binary and HTTP planes — which retain different byte encodings — never
/// alias.
///
/// Thread-safe; one mutex, O(1) operations, no allocation while holding the
/// lock beyond the entry itself. In-flight entries are never evicted (their
/// count is bounded by the worker pool); retained entries evict FIFO past
/// `capacity`.

#ifndef PPREF_NET_DEDUP_H_
#define PPREF_NET_DEDUP_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace ppref::obs {
class MetricsRegistry;
class Counter;
}  // namespace ppref::obs

namespace ppref::net {

struct IdempotencyTableOptions {
  /// Retained (completed) entries kept for replay; oldest evict first.
  std::size_t capacity = 4096;
  /// Counters land here when set (ppref_net_idem_*). May be nullptr.
  obs::MetricsRegistry* registry = nullptr;
};

class IdempotencyTable {
 public:
  using Options = IdempotencyTableOptions;

  enum class Role : std::uint8_t { kOwner, kWaiter, kReplay };

  struct Claim {
    Role role = Role::kOwner;
    /// The retained response bytes; set only for kReplay.
    std::string replay_bytes;
  };

  explicit IdempotencyTable(Options options = {});

  /// Registers interest in `key`. `waiter_token` identifies the caller for
  /// completion routing (the daemon passes the connection id); it is only
  /// recorded for kWaiter claims.
  Claim Begin(std::uint64_t key, std::uint64_t waiter_token);

  /// The owner's completion: delivers `bytes` to every waiter (returned as
  /// their tokens, in arrival order) and — when `retain` — keeps the bytes
  /// for later replay. When `!retain` the entry is erased instead, so the
  /// next Begin on this key computes afresh.
  std::vector<std::uint64_t> Publish(std::uint64_t key, std::string bytes,
                                     bool retain);

  /// Point-in-time totals (also exported as counters when a registry was
  /// given). `owner` counts kOwner claims, `coalesced` kWaiter claims,
  /// `replayed` kReplay claims, `evicted` retained entries dropped by the
  /// capacity bound.
  struct Stats {
    std::uint64_t owner = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t replayed = 0;
    std::uint64_t evicted = 0;
  };
  Stats stats() const;

 private:
  struct Entry {
    bool done = false;
    std::string bytes;                   // valid once done
    std::vector<std::uint64_t> waiters;  // tokens parked while !done
  };

  Options options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  /// Completion-order queue of retained keys for FIFO eviction. May hold
  /// stale keys (erased by a !retain publish); eviction skips those.
  std::deque<std::uint64_t> retained_fifo_;
  std::size_t retained_count_ = 0;
  Stats stats_;
  obs::Counter* owner_counter_ = nullptr;
  obs::Counter* coalesced_counter_ = nullptr;
  obs::Counter* replayed_counter_ = nullptr;
  obs::Counter* evicted_counter_ = nullptr;
};

}  // namespace ppref::net

#endif  // PPREF_NET_DEDUP_H_
