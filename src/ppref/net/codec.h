/// \file codec.h
/// \brief `ppref::net` — body codecs for request and response frames.
///
/// Layouts (all integers little-endian; doubles as their IEEE-754 bit
/// pattern in a little-endian u64 — *never* text, so answers survive the
/// wire bit-exactly):
///
/// ### Request body (FrameType::kRequest)
/// ```
/// u64 id            u8 kind            u8 flags           u8[2] reserved (0)
/// u64 deadline_ns
/// [u64 idempotency_key]                        (iff flags bit 0)
/// u32 m             u32[m] reference order (a permutation of 0..m-1)
/// f64[1+2+…+m] insertion rows, row t carrying t+1 entries
/// per item: u32 label_count, u32[label_count] labels
/// u32 node_count    u32[node_count] node labels (distinct)
/// u32 edge_count    (u32 from, u32 to)[edge_count] node indices
/// ```
///
/// ### Response body (FrameType::kResponse)
/// ```
/// u64 id
/// u8 status_code    u8 approximate     u8 has_top_matching   u8 reserved (0)
/// u32 message_len   bytes message
/// f64 probability   f64 std_error      u64 retry_after_ns
/// [u32 match_len    u32[match_len] items]        (iff has_top_matching)
/// ```
///
/// ### Sweep request body (FrameType::kSweepRequest)
/// ```
/// u32 base_len      bytes base         — a standard request body
///                                        (kind must be pattern_prob; its
///                                        id/deadline govern the sweep)
/// u32 point_count
/// per point: u32 len (1 or m), f64[len] dispersions in (0, 1]
/// ```
///
/// ### Sweep response body (FrameType::kSweepResponse)
/// ```
/// u64 id
/// u8 status_code    u8[3] reserved (0)
/// u32 message_len   bytes message
/// u32 count         f64[count] probabilities
/// ```
///
/// ### Hard request body (FrameType::kHardRequest)
/// ```
/// u32 base_len      bytes base         — a standard request body
///                                        (kind must be pattern_prob; its
///                                        id/deadline govern the query)
/// f64 target_half_width                — in [0, 1]; 0 = server default
/// ```
///
/// ### Hard response body (FrameType::kHardResponse)
/// ```
/// u64 id
/// u8 status_code    u8 target_met      u8 deadline_limited   u8 reserved (0)
/// u32 message_len   bytes message
/// f64 estimate      f64 std_error      u64 n_samples
/// ```
///
/// ### Consensus request body (FrameType::kConsensusRequest)
/// ```
/// u32 base_len      bytes base         — a standard request body with an
///                                        *empty* pattern (kind must be
///                                        pattern_prob; id/deadline govern)
/// u32 top_k                            — >= 1
/// ```
///
/// ### Consensus response body (FrameType::kConsensusResponse)
/// ```
/// u64 id
/// u8 status_code    u8[3] reserved (0)
/// u32 message_len   bytes message
/// u32 ranking_len   u32[ranking_len] items
/// f64 mean_footrule f64 footrule_std_error
/// f64 mean_kendall  f64 kendall_std_error
/// u64 n_samples
/// ```
///
/// ## The no-abort contract
/// `DecodeRequest` is the daemon's trust boundary. The model constructors it
/// ultimately calls (`Ranking`, `InsertionFunction`, `LabelPattern::AddNode`
/// …) enforce *internal* invariants with PPREF_CHECK, which aborts — correct
/// for programmer error, fatal for a server fed hostile bytes. So the
/// decoder re-validates every constructor precondition itself first —
/// permutation-ness, row sums within `InsertionFunction::kRowSumTolerance`,
/// non-negative finite probabilities, distinct pattern nodes, no self-loop
/// edges, in-range indices, bounded sizes — and returns `kInvalidArgument`
/// for any violation. The fuzz suite (tests/net/codec_test.cc) hammers this:
/// no byte soup may crash, over-read, or abort. Trailing bytes after a
/// well-formed body are also an error — a length lie somewhere upstream.
///
/// Decoded sizes are additionally capped (`kMaxWireItems`, `kMaxWireNodes`,
/// `kMaxWireLabelsPerItem`) so a declared-length attack cannot make the
/// decoder allocate unboundedly before validation catches up.

#ifndef PPREF_NET_CODEC_H_
#define PPREF_NET_CODEC_H_

#include <string>
#include <string_view>

#include "ppref/common/status.h"
#include "ppref/net/wire.h"

namespace ppref::net {

/// Decoder-side size caps. The serve layer's own guards (max_pattern_nodes,
/// the DP's 16-bit positions) are policy; these are plumbing bounds that
/// keep a hostile length field from costing memory.
inline constexpr unsigned kMaxWireItems = 4096;
inline constexpr unsigned kMaxWireNodes = 64;
inline constexpr unsigned kMaxWireLabelsPerItem = 64;
inline constexpr unsigned kMaxWirePoints = 8192;

/// Flags-byte bits of the request preamble. Undefined bits must be zero
/// (decode error) — they are the format's forward-compatibility reserve.
inline constexpr std::uint8_t kRequestFlagIdempotencyKey = 0x01;

/// Request body bytes (frame it with FrameType::kRequest).
std::string EncodeRequest(const WireRequest& request);

/// Best-effort extraction of the idempotency key from an *encoded* request
/// body, without decoding (the daemon claims its dedup slot before the
/// expensive decode+evaluate). Returns 0 — "unkeyed" — when the body is too
/// short or the flag is unset; a body that lies about the flag fails the
/// full decode afterwards.
std::uint64_t PeekIdempotencyKey(std::string_view body);

/// Parses and fully validates a request body. kInvalidArgument on any
/// malformed input; never aborts, throws, or over-reads.
StatusOr<WireRequest> DecodeRequest(std::string_view body);

/// Response body bytes (frame it with FrameType::kResponse).
std::string EncodeResponse(const WireResponse& response);

/// Parses a response body (client side). Same failure contract as
/// DecodeRequest.
StatusOr<WireResponse> DecodeResponse(std::string_view body);

/// Sweep request body bytes (frame it with FrameType::kSweepRequest).
std::string EncodeSweepRequest(const WireSweepRequest& request);

/// Parses and fully validates a sweep request body: the embedded base
/// request under DecodeRequest's rules, plus point-count/arity/range checks
/// on the parameter grid. Same no-abort contract.
StatusOr<WireSweepRequest> DecodeSweepRequest(std::string_view body);

/// Sweep response body bytes (frame it with FrameType::kSweepResponse).
std::string EncodeSweepResponse(const WireSweepResponse& response);

/// Parses a sweep response body (client side).
StatusOr<WireSweepResponse> DecodeSweepResponse(std::string_view body);

/// Hard request body bytes (frame it with FrameType::kHardRequest).
std::string EncodeHardRequest(const WireHardRequest& request);

/// Parses and fully validates a hard request body: the embedded base request
/// under DecodeRequest's rules plus the target range check. Same no-abort
/// contract.
StatusOr<WireHardRequest> DecodeHardRequest(std::string_view body);

/// Hard response body bytes (frame it with FrameType::kHardResponse).
std::string EncodeHardResponse(const WireHardResponse& response);

/// Parses a hard response body (client side).
StatusOr<WireHardResponse> DecodeHardResponse(std::string_view body);

/// Consensus request body bytes (frame it with FrameType::kConsensusRequest).
std::string EncodeConsensusRequest(const WireConsensusRequest& request);

/// Parses and fully validates a consensus request body. The embedded base
/// must carry an empty pattern (there is exactly one wire form of each
/// consensus query). Same no-abort contract.
StatusOr<WireConsensusRequest> DecodeConsensusRequest(std::string_view body);

/// Consensus response body bytes (frame with FrameType::kConsensusResponse).
std::string EncodeConsensusResponse(const WireConsensusResponse& response);

/// Parses a consensus response body (client side).
StatusOr<WireConsensusResponse> DecodeConsensusResponse(std::string_view body);

}  // namespace ppref::net

#endif  // PPREF_NET_CODEC_H_
