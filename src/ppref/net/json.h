/// \file json.h
/// \brief `ppref::net` — a minimal JSON value model and recursive-descent
/// parser for the daemon's HTTP query endpoint.
///
/// The repo renders JSON in several places (`obs/export.h`, trace dumps) but
/// until the network layer nothing *parsed* it. This parser covers exactly
/// RFC 8259 minus two conveniences we do not need: `\uXXXX` escapes decode
/// only the BMP (no surrogate pairs — queries are numbers and ASCII keys),
/// and numbers parse through `strtod` (which also accepts its extensions;
/// harmless in a request decoder). Like the binary codec it is a trust
/// boundary: any byte soup must yield `kInvalidArgument`, never a crash —
/// depth is bounded (`kMaxJsonDepth`) so deeply nested input cannot blow the
/// stack.
///
/// Numbers are `double` — the same type the inference engine answers with,
/// so a client that prints a probability with `%.17g` and feeds it back
/// round-trips the exact bits.

#ifndef PPREF_NET_JSON_H_
#define PPREF_NET_JSON_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ppref/common/status.h"

namespace ppref::net {

/// Nesting bound for the parser (arrays/objects).
inline constexpr unsigned kMaxJsonDepth = 64;

/// One parsed JSON value. A tagged struct rather than a std::variant so the
/// accessors can stay trivial and the recursion shallow.
struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered; duplicate keys keep the last occurrence on lookup.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsBool() const { return kind == Kind::kBool; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsObject() const { return kind == Kind::kObject; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

/// Parses one JSON document (with optional surrounding whitespace; trailing
/// garbage is an error). kInvalidArgument on malformed input.
StatusOr<JsonValue> ParseJson(std::string_view text);

/// Escapes and quotes `text` as a JSON string literal.
std::string JsonQuote(std::string_view text);

}  // namespace ppref::net

#endif  // PPREF_NET_JSON_H_
