/// \file daemon.h
/// \brief `ppref::net` — the network daemon: an epoll connection layer and a
/// worker pool wrapped around `serve::Server`.
///
/// ## Threading model
/// ```
///                        ┌────────────────────────────┐
///   accept / epoll ──────►  IO thread (owns all       │
///   read / write         │  connection state)         │
///                        └──────┬──────────▲──────────┘
///              complete frames  │          │  encoded responses
///                        ┌──────▼──────────┴──────────┐
///                        │  worker pool (N threads):  │
///                        │  decode → serve::Server    │
///                        │  ::Evaluate → encode       │
///                        └────────────────────────────┘
/// ```
/// One IO thread owns every socket and every per-connection struct — reads,
/// protocol detection, frame assembly, writes, deadlines, and teardown all
/// happen there, so connection state needs no locks. Complete requests are
/// handed to a fixed worker pool as owned byte buffers; workers do the
/// expensive work (decode, DP evaluation through the full fault-tolerant
/// serve pipeline, encode) and push finished bytes back through a completion
/// queue drained by the IO thread (woken via eventfd). A response for a
/// connection that died in the meantime is dropped by id — workers never
/// touch sockets.
///
/// Both planes share one port: a connection's first four bytes either match
/// the binary frame magic or the stream is treated as HTTP (http.h).
///
/// ## Deadlines and slow peers
/// `connection_deadline_ns` bounds how long a connection may sit *without a
/// complete request* — from accept, and between requests. A slow-loris peer
/// dribbling header bytes is closed when it expires; a connection whose
/// request is being computed is not (the request's own serve-layer deadline
/// governs that). Request deadlines inside the payload map onto
/// `serve::RequestControl` and the server's load-shedding/degradation
/// machinery, so an overloaded daemon answers `kResourceExhausted` /
/// degraded rather than queueing unboundedly.
///
/// ## Drain
/// `RequestDrain()` is async-signal-safe (an atomic store plus an eventfd
/// write) — call it from a SIGTERM handler. The daemon then: closes the
/// listen socket (new connects are refused by the kernel), closes idle
/// connections, lets in-flight requests finish and their responses flush,
/// answers `/healthz` with 503 meanwhile, and `Join()` returns once the last
/// connection is gone. `Stop()` is the impatient variant (tests): close
/// everything now.
///
/// ## Testability
/// The same event loop serves sockets it never accepted: `AdoptConnection`
/// injects one end of a `socketpair` directly, which is how the protocol
/// test harness drives every framing/deadline/drain path deterministically
/// in-process — under ctest and TSan — with no port allocation at all.

#ifndef PPREF_NET_DAEMON_H_
#define PPREF_NET_DAEMON_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ppref/common/status.h"
#include "ppref/net/dedup.h"
#include "ppref/net/frame.h"
#include "ppref/net/http.h"
#include "ppref/serve/server.h"

namespace ppref::net {

struct DaemonOptions {
  /// TCP listen port; 0 = ephemeral (read the outcome from `port()`),
  /// -1 = do not listen at all (adopt-only daemon, the test harness mode).
  int port = -1;
  /// An already-bound, already-listening socket to serve instead of binding
  /// `port` (which is then ignored). The daemon takes ownership. This is how
  /// the multi-process bench learns the port before forking clients and
  /// before any daemon thread exists.
  int listen_fd = -1;
  /// Listen address. Loopback by default: exposing an unauthenticated query
  /// engine beyond the host is a deployment decision, not a default.
  std::string bind_address = "127.0.0.1";
  /// Worker threads decoding/evaluating/encoding requests. 0 = auto
  /// (ClampThreads).
  unsigned workers = 0;
  /// Accepted connections beyond this are closed immediately. 0 = unbounded.
  std::size_t max_connections = 1024;
  /// Idle/slow-peer bound (see file comment). 0 = no deadline.
  std::uint64_t connection_deadline_ns = 30ull * 1000 * 1000 * 1000;
  /// Frame body cap handed to each connection's FrameAssembler.
  std::size_t max_frame_body = kDefaultMaxBodyBytes;
  /// HTTP request cap handed to each connection's HttpAccumulator.
  std::size_t max_http_bytes = kDefaultMaxHttpBytes;
  /// Retained entries in the idempotency table (net/dedup.h): keyed
  /// requests single-flight while in flight and replay bit-identical bytes
  /// afterwards, until FIFO-evicted past this bound. 0 disables idempotent
  /// re-execution (keys are then ignored).
  std::size_t idempotency_capacity = 4096;
  /// The serve layer configuration for the daemon-owned server (ignored
  /// when `server` is set).
  serve::ServerOptions server_options;
  /// Borrowed pre-built server; must outlive the daemon. nullptr = the
  /// daemon owns one built from `server_options`.
  serve::Server* server = nullptr;
};

/// A running daemon instance. Construct, `Start()`, eventually
/// `RequestDrain()` + `Join()` (or `Stop()`). Thread-safe where documented;
/// all methods may be called from any thread except where noted.
class Daemon {
 public:
  explicit Daemon(DaemonOptions options = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds and listens (when options.port >= 0) and spawns the IO thread
  /// and worker pool. Errors (bind failure, bad port) return without any
  /// thread started.
  Status Start();

  /// The bound TCP port after Start() (0 when not listening).
  int port() const { return port_; }

  /// Hands an already-connected stream socket to the event loop, which
  /// takes ownership of the fd. Refused once draining or stopped.
  Status AdoptConnection(int fd);

  /// Begins graceful drain. Async-signal-safe. Idempotent.
  void RequestDrain();

  /// Blocks until the drain completes (every connection closed, workers
  /// joined). Calling Join() without RequestDrain()/Stop() blocks until
  /// someone else initiates shutdown.
  void Join();

  /// Hard stop: close all connections (in-flight answers are lost), join
  /// everything. Idempotent; the destructor calls it.
  void Stop();

  /// True once RequestDrain() (or Stop()) has been observed.
  bool draining() const { return drain_.load(std::memory_order_acquire); }

  /// The serving core (daemon-owned or borrowed).
  serve::Server& server() { return *server_; }
  const serve::Server& server() const { return *server_; }

  /// Idempotency-table totals (zeros when disabled). Thread-safe.
  IdempotencyTable::Stats idempotency_stats() const;

 private:
  struct Connection;
  struct Job;
  struct Completion;
  struct Instruments;

  void IoLoop();
  void WorkerLoop();

  // IO-thread helpers (only the IO thread touches Connection state).
  void AcceptReady();
  void AdoptPending();
  void ReadReady(Connection& connection);
  void WriteReady(Connection& connection);
  void HandleInput(Connection& connection, const char* data, std::size_t size);
  void DispatchBinary(Connection& connection, Frame frame);
  void DispatchHttp(Connection& connection);
  void QueueOutput(Connection& connection, std::string bytes,
                   bool close_after);
  void FlushOutput(Connection& connection);
  void CloseConnection(std::uint64_t id);
  void DrainCompletions();
  void CloseExpiredConnections();
  int NextTimeoutMs() const;

  // Worker-side request execution (no connection access). `retain_idem`
  // (when non-null) reports whether the produced bytes are a terminal
  // answer safe to retain for idempotent replay.
  std::string ExecuteBinary(const std::string& body, bool* retain_idem);
  std::string ExecuteBinarySweep(const std::string& body);
  std::string ExecuteBinaryHard(const std::string& body);
  std::string ExecuteBinaryConsensus(const std::string& body);
  std::string ExecuteHttp(const HttpRequest& request, bool draining,
                          bool* retain_idem);

  void PushJob(Job job);
  void PushCompletion(Completion completion);
  void Wake();

  DaemonOptions options_;
  std::unique_ptr<serve::Server> owned_server_;
  serve::Server* server_ = nullptr;
  std::unique_ptr<Instruments> instruments_;
  std::unique_ptr<IdempotencyTable> idempotency_;

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  int port_ = 0;

  std::atomic<bool> started_{false};
  std::atomic<bool> drain_{false};
  std::atomic<bool> stop_{false};
  std::atomic<bool> io_done_{false};

  std::thread io_thread_;
  std::vector<std::thread> workers_;

  // Worker job queue.
  std::mutex jobs_mutex_;
  std::condition_variable jobs_cv_;
  std::deque<Job> jobs_;
  bool jobs_closed_ = false;

  // IO-bound queues (completions from workers, fds to adopt).
  std::mutex completions_mutex_;
  std::vector<Completion> completions_;
  std::mutex adopt_mutex_;
  std::vector<int> adopt_pending_;

  // Connections; IO thread only. Ids 0 and 1 are the listen/wake epoll
  // slots (daemon.cc), so connection ids start at 2.
  std::map<std::uint64_t, std::unique_ptr<Connection>> connections_;
  std::uint64_t next_connection_id_ = 2;

  // Join/exit signalling.
  std::mutex join_mutex_;
  std::condition_variable join_cv_;
  bool joined_ = false;
};

}  // namespace ppref::net

#endif  // PPREF_NET_DAEMON_H_
