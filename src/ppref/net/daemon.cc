#include "ppref/net/daemon.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "ppref/common/hash.h"
#include "ppref/common/parallel.h"
#include "ppref/net/codec.h"
#include "ppref/obs/metrics.h"

namespace ppref::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Epoll user-data ids for the two non-connection fds.
constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = 1;
constexpr std::uint64_t kFirstConnectionId = 2;

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Best-effort little-endian u64 at `offset` — how a shed/failed request's
/// id is recovered without decoding the body (0 when too short).
std::uint64_t PeekId(std::string_view body, std::size_t offset) {
  if (body.size() < offset + 8) return 0;
  std::uint64_t id = 0;
  for (int i = 0; i < 8; ++i) {
    id |= static_cast<std::uint64_t>(
              static_cast<unsigned char>(body[offset + i]))
          << (8 * i);
  }
  return id;
}

/// Protocol-plane tags folded into idempotency-table keys: the binary and
/// HTTP planes retain different byte encodings of the same logical answer,
/// so their keys must never alias.
constexpr std::uint64_t kIdemPlaneBinary = 0x62696e5050524631ull;  // "binPPRF1"
constexpr std::uint64_t kIdemPlaneHttp = 0x6874745050524631ull;    // "httPPRF1"

/// Strict decimal u64 parse for the idempotency HTTP header; false on
/// empty, non-digit, overflow, or zero.
bool ParseHeaderKey(const std::string& text, std::uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (~0ull - digit) / 10) return false;
    value = value * 10 + digit;
  }
  if (value == 0) return false;
  *out = value;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal structs

struct Daemon::Connection {
  Connection(std::uint64_t id, int fd, const DaemonOptions& options)
      : id(id),
        fd(fd),
        assembler(options.max_frame_body),
        http(options.max_http_bytes) {}

  std::uint64_t id;
  int fd;

  enum class Protocol : std::uint8_t { kUnknown, kBinary, kHttp };
  Protocol protocol = Protocol::kUnknown;
  /// Bytes held while the protocol is still undecided (< 4 bytes seen).
  std::string detect;

  FrameAssembler assembler;
  HttpAccumulator http;

  std::string out;
  std::size_t out_offset = 0;
  bool want_write = false;

  /// Requests dispatched to workers and not yet answered.
  std::size_t in_flight = 0;
  bool peer_closed = false;
  bool close_after_flush = false;

  /// Expiry point while quiet (no request in flight); reset on accept and
  /// on every flushed response.
  Clock::time_point deadline_at;
};

struct Daemon::Job {
  /// Which binary request family the body carries (ignored when http).
  enum class Kind : std::uint8_t { kEvaluate, kSweep, kHard, kConsensus };

  std::uint64_t conn_id = 0;
  bool http = false;
  Kind kind = Kind::kEvaluate;
  std::string body;      // binary request frame body
  HttpRequest request;   // http request
};

struct Daemon::Completion {
  std::uint64_t conn_id = 0;
  std::string bytes;
  bool close_after = false;
};

struct Daemon::Instruments {
  explicit Instruments(obs::MetricsRegistry& r)
      : accepted(r.GetCounter("ppref_net_connections_accepted_total",
                              "TCP connections accepted")),
        adopted(r.GetCounter("ppref_net_connections_adopted_total",
                             "Connections injected via AdoptConnection")),
        closed(r.GetCounter("ppref_net_connections_closed_total",
                            "Connections closed (any reason)")),
        deadline_closes(
            r.GetCounter("ppref_net_deadline_closes_total",
                         "Connections closed by the per-connection deadline")),
        refused(r.GetCounter("ppref_net_connections_refused_total",
                             "Connections refused (capacity or drain)")),
        bad_frames(r.GetCounter("ppref_net_bad_frames_total",
                                "Connections dropped for framing violations")),
        requests_binary(r.GetCounter("ppref_net_requests_binary_total",
                                     "Binary-protocol requests dispatched")),
        requests_http(r.GetCounter("ppref_net_requests_http_total",
                                   "HTTP requests dispatched")),
        requests_sweep(r.GetCounter("ppref_net_requests_sweep_total",
                                    "Parameter-sweep requests dispatched "
                                    "(binary and HTTP)")),
        requests_hard(r.GetCounter("ppref_net_requests_hard_total",
                                   "Hard-tier adaptive-estimate requests "
                                   "dispatched (binary and HTTP)")),
        requests_consensus(r.GetCounter("ppref_net_requests_consensus_total",
                                        "Consensus top-k requests dispatched "
                                        "(binary and HTTP)")),
        shed_draining(r.GetCounter(
            "ppref_net_shed_draining_total",
            "Requests refused because the daemon was draining")),
        bytes_rx(r.GetCounter("ppref_net_bytes_rx_total", "Bytes read")),
        bytes_tx(r.GetCounter("ppref_net_bytes_tx_total", "Bytes written")),
        active(r.GetGauge("ppref_net_connections_active",
                          "Currently open connections")),
        draining(r.GetGauge("ppref_net_draining",
                            "1 once graceful drain has begun")) {}

  obs::Counter& accepted;
  obs::Counter& adopted;
  obs::Counter& closed;
  obs::Counter& deadline_closes;
  obs::Counter& refused;
  obs::Counter& bad_frames;
  obs::Counter& requests_binary;
  obs::Counter& requests_http;
  obs::Counter& requests_sweep;
  obs::Counter& requests_hard;
  obs::Counter& requests_consensus;
  obs::Counter& shed_draining;
  obs::Counter& bytes_rx;
  obs::Counter& bytes_tx;
  obs::Gauge& active;
  obs::Gauge& draining;
};

// ---------------------------------------------------------------------------
// Lifecycle

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  if (options_.server != nullptr) {
    server_ = options_.server;
  } else {
    owned_server_ = std::make_unique<serve::Server>(options_.server_options);
    server_ = owned_server_.get();
  }
  instruments_ = std::make_unique<Instruments>(server_->registry());
  if (options_.idempotency_capacity > 0) {
    IdempotencyTable::Options idem_options;
    idem_options.capacity = options_.idempotency_capacity;
    idem_options.registry = &server_->registry();
    idempotency_ = std::make_unique<IdempotencyTable>(idem_options);
  }
}

IdempotencyTable::Stats Daemon::idempotency_stats() const {
  return idempotency_ != nullptr ? idempotency_->stats()
                                 : IdempotencyTable::Stats{};
}

Daemon::~Daemon() {
  Stop();
  // After Stop() no thread but this one is alive; listen_fd_ is still open
  // only when Start() failed before the IO thread existed.
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  if (wake_fd_ >= 0) close(wake_fd_);
  wake_fd_ = -1;
  if (epoll_fd_ >= 0) close(epoll_fd_);
  epoll_fd_ = -1;
}

Status Daemon::Start() {
  if (started_.exchange(true)) {
    return Status::Internal("daemon already started");
  }
  // On any failure below the IO thread will never run, so mark it done —
  // otherwise a later Stop()/Join() would wait for it forever.
  auto fail = [this](Status status) {
    io_done_.store(true, std::memory_order_release);
    join_cv_.notify_all();
    return status;
  };

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return fail(Errno("epoll_create1"));
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return fail(Errno("eventfd"));
  epoll_event wake_event{};
  wake_event.events = EPOLLIN;
  wake_event.data.u64 = kWakeId;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake_event);

  if (options_.listen_fd >= 0) {
    listen_fd_ = options_.listen_fd;
    SetNonBlocking(listen_fd_);
    sockaddr_in address{};
    socklen_t length = sizeof(address);
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address),
                    &length) == 0 &&
        address.sin_family == AF_INET) {
      port_ = ntohs(address.sin_port);
    }
    epoll_event listen_event{};
    listen_event.events = EPOLLIN;
    listen_event.data.u64 = kListenId;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &listen_event);
  } else if (options_.port >= 0) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK,
                        0);
    if (listen_fd_ < 0) return fail(Errno("socket"));
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (inet_pton(AF_INET, options_.bind_address.c_str(),
                  &address.sin_addr) != 1) {
      return fail(Status::InvalidArgument("bad bind address " +
                                          options_.bind_address));
    }
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
      return fail(Errno("bind"));
    }
    if (listen(listen_fd_, 128) != 0) return fail(Errno("listen"));
    socklen_t length = sizeof(address);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &length);
    port_ = ntohs(address.sin_port);
    epoll_event listen_event{};
    listen_event.events = EPOLLIN;
    listen_event.data.u64 = kListenId;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &listen_event);
  }

  unsigned workers = options_.workers;
  if (workers == 0) workers = ClampThreads(0);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::Ok();
}

Status Daemon::AdoptConnection(int fd) {
  if (!started_.load(std::memory_order_acquire) ||
      io_done_.load(std::memory_order_acquire)) {
    close(fd);
    return Status::Internal("daemon not running");
  }
  if (drain_.load(std::memory_order_acquire)) {
    close(fd);
    return Status::ResourceExhausted("daemon draining");
  }
  {
    std::lock_guard<std::mutex> lock(adopt_mutex_);
    adopt_pending_.push_back(fd);
  }
  Wake();
  return Status::Ok();
}

void Daemon::RequestDrain() {
  // Async-signal-safe: one atomic store, one eventfd write.
  drain_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }
}

void Daemon::Join() {
  if (!started_.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lock(join_mutex_);
  join_cv_.wait(lock, [this] { return io_done_.load(); });
  if (!joined_) {
    joined_ = true;
    lock.unlock();
    if (io_thread_.joinable()) io_thread_.join();
    return;
  }
  lock.unlock();
  // Another thread owns the join; wait for the thread to finish.
  if (io_thread_.joinable()) io_thread_.join();
}

void Daemon::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  drain_.store(true, std::memory_order_release);
  Wake();
  Join();
}

void Daemon::Wake() {
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }
}

// ---------------------------------------------------------------------------
// IO thread

void Daemon::IoLoop() {
  bool drain_seen = false;
  epoll_event events[64];

  while (true) {
    if (stop_.load(std::memory_order_acquire)) break;
    if (drain_.load(std::memory_order_acquire) && !drain_seen) {
      drain_seen = true;
      instruments_->draining.Set(1);
      if (listen_fd_ >= 0) {
        epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
        close(listen_fd_);
        listen_fd_ = -1;
      }
      // Close what can close now; connections with answers pending flush
      // first (close_after_flush), the rest go immediately.
      std::vector<std::uint64_t> idle;
      for (auto& [id, connection] : connections_) {
        connection->close_after_flush = true;
        if (connection->in_flight == 0 && connection->out_offset ==
            connection->out.size()) {
          idle.push_back(id);
        }
      }
      for (std::uint64_t id : idle) CloseConnection(id);
    }
    if (drain_seen && connections_.empty()) break;

    const int ready =
        epoll_wait(epoll_fd_, events, 64, NextTimeoutMs());
    if (ready < 0 && errno != EINTR) break;

    for (int i = 0; i < ready; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kListenId) {
        AcceptReady();
        continue;
      }
      if (id == kWakeId) {
        std::uint64_t drainer = 0;
        while (read(wake_fd_, &drainer, sizeof(drainer)) > 0) {
        }
        continue;
      }
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      Connection& connection = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0 &&
          (events[i].events & EPOLLIN) == 0) {
        CloseConnection(id);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) ReadReady(connection);
      // ReadReady may have closed the connection; re-find before writing.
      auto again = connections_.find(id);
      if (again != connections_.end() &&
          (events[i].events & EPOLLOUT) != 0) {
        WriteReady(*again->second);
      }
    }

    AdoptPending();
    DrainCompletions();
    CloseExpiredConnections();
  }

  // Teardown: drop every remaining connection, stop the workers, release
  // the fds. Runs on the IO thread so connection state stays single-owner
  // to the end.
  for (auto& [id, connection] : connections_) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, connection->fd, nullptr);
    close(connection->fd);
    instruments_->closed.Inc();
    instruments_->active.Add(-1);
  }
  connections_.clear();
  {
    std::lock_guard<std::mutex> lock(adopt_mutex_);
    for (int fd : adopt_pending_) close(fd);
    adopt_pending_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_closed_ = true;
  }
  jobs_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  // wake_fd_ / epoll_fd_ stay open: Wake()/RequestDrain() may still be
  // writing the eventfd from other threads (including a signal handler),
  // so those fds are owned by the Daemon object and close in ~Daemon, after
  // every thread that could touch them is joined.

  io_done_.store(true, std::memory_order_release);
  join_cv_.notify_all();
}

void Daemon::AcceptReady() {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd < 0) return;
    if (drain_.load(std::memory_order_acquire) ||
        (options_.max_connections != 0 &&
         connections_.size() >= options_.max_connections)) {
      instruments_->refused.Inc();
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    instruments_->accepted.Inc();
    const std::uint64_t id = next_connection_id_++;
    auto connection = std::make_unique<Connection>(id, fd, options_);
    connection->deadline_at =
        Clock::now() + std::chrono::nanoseconds(options_.connection_deadline_ns);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = id;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
    connections_.emplace(id, std::move(connection));
    instruments_->active.Add(1);
  }
}

void Daemon::AdoptPending() {
  std::vector<int> pending;
  {
    std::lock_guard<std::mutex> lock(adopt_mutex_);
    pending.swap(adopt_pending_);
  }
  for (int fd : pending) {
    if (drain_.load(std::memory_order_acquire)) {
      close(fd);
      continue;
    }
    SetNonBlocking(fd);
    instruments_->adopted.Inc();
    const std::uint64_t id = next_connection_id_++;
    auto connection = std::make_unique<Connection>(id, fd, options_);
    connection->deadline_at =
        Clock::now() + std::chrono::nanoseconds(options_.connection_deadline_ns);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = id;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event);
    connections_.emplace(id, std::move(connection));
    instruments_->active.Add(1);
  }
}

void Daemon::ReadReady(Connection& connection) {
  char buffer[65536];
  while (true) {
    const ssize_t n = recv(connection.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      instruments_->bytes_rx.Inc(static_cast<std::uint64_t>(n));
      HandleInput(connection, buffer, static_cast<std::size_t>(n));
      // HandleInput may close on protocol violations.
      if (connections_.find(connection.id) == connections_.end()) return;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    // EOF or hard error.
    if (connection.in_flight == 0 &&
        connection.out_offset == connection.out.size()) {
      CloseConnection(connection.id);
    } else {
      connection.peer_closed = true;
    }
    return;
  }
}

void Daemon::HandleInput(Connection& connection, const char* data,
                         std::size_t size) {
  if (connection.protocol == Connection::Protocol::kUnknown) {
    connection.detect.append(data, size);
    const std::string_view magic("PPRF", 4);
    const std::size_t have = std::min<std::size_t>(connection.detect.size(), 4);
    if (connection.detect.compare(0, have, magic.substr(0, have)) == 0) {
      if (have < 4) return;  // still ambiguous, wait for more bytes
      connection.protocol = Connection::Protocol::kBinary;
    } else {
      connection.protocol = Connection::Protocol::kHttp;
    }
    const std::string detect = std::move(connection.detect);
    connection.detect.clear();
    HandleInput(connection, detect.data(), detect.size());
    return;
  }

  if (connection.protocol == Connection::Protocol::kBinary) {
    if (!connection.assembler.Feed(data, size).ok()) {
      instruments_->bad_frames.Inc();
      CloseConnection(connection.id);
      return;
    }
    Frame frame;
    while (connection.assembler.Next(&frame)) {
      DispatchBinary(connection, std::move(frame));
      if (connections_.find(connection.id) == connections_.end()) return;
    }
    return;
  }

  // HTTP.
  const HttpAccumulator::State state =
      connection.http.Feed(std::string_view(data, size));
  if (state == HttpAccumulator::State::kError) {
    QueueOutput(connection,
                RenderHttpResponse(400, "Bad Request", "text/plain",
                                   connection.http.status().message() + "\n"),
                /*close_after=*/true);
    return;
  }
  if (state == HttpAccumulator::State::kComplete) DispatchHttp(connection);
}

void Daemon::DispatchBinary(Connection& connection, Frame frame) {
  switch (frame.type) {
    case FrameType::kPing:
      QueueOutput(connection, EncodeFrame(FrameType::kPong, frame.body),
                  /*close_after=*/false);
      return;
    case FrameType::kRequest: {
      if (drain_.load(std::memory_order_acquire)) {
        // Shed without decoding the model: only the id (first 8 body
        // bytes) is needed for a well-formed refusal.
        instruments_->shed_draining.Inc();
        WireResponse response;
        response.id = PeekId(frame.body, 0);
        response.status = Status::ResourceExhausted("daemon draining");
        QueueOutput(connection,
                    EncodeFrame(FrameType::kResponse,
                                EncodeResponse(response)),
                    /*close_after=*/false);
        return;
      }
      instruments_->requests_binary.Inc();
      ++connection.in_flight;
      Job job;
      job.conn_id = connection.id;
      job.http = false;
      job.body = std::move(frame.body);
      PushJob(std::move(job));
      return;
    }
    case FrameType::kSweepRequest: {
      if (drain_.load(std::memory_order_acquire)) {
        // The sweep body opens with a u32 base length, so the embedded base
        // request's id sits at bytes 4..12.
        instruments_->shed_draining.Inc();
        WireSweepResponse response;
        response.id = PeekId(frame.body, 4);
        response.status = Status::ResourceExhausted("daemon draining");
        QueueOutput(connection,
                    EncodeFrame(FrameType::kSweepResponse,
                                EncodeSweepResponse(response)),
                    /*close_after=*/false);
        return;
      }
      instruments_->requests_binary.Inc();
      instruments_->requests_sweep.Inc();
      ++connection.in_flight;
      Job job;
      job.conn_id = connection.id;
      job.http = false;
      job.kind = Job::Kind::kSweep;
      job.body = std::move(frame.body);
      PushJob(std::move(job));
      return;
    }
    case FrameType::kHardRequest: {
      if (drain_.load(std::memory_order_acquire)) {
        // Like a sweep, the body opens with a u32 base length, so the
        // embedded base request's id sits at bytes 4..12.
        instruments_->shed_draining.Inc();
        WireHardResponse response;
        response.id = PeekId(frame.body, 4);
        response.status = Status::ResourceExhausted("daemon draining");
        QueueOutput(connection,
                    EncodeFrame(FrameType::kHardResponse,
                                EncodeHardResponse(response)),
                    /*close_after=*/false);
        return;
      }
      instruments_->requests_binary.Inc();
      instruments_->requests_hard.Inc();
      ++connection.in_flight;
      Job job;
      job.conn_id = connection.id;
      job.http = false;
      job.kind = Job::Kind::kHard;
      job.body = std::move(frame.body);
      PushJob(std::move(job));
      return;
    }
    case FrameType::kConsensusRequest: {
      if (drain_.load(std::memory_order_acquire)) {
        instruments_->shed_draining.Inc();
        WireConsensusResponse response;
        response.id = PeekId(frame.body, 4);
        response.status = Status::ResourceExhausted("daemon draining");
        QueueOutput(connection,
                    EncodeFrame(FrameType::kConsensusResponse,
                                EncodeConsensusResponse(response)),
                    /*close_after=*/false);
        return;
      }
      instruments_->requests_binary.Inc();
      instruments_->requests_consensus.Inc();
      ++connection.in_flight;
      Job job;
      job.conn_id = connection.id;
      job.http = false;
      job.kind = Job::Kind::kConsensus;
      job.body = std::move(frame.body);
      PushJob(std::move(job));
      return;
    }
    case FrameType::kResponse:
    case FrameType::kPong:
    case FrameType::kSweepResponse:
    case FrameType::kHardResponse:
    case FrameType::kConsensusResponse:
      // Clients send requests and pings; anything else is a violation.
      instruments_->bad_frames.Inc();
      CloseConnection(connection.id);
      return;
  }
}

void Daemon::DispatchHttp(Connection& connection) {
  if (drain_.load(std::memory_order_acquire)) {
    instruments_->shed_draining.Inc();
    QueueOutput(connection,
                RenderHttpResponse(503, "Service Unavailable", "text/plain",
                                   "draining\n"),
                /*close_after=*/true);
    return;
  }
  instruments_->requests_http.Inc();
  ++connection.in_flight;
  Job job;
  job.conn_id = connection.id;
  job.http = true;
  job.request = connection.http.request();
  PushJob(std::move(job));
}

void Daemon::QueueOutput(Connection& connection, std::string bytes,
                         bool close_after) {
  if (connection.out_offset == connection.out.size()) {
    connection.out.clear();
    connection.out_offset = 0;
  }
  connection.out += bytes;
  if (close_after) connection.close_after_flush = true;
  FlushOutput(connection);
}

void Daemon::FlushOutput(Connection& connection) {
  while (connection.out_offset < connection.out.size()) {
    const ssize_t n =
        send(connection.fd, connection.out.data() + connection.out_offset,
             connection.out.size() - connection.out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      instruments_->bytes_tx.Inc(static_cast<std::uint64_t>(n));
      connection.out_offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!connection.want_write) {
        connection.want_write = true;
        epoll_event event{};
        event.events = EPOLLIN | EPOLLOUT;
        event.data.u64 = connection.id;
        epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection.fd, &event);
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    // Peer is gone; nothing left to deliver.
    CloseConnection(connection.id);
    return;
  }
  // Fully flushed.
  if (connection.want_write) {
    connection.want_write = false;
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = connection.id;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection.fd, &event);
  }
  if (connection.in_flight == 0 &&
      (connection.close_after_flush || connection.peer_closed)) {
    CloseConnection(connection.id);
    return;
  }
  // Back to quiet: re-arm the idle deadline.
  connection.deadline_at =
      Clock::now() + std::chrono::nanoseconds(options_.connection_deadline_ns);
}

void Daemon::WriteReady(Connection& connection) { FlushOutput(connection); }

void Daemon::CloseConnection(std::uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  close(it->second->fd);
  connections_.erase(it);
  instruments_->closed.Inc();
  instruments_->active.Add(-1);
}

void Daemon::DrainCompletions() {
  std::vector<Completion> completions;
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions.swap(completions_);
  }
  for (Completion& completion : completions) {
    auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // connection died meanwhile
    Connection& connection = *it->second;
    if (connection.in_flight > 0) --connection.in_flight;
    QueueOutput(connection, std::move(completion.bytes),
                completion.close_after);
  }
}

void Daemon::CloseExpiredConnections() {
  if (options_.connection_deadline_ns == 0) return;
  const Clock::time_point now = Clock::now();
  std::vector<std::uint64_t> expired;
  for (const auto& [id, connection] : connections_) {
    if (connection->in_flight == 0 && now >= connection->deadline_at) {
      expired.push_back(id);
    }
  }
  for (std::uint64_t id : expired) {
    instruments_->deadline_closes.Inc();
    CloseConnection(id);
  }
}

int Daemon::NextTimeoutMs() const {
  if (options_.connection_deadline_ns == 0) return 500;
  const Clock::time_point now = Clock::now();
  std::int64_t best_ms = 500;
  for (const auto& [id, connection] : connections_) {
    if (connection->in_flight != 0) continue;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          connection->deadline_at - now)
                          .count();
    if (left < best_ms) best_ms = left;
  }
  if (best_ms < 0) best_ms = 0;
  return static_cast<int>(best_ms);
}

// ---------------------------------------------------------------------------
// Workers

void Daemon::PushJob(Job job) {
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.notify_one();
}

void Daemon::PushCompletion(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(completions_mutex_);
    completions_.push_back(std::move(completion));
  }
  Wake();
}

void Daemon::WorkerLoop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(jobs_mutex_);
      jobs_cv_.wait(lock, [this] { return jobs_closed_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // closed and drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }

    // Idempotent re-execution: a keyed request claims its table slot before
    // the expensive decode+evaluate. A replayed or coalesced retry costs no
    // serve-layer work at all; a waiter produces *no* completion here — the
    // owner's Publish fans the bytes out to every parked waiter.
    std::uint64_t idem_key = 0;
    if (idempotency_ != nullptr) {
      if (job.http) {
        const std::string* header =
            job.request.Header("x-ppref-idempotency-key");
        std::uint64_t raw = 0;
        if (job.request.method == "POST" && job.request.target == "/query" &&
            header != nullptr && ParseHeaderKey(*header, &raw)) {
          idem_key = HashCombine(kIdemPlaneHttp, raw);
        }
      } else if (job.kind == Job::Kind::kEvaluate) {
        const std::uint64_t raw = PeekIdempotencyKey(job.body);
        if (raw != 0) {
          // The wire id is folded in so retained bytes echo the id their
          // requester sent (retries reuse id + key; see wire.h).
          idem_key = HashCombine(HashCombine(kIdemPlaneBinary, raw),
                                 PeekId(job.body, 0));
        }
      }
    }
    const bool http_close = job.http;  // HTTP is one-shot (Connection: close)
    if (idem_key != 0) {
      IdempotencyTable::Claim claim =
          idempotency_->Begin(idem_key, job.conn_id);
      if (claim.role == IdempotencyTable::Role::kReplay) {
        Completion completion;
        completion.conn_id = job.conn_id;
        completion.bytes = std::move(claim.replay_bytes);
        completion.close_after = http_close;
        PushCompletion(std::move(completion));
        continue;
      }
      if (claim.role == IdempotencyTable::Role::kWaiter) continue;
    }

    Completion completion;
    completion.conn_id = job.conn_id;
    bool retain = false;
    if (job.http) {
      completion.bytes = ExecuteHttp(
          job.request, drain_.load(std::memory_order_acquire), &retain);
      completion.close_after = true;
    } else {
      switch (job.kind) {
        case Job::Kind::kEvaluate:
          completion.bytes = ExecuteBinary(job.body, &retain);
          break;
        case Job::Kind::kSweep:
          completion.bytes = ExecuteBinarySweep(job.body);
          break;
        case Job::Kind::kHard:
          completion.bytes = ExecuteBinaryHard(job.body);
          break;
        case Job::Kind::kConsensus:
          completion.bytes = ExecuteBinaryConsensus(job.body);
          break;
      }
      completion.close_after = false;
    }
    if (idem_key != 0) {
      const std::vector<std::uint64_t> waiters =
          idempotency_->Publish(idem_key, completion.bytes, retain);
      for (std::uint64_t waiter : waiters) {
        Completion coalesced;
        coalesced.conn_id = waiter;
        coalesced.bytes = completion.bytes;
        coalesced.close_after = http_close;
        PushCompletion(std::move(coalesced));
      }
    }
    PushCompletion(std::move(completion));
  }
}

std::string Daemon::ExecuteBinary(const std::string& body, bool* retain_idem) {
  StatusOr<WireRequest> request = DecodeRequest(body);
  WireResponse response;
  if (!request.ok()) {
    // The id may not have survived decoding; a zero id plus the status is
    // the best-effort answer (the strict client treats it as terminal).
    response.id = PeekId(body, 0);
    response.status = request.status();
  } else {
    response = WireResponse::From(request->id,
                                  server_->Evaluate(request->ToRequest()));
  }
  // Terminal answers replay bit-identically: exact OK answers, and degraded
  // approximate ones (seeded MC — *the* answer for this request, so a retry
  // must see the same bits). Transient refusals (shed, empty-handed
  // deadline) must not be pinned — a later retry deserves a fresh attempt.
  if (retain_idem != nullptr) {
    *retain_idem = response.status.ok() || response.approximate;
  }
  return EncodeFrame(FrameType::kResponse, EncodeResponse(response));
}

std::string Daemon::ExecuteBinarySweep(const std::string& body) {
  StatusOr<WireSweepRequest> request = DecodeSweepRequest(body);
  WireSweepResponse response;
  if (!request.ok()) {
    response.id = PeekId(body, 4);  // id of the length-prefixed base request
    response.status = request.status();
  } else {
    response.id = request->id;
    serve::RequestControl control;
    control.deadline_ns = request->deadline_ns;
    StatusOr<std::vector<double>> answers = server_->PatternProbSweep(
        request->model, request->pattern, request->params, control);
    if (answers.ok()) {
      response.probabilities = std::move(*answers);
    } else {
      response.status = answers.status();
    }
  }
  return EncodeFrame(FrameType::kSweepResponse, EncodeSweepResponse(response));
}

std::string Daemon::ExecuteBinaryHard(const std::string& body) {
  StatusOr<WireHardRequest> request = DecodeHardRequest(body);
  WireHardResponse response;
  if (!request.ok()) {
    response.id = PeekId(body, 4);  // id of the length-prefixed base request
    response.status = request.status();
  } else {
    response.id = request->id;
    serve::RequestControl control;
    control.deadline_ns = request->deadline_ns;
    StatusOr<serve::HardEstimate> estimate = server_->HardPatternProb(
        request->model, request->pattern, request->target_half_width, control);
    if (estimate.ok()) {
      response.estimate = estimate->estimate;
      response.std_error = estimate->std_error;
      response.n_samples = estimate->n_samples;
      response.target_met = estimate->target_met;
      response.deadline_limited = estimate->deadline_limited;
    } else {
      response.status = estimate.status();
    }
  }
  return EncodeFrame(FrameType::kHardResponse, EncodeHardResponse(response));
}

std::string Daemon::ExecuteBinaryConsensus(const std::string& body) {
  StatusOr<WireConsensusRequest> request = DecodeConsensusRequest(body);
  WireConsensusResponse response;
  if (!request.ok()) {
    response.id = PeekId(body, 4);
    response.status = request.status();
  } else {
    response.id = request->id;
    serve::RequestControl control;
    control.deadline_ns = request->deadline_ns;
    StatusOr<serve::ConsensusAnswer> answer =
        server_->ConsensusTopK(request->model, request->top_k, control);
    if (answer.ok()) {
      response.ranking = std::move(answer->ranking);
      response.mean_footrule = answer->mean_footrule;
      response.footrule_std_error = answer->footrule_std_error;
      response.mean_kendall = answer->mean_kendall;
      response.kendall_std_error = answer->kendall_std_error;
      response.n_samples = answer->n_samples;
    } else {
      response.status = answer.status();
    }
  }
  return EncodeFrame(FrameType::kConsensusResponse,
                     EncodeConsensusResponse(response));
}

std::string Daemon::ExecuteHttp(const HttpRequest& request, bool draining,
                                bool* retain_idem) {
  if (retain_idem != nullptr) *retain_idem = false;
  if (request.method == "GET") {
    if (request.target == "/healthz") {
      if (draining) {
        return RenderHttpResponse(503, "Service Unavailable", "text/plain",
                                  "draining\n");
      }
      return RenderHttpResponse(200, "OK", "text/plain", "ok\n");
    }
    if (request.target == "/metrics") {
      return RenderHttpResponse(200, "OK",
                                "text/plain; version=0.0.4; charset=utf-8",
                                server_->ScrapeMetrics());
    }
    if (request.target == "/metrics.json") {
      return RenderHttpResponse(200, "OK", "application/json",
                                server_->ScrapeMetricsJson());
    }
    return RenderHttpResponse(404, "Not Found", "text/plain", "not found\n");
  }
  if (request.method != "POST") {
    return RenderHttpResponse(405, "Method Not Allowed", "text/plain",
                              "method not allowed\n");
  }
  if (request.target != "/query" && request.target != "/sweep" &&
      request.target != "/hard" && request.target != "/consensus") {
    return RenderHttpResponse(404, "Not Found", "text/plain", "not found\n");
  }

  StatusOr<JsonValue> document = ParseJson(request.body);
  if (!document.ok()) {
    return RenderHttpResponse(
        400, "Bad Request", "application/json",
        "{\"status\":\"INVALID_ARGUMENT\",\"message\":" +
            JsonQuote(document.status().message()) + "}");
  }

  if (request.target == "/sweep") {
    instruments_->requests_sweep.Inc();
    StatusOr<WireSweepRequest> wire = SweepRequestFromJson(*document);
    if (!wire.ok()) {
      return RenderHttpResponse(
          400, "Bad Request", "application/json",
          "{\"status\":\"INVALID_ARGUMENT\",\"message\":" +
              JsonQuote(wire.status().message()) + "}");
    }
    WireSweepResponse response;
    response.id = wire->id;
    serve::RequestControl control;
    control.deadline_ns = wire->deadline_ns;
    StatusOr<std::vector<double>> answers = server_->PatternProbSweep(
        wire->model, wire->pattern, wire->params, control);
    if (answers.ok()) {
      response.probabilities = std::move(*answers);
    } else {
      response.status = answers.status();
    }
    return RenderHttpResponse(200, "OK", "application/json",
                              JsonFromWireSweepResponse(response));
  }

  if (request.target == "/hard") {
    instruments_->requests_hard.Inc();
    StatusOr<WireHardRequest> wire = HardRequestFromJson(*document);
    if (!wire.ok()) {
      return RenderHttpResponse(
          400, "Bad Request", "application/json",
          "{\"status\":\"INVALID_ARGUMENT\",\"message\":" +
              JsonQuote(wire.status().message()) + "}");
    }
    WireHardResponse response;
    response.id = wire->id;
    serve::RequestControl control;
    control.deadline_ns = wire->deadline_ns;
    StatusOr<serve::HardEstimate> estimate = server_->HardPatternProb(
        wire->model, wire->pattern, wire->target_half_width, control);
    if (estimate.ok()) {
      response.estimate = estimate->estimate;
      response.std_error = estimate->std_error;
      response.n_samples = estimate->n_samples;
      response.target_met = estimate->target_met;
      response.deadline_limited = estimate->deadline_limited;
    } else {
      response.status = estimate.status();
    }
    return RenderHttpResponse(200, "OK", "application/json",
                              JsonFromWireHardResponse(response));
  }

  if (request.target == "/consensus") {
    instruments_->requests_consensus.Inc();
    StatusOr<WireConsensusRequest> wire = ConsensusRequestFromJson(*document);
    if (!wire.ok()) {
      return RenderHttpResponse(
          400, "Bad Request", "application/json",
          "{\"status\":\"INVALID_ARGUMENT\",\"message\":" +
              JsonQuote(wire.status().message()) + "}");
    }
    WireConsensusResponse response;
    response.id = wire->id;
    serve::RequestControl control;
    control.deadline_ns = wire->deadline_ns;
    StatusOr<serve::ConsensusAnswer> answer =
        server_->ConsensusTopK(wire->model, wire->top_k, control);
    if (answer.ok()) {
      response.ranking = std::move(answer->ranking);
      response.mean_footrule = answer->mean_footrule;
      response.footrule_std_error = answer->footrule_std_error;
      response.mean_kendall = answer->mean_kendall;
      response.kendall_std_error = answer->kendall_std_error;
      response.n_samples = answer->n_samples;
    } else {
      response.status = answer.status();
    }
    return RenderHttpResponse(200, "OK", "application/json",
                              JsonFromWireConsensusResponse(response));
  }

  StatusOr<WireRequest> wire = WireRequestFromJson(*document);
  if (!wire.ok()) {
    return RenderHttpResponse(
        400, "Bad Request", "application/json",
        "{\"status\":\"INVALID_ARGUMENT\",\"message\":" +
            JsonQuote(wire.status().message()) + "}");
  }
  const WireResponse response =
      WireResponse::From(wire->id, server_->Evaluate(wire->ToRequest()));
  if (retain_idem != nullptr) {
    *retain_idem = response.status.ok() || response.approximate;
  }
  return RenderHttpResponse(200, "OK", "application/json",
                            JsonFromWireResponse(response));
}

}  // namespace ppref::net
