#include "ppref/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "ppref/net/codec.h"

namespace ppref::net {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

/// Waits for the fd to become readable/writable within the timeout.
Status PollFor(int fd, short events, std::uint64_t timeout_ms,
               const char* what) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  const int timeout =
      timeout_ms == 0 ? -1 : static_cast<int>(timeout_ms);
  while (true) {
    const int rc = poll(&p, 1, timeout);
    if (rc > 0) return Status::Ok();
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(what) + ": io timeout");
    }
    if (errno != EINTR) return Errno("poll");
  }
}

int ConnectTcp(const std::string& host, int port, Status* status) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &address.sin_addr) != 1) {
    *status = Status::InvalidArgument("bad host " + host +
                                      " (numeric IPv4 required)");
    return -1;
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *status = Errno("socket");
    return -1;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    *status = Errno("connect");
    close(fd);
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *status = Status::Ok();
  return fd;
}

}  // namespace

Client::Client(int fd, Options options)
    : fd_(fd), options_(options), assembler_(options.max_frame_body) {}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      options_(other.options_),
      assembler_(std::move(other.assembler_)),
      ping_counter_(other.ping_counter_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = other.fd_;
    options_ = other.options_;
    assembler_ = std::move(other.assembler_);
    ping_counter_ = other.ping_counter_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

StatusOr<Client> Client::Connect(const std::string& host, int port,
                                 Options options) {
  Status status;
  const int fd = ConnectTcp(host, port, &status);
  if (fd < 0) return status;
  return Client(fd, options);
}

Client Client::FromFd(int fd, Options options) { return Client(fd, options); }

Status Client::WriteAll(std::string_view bytes) {
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    Status ready = PollFor(fd_, POLLOUT, options_.io_timeout_ms, "write");
    if (!ready.ok()) return ready;
    const ssize_t n = send(fd_, bytes.data() + offset, bytes.size() - offset,
                           MSG_NOSIGNAL);
    if (n > 0) {
      offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return Errno("send");
  }
  return Status::Ok();
}

StatusOr<Frame> Client::ReadFrame() {
  Frame frame;
  while (true) {
    if (assembler_.Next(&frame)) return frame;
    Status ready = PollFor(fd_, POLLIN, options_.io_timeout_ms, "read");
    if (!ready.ok()) return ready;
    char buffer[65536];
    const ssize_t n = recv(fd_, buffer, sizeof(buffer), 0);
    if (n > 0) {
      Status fed = assembler_.Feed(buffer, static_cast<std::size_t>(n));
      if (!fed.ok()) return fed;
      continue;
    }
    if (n == 0) return Status::Internal("connection closed by peer");
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Errno("recv");
  }
}

StatusOr<WireResponse> Client::Call(const WireRequest& request) {
  const std::string body = EncodeRequest(request);
  Status written = WriteAll(EncodeFrame(FrameType::kRequest, body));
  if (!written.ok()) return written;
  while (true) {
    StatusOr<Frame> frame = ReadFrame();
    if (!frame.ok()) return frame.status();
    if (frame->type == FrameType::kPong) continue;
    if (frame->type != FrameType::kResponse) {
      return Status::Internal("unexpected frame type from server");
    }
    StatusOr<WireResponse> response = DecodeResponse(frame->body);
    if (!response.ok()) return response.status();
    if (response->id != request.id) {
      return Status::Internal("response id mismatch");
    }
    return response;
  }
}

StatusOr<WireSweepResponse> Client::CallSweep(const WireSweepRequest& request) {
  const std::string body = EncodeSweepRequest(request);
  Status written = WriteAll(EncodeFrame(FrameType::kSweepRequest, body));
  if (!written.ok()) return written;
  while (true) {
    StatusOr<Frame> frame = ReadFrame();
    if (!frame.ok()) return frame.status();
    if (frame->type == FrameType::kPong) continue;
    if (frame->type != FrameType::kSweepResponse) {
      return Status::Internal("unexpected frame type from server");
    }
    StatusOr<WireSweepResponse> response = DecodeSweepResponse(frame->body);
    if (!response.ok()) return response.status();
    if (response->id != request.id) {
      return Status::Internal("response id mismatch");
    }
    return response;
  }
}

Status Client::Ping() {
  char payload[8];
  const std::uint64_t token = ++ping_counter_;
  for (int i = 0; i < 8; ++i) {
    payload[i] = static_cast<char>((token >> (8 * i)) & 0xff);
  }
  Status written = WriteAll(
      EncodeFrame(FrameType::kPing, std::string_view(payload, sizeof(payload))));
  if (!written.ok()) return written;
  StatusOr<Frame> frame = ReadFrame();
  if (!frame.ok()) return frame.status();
  if (frame->type != FrameType::kPong ||
      frame->body != std::string_view(payload, sizeof(payload))) {
    return Status::Internal("bad pong");
  }
  return Status::Ok();
}

StatusOr<HttpResult> HttpFetch(const std::string& host, int port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body,
                               std::uint64_t io_timeout_ms) {
  Status status;
  const int fd = ConnectTcp(host, port, &status);
  if (fd < 0) return status;

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + host + "\r\n";
  request += "Connection: close\r\n";
  if (!body.empty()) {
    request += "Content-Type: application/json\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;

  std::size_t offset = 0;
  while (offset < request.size()) {
    Status ready = PollFor(fd, POLLOUT, io_timeout_ms, "write");
    if (!ready.ok()) {
      close(fd);
      return ready;
    }
    const ssize_t n = send(fd, request.data() + offset,
                           request.size() - offset, MSG_NOSIGNAL);
    if (n > 0) {
      offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    close(fd);
    return Errno("send");
  }

  std::string raw;
  while (true) {
    Status ready = PollFor(fd, POLLIN, io_timeout_ms, "read");
    if (!ready.ok()) {
      close(fd);
      return ready;
    }
    char buffer[65536];
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      raw.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;  // daemon closed: response complete
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    close(fd);
    return Errno("recv");
  }
  close(fd);

  // "HTTP/1.1 NNN Reason\r\n…headers…\r\n\r\nbody"
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    return Status::Internal("malformed HTTP response");
  }
  const std::size_t space = raw.find(' ');
  if (space == std::string::npos || space + 4 > line_end) {
    return Status::Internal("malformed HTTP status line");
  }
  HttpResult result;
  result.status_code = 0;
  for (std::size_t i = space + 1; i < space + 4; ++i) {
    if (raw[i] < '0' || raw[i] > '9') {
      return Status::Internal("malformed HTTP status code");
    }
    result.status_code = result.status_code * 10 + (raw[i] - '0');
  }
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Internal("truncated HTTP response");
  }
  result.body = raw.substr(header_end + 4);
  return result;
}

}  // namespace ppref::net
