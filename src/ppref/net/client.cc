#include "ppref/net/client.h"

#include <unistd.h>

#include "ppref/net/codec.h"
#include "ppref/net/internal/io.h"

namespace ppref::net {

namespace internal_io = ::ppref::net::internal;

Client::Client(int fd, Options options)
    : fd_(fd), options_(options), assembler_(options.max_frame_body) {}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      options_(other.options_),
      assembler_(std::move(other.assembler_)),
      ping_counter_(other.ping_counter_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = other.fd_;
    options_ = other.options_;
    assembler_ = std::move(other.assembler_);
    ping_counter_ = other.ping_counter_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

StatusOr<Client> Client::Connect(const std::string& host, int port,
                                 Options options) {
  StatusOr<int> fd = internal_io::ConnectTcp(
      host, port, internal_io::DeadlineAfterMs(options.total_deadline_ms));
  if (!fd.ok()) return fd.status();
  return Client(*fd, options);
}

Client Client::FromFd(int fd, Options options) { return Client(fd, options); }

Status Client::WriteAll(std::string_view bytes, std::uint64_t deadline_ns) {
  return internal_io::WriteFull(fd_, bytes, options_.io_timeout_ms,
                                deadline_ns);
}

StatusOr<Frame> Client::ReadFrame(std::uint64_t deadline_ns) {
  Frame frame;
  while (true) {
    if (assembler_.Next(&frame)) return frame;
    char buffer[65536];
    StatusOr<std::size_t> n = internal_io::ReadSome(
        fd_, buffer, sizeof(buffer), options_.io_timeout_ms, deadline_ns);
    if (!n.ok()) return n.status();
    if (*n == 0) return Status::Internal("connection closed by peer");
    Status fed = assembler_.Feed(buffer, *n);
    if (!fed.ok()) return fed;
  }
}

StatusOr<WireResponse> Client::Call(const WireRequest& request) {
  const std::uint64_t deadline =
      internal_io::DeadlineAfterMs(options_.total_deadline_ms);
  const std::string body = EncodeRequest(request);
  Status written = WriteAll(EncodeFrame(FrameType::kRequest, body), deadline);
  if (!written.ok()) return written;
  while (true) {
    StatusOr<Frame> frame = ReadFrame(deadline);
    if (!frame.ok()) return frame.status();
    if (frame->type == FrameType::kPong) continue;
    if (frame->type != FrameType::kResponse) {
      return Status::Internal("unexpected frame type from server");
    }
    StatusOr<WireResponse> response = DecodeResponse(frame->body);
    if (!response.ok()) return response.status();
    if (response->id != request.id) {
      return Status::Internal("response id mismatch");
    }
    return response;
  }
}

StatusOr<WireSweepResponse> Client::CallSweep(const WireSweepRequest& request) {
  const std::uint64_t deadline =
      internal_io::DeadlineAfterMs(options_.total_deadline_ms);
  const std::string body = EncodeSweepRequest(request);
  Status written =
      WriteAll(EncodeFrame(FrameType::kSweepRequest, body), deadline);
  if (!written.ok()) return written;
  while (true) {
    StatusOr<Frame> frame = ReadFrame(deadline);
    if (!frame.ok()) return frame.status();
    if (frame->type == FrameType::kPong) continue;
    if (frame->type != FrameType::kSweepResponse) {
      return Status::Internal("unexpected frame type from server");
    }
    StatusOr<WireSweepResponse> response = DecodeSweepResponse(frame->body);
    if (!response.ok()) return response.status();
    if (response->id != request.id) {
      return Status::Internal("response id mismatch");
    }
    return response;
  }
}

StatusOr<WireHardResponse> Client::CallHard(const WireHardRequest& request) {
  const std::uint64_t deadline =
      internal_io::DeadlineAfterMs(options_.total_deadline_ms);
  const std::string body = EncodeHardRequest(request);
  Status written =
      WriteAll(EncodeFrame(FrameType::kHardRequest, body), deadline);
  if (!written.ok()) return written;
  while (true) {
    StatusOr<Frame> frame = ReadFrame(deadline);
    if (!frame.ok()) return frame.status();
    if (frame->type == FrameType::kPong) continue;
    if (frame->type != FrameType::kHardResponse) {
      return Status::Internal("unexpected frame type from server");
    }
    StatusOr<WireHardResponse> response = DecodeHardResponse(frame->body);
    if (!response.ok()) return response.status();
    if (response->id != request.id) {
      return Status::Internal("response id mismatch");
    }
    return response;
  }
}

StatusOr<WireConsensusResponse> Client::CallConsensus(
    const WireConsensusRequest& request) {
  const std::uint64_t deadline =
      internal_io::DeadlineAfterMs(options_.total_deadline_ms);
  const std::string body = EncodeConsensusRequest(request);
  Status written =
      WriteAll(EncodeFrame(FrameType::kConsensusRequest, body), deadline);
  if (!written.ok()) return written;
  while (true) {
    StatusOr<Frame> frame = ReadFrame(deadline);
    if (!frame.ok()) return frame.status();
    if (frame->type == FrameType::kPong) continue;
    if (frame->type != FrameType::kConsensusResponse) {
      return Status::Internal("unexpected frame type from server");
    }
    StatusOr<WireConsensusResponse> response =
        DecodeConsensusResponse(frame->body);
    if (!response.ok()) return response.status();
    if (response->id != request.id) {
      return Status::Internal("response id mismatch");
    }
    return response;
  }
}

Status Client::Ping() {
  const std::uint64_t deadline =
      internal_io::DeadlineAfterMs(options_.total_deadline_ms);
  char payload[8];
  const std::uint64_t token = ++ping_counter_;
  for (int i = 0; i < 8; ++i) {
    payload[i] = static_cast<char>((token >> (8 * i)) & 0xff);
  }
  Status written =
      WriteAll(EncodeFrame(FrameType::kPing,
                           std::string_view(payload, sizeof(payload))),
               deadline);
  if (!written.ok()) return written;
  StatusOr<Frame> frame = ReadFrame(deadline);
  if (!frame.ok()) return frame.status();
  if (frame->type != FrameType::kPong ||
      frame->body != std::string_view(payload, sizeof(payload))) {
    return Status::Internal("bad pong");
  }
  return Status::Ok();
}

StatusOr<HttpResult> HttpFetch(const std::string& host, int port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body,
                               std::uint64_t io_timeout_ms,
                               std::uint64_t total_deadline_ms,
                               const std::string& extra_headers) {
  const std::uint64_t deadline =
      internal_io::DeadlineAfterMs(total_deadline_ms);
  StatusOr<int> connected = internal_io::ConnectTcp(host, port, deadline);
  if (!connected.ok()) return connected.status();
  const int fd = *connected;

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: " + host + "\r\n";
  request += "Connection: close\r\n";
  request += extra_headers;
  if (!body.empty()) {
    request += "Content-Type: application/json\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n";
  request += body;

  Status written =
      internal_io::WriteFull(fd, request, io_timeout_ms, deadline);
  if (!written.ok()) {
    close(fd);
    return written;
  }

  std::string raw;
  while (true) {
    char buffer[65536];
    StatusOr<std::size_t> n = internal_io::ReadSome(
        fd, buffer, sizeof(buffer), io_timeout_ms, deadline);
    if (!n.ok()) {
      close(fd);
      return n.status();
    }
    if (*n == 0) break;  // daemon closed: response complete
    raw.append(buffer, *n);
  }
  close(fd);

  // "HTTP/1.1 NNN Reason\r\n…headers…\r\n\r\nbody"
  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    return Status::Internal("malformed HTTP response");
  }
  const std::size_t space = raw.find(' ');
  if (space == std::string::npos || space + 4 > line_end) {
    return Status::Internal("malformed HTTP status line");
  }
  HttpResult result;
  result.status_code = 0;
  for (std::size_t i = space + 1; i < space + 4; ++i) {
    if (raw[i] < '0' || raw[i] > '9') {
      return Status::Internal("malformed HTTP status code");
    }
    result.status_code = result.status_code * 10 + (raw[i] - '0');
  }
  const std::size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Internal("truncated HTTP response");
  }
  result.body = raw.substr(header_end + 4);
  return result;
}

}  // namespace ppref::net
