#include "ppref/net/internal/io.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "ppref/common/clock.h"

namespace ppref::net::internal {

namespace {

/// Milliseconds until `deadline_ns`, clamped into poll()'s int argument.
/// Returns -1 for "no bound". A past deadline yields 0 so poll still makes
/// one non-blocking readiness check before the caller reports expiry.
int PollTimeoutMs(std::uint64_t step_timeout_ms, std::uint64_t deadline_ns) {
  std::uint64_t bound_ms = step_timeout_ms;  // 0 = unbounded
  if (deadline_ns != 0) {
    const std::uint64_t now = MonotonicNowNs();
    const std::uint64_t left_ms =
        now >= deadline_ns ? 0 : (deadline_ns - now + 999'999) / 1'000'000;
    bound_ms = bound_ms == 0 ? left_ms : std::min(bound_ms, left_ms);
    if (bound_ms == 0) return 0;  // deadline already passed
  }
  if (bound_ms == 0) return -1;
  const std::uint64_t cap = 1u << 30;  // keep well inside int range
  return static_cast<int>(std::min(bound_ms, cap));
}

bool DeadlinePassed(std::uint64_t deadline_ns) {
  return deadline_ns != 0 && MonotonicNowNs() >= deadline_ns;
}

}  // namespace

void IgnoreSigpipe() { signal(SIGPIPE, SIG_IGN); }

Status ErrnoStatus(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

std::uint64_t DeadlineAfterMs(std::uint64_t ms) {
  return ms == 0 ? 0 : MonotonicNowNs() + ms * 1'000'000;
}

Status PollFor(int fd, short events, std::uint64_t step_timeout_ms,
               std::uint64_t deadline_ns, const char* what) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  while (true) {
    if (DeadlinePassed(deadline_ns)) {
      return Status::DeadlineExceeded(std::string(what) +
                                      ": deadline exceeded");
    }
    const int rc = poll(&p, 1, PollTimeoutMs(step_timeout_ms, deadline_ns));
    if (rc > 0) return Status::Ok();
    if (rc == 0) {
      if (DeadlinePassed(deadline_ns)) {
        return Status::DeadlineExceeded(std::string(what) +
                                        ": deadline exceeded");
      }
      return Status::DeadlineExceeded(std::string(what) + ": io timeout");
    }
    if (errno != EINTR) return ErrnoStatus("poll");
  }
}

Status WriteFull(int fd, std::string_view bytes, std::uint64_t step_timeout_ms,
                 std::uint64_t deadline_ns, const char* what) {
  std::size_t offset = 0;
  while (offset < bytes.size()) {
    Status ready = PollFor(fd, POLLOUT, step_timeout_ms, deadline_ns, what);
    if (!ready.ok()) return ready;
    const ssize_t n = send(fd, bytes.data() + offset, bytes.size() - offset,
                           MSG_NOSIGNAL);
    if (n > 0) {
      offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return ErrnoStatus(what);
  }
  return Status::Ok();
}

StatusOr<std::size_t> ReadSome(int fd, void* out, std::size_t capacity,
                               std::uint64_t step_timeout_ms,
                               std::uint64_t deadline_ns, const char* what) {
  while (true) {
    Status ready = PollFor(fd, POLLIN, step_timeout_ms, deadline_ns, what);
    if (!ready.ok()) return ready;
    const ssize_t n = recv(fd, out, capacity, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ErrnoStatus(what);
  }
}

Status ReadFull(int fd, void* out, std::size_t size,
                std::uint64_t step_timeout_ms, std::uint64_t deadline_ns,
                const char* what) {
  std::size_t offset = 0;
  char* bytes = static_cast<char*>(out);
  while (offset < size) {
    StatusOr<std::size_t> n = ReadSome(fd, bytes + offset, size - offset,
                                       step_timeout_ms, deadline_ns, what);
    if (!n.ok()) return n.status();
    if (*n == 0) return Status::Internal("connection closed by peer");
    offset += *n;
  }
  return Status::Ok();
}

StatusOr<int> ConnectTcp(const std::string& host, int port,
                         std::uint64_t deadline_ns) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &address.sin_addr) != 1) {
    return Status::InvalidArgument("bad host " + host +
                                   " (numeric IPv4 required)");
  }
  const int fd =
      socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd < 0) return ErrnoStatus("socket");
  // Non-blocking connect + poll: an EINTR during the wait resumes the same
  // in-progress connect instead of failing a restarted blocking connect
  // with EALREADY, and the deadline bounds a silently dropped SYN.
  if (connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    if (errno != EINPROGRESS && errno != EINTR) {
      Status status = ErrnoStatus("connect");
      close(fd);
      return status;
    }
    Status ready = PollFor(fd, POLLOUT, 0, deadline_ns, "connect");
    if (!ready.ok()) {
      close(fd);
      return ready;
    }
    int error = 0;
    socklen_t len = sizeof(error);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &error, &len) != 0 ||
        error != 0) {
      if (error != 0) errno = error;
      Status status = ErrnoStatus("connect");
      close(fd);
      return status;
    }
  }
  const int flags = fcntl(fd, F_GETFL);
  if (flags < 0 || fcntl(fd, F_SETFL, flags & ~O_NONBLOCK) != 0) {
    Status status = ErrnoStatus("fcntl");
    close(fd);
    return status;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace ppref::net::internal
