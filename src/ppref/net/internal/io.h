/// \file io.h
/// \brief `ppref::net::internal` — the shared blocking-socket IO helpers.
///
/// Every raw `read`/`write`/`connect` call site in the blocking half of the
/// network stack (`net::Client`, `HttpFetch`, the supervisor's health
/// probes) funnels through these helpers, which pin down the three
/// contracts that used to be re-implemented (and re-missed) per call site:
///
///  1. **EINTR and short transfers never surface.** Loops retry interrupted
///     syscalls and partial reads/writes until the transfer completes or a
///     bound fires.
///  2. **`SIGPIPE` cannot kill the process.** All writes go through
///     `send(…, MSG_NOSIGNAL)`; a dead peer is a returned `Status`, never a
///     signal. Tools additionally call `IgnoreSigpipe()` at startup so any
///     stray `write(2)` (stdout pipes, third-party code) is covered too.
///  3. **Two-level timeouts.** Each helper takes a per-step poll bound
///     (`step_timeout_ms`, 0 = unbounded) *and* an absolute monotonic
///     deadline (`deadline_ns` on the `MonotonicNowNs` clock, 0 = none).
///     The step bound catches a silent peer; the deadline catches a
///     dribbling one — a peer that trickles one byte per poll can extend a
///     step-bounded loop forever, which is exactly the stalled-daemon hang
///     the resilience layer must convert into `kDeadlineExceeded`.
///
/// The epoll planes (daemon, chaos proxy) keep their own non-blocking
/// loops — their EINTR/EAGAIN handling is part of the event-loop state
/// machine — but share the same MSG_NOSIGNAL discipline.

#ifndef PPREF_NET_INTERNAL_IO_H_
#define PPREF_NET_INTERNAL_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "ppref/common/status.h"

namespace ppref::net::internal {

/// Process-wide `signal(SIGPIPE, SIG_IGN)`. Idempotent; call it from any
/// main() that writes to sockets or pipes.
void IgnoreSigpipe();

/// `Status::Internal` carrying `what: strerror(errno)`.
Status ErrnoStatus(const char* what);

/// `MonotonicNowNs() + ms * 1e6`, or 0 (no deadline) when `ms` is 0.
std::uint64_t DeadlineAfterMs(std::uint64_t ms);

/// Waits until `fd` is ready for `events` (POLLIN / POLLOUT). Retries
/// EINTR. Returns kDeadlineExceeded when the per-step bound or the absolute
/// deadline fires first.
Status PollFor(int fd, short events, std::uint64_t step_timeout_ms,
               std::uint64_t deadline_ns, const char* what);

/// Writes all of `bytes` (send + MSG_NOSIGNAL), polling for writability
/// between short writes. A closed peer surfaces as a Status, never SIGPIPE.
Status WriteFull(int fd, std::string_view bytes,
                 std::uint64_t step_timeout_ms, std::uint64_t deadline_ns,
                 const char* what = "write");

/// Reads exactly `size` bytes into `out`. Peer EOF before `size` bytes is
/// kInternal ("connection closed by peer").
Status ReadFull(int fd, void* out, std::size_t size,
                std::uint64_t step_timeout_ms, std::uint64_t deadline_ns,
                const char* what = "read");

/// Reads up to `capacity` bytes (at least one poll-bounded attempt).
/// Returns the byte count; 0 means the peer closed cleanly.
StatusOr<std::size_t> ReadSome(int fd, void* out, std::size_t capacity,
                               std::uint64_t step_timeout_ms,
                               std::uint64_t deadline_ns,
                               const char* what = "read");

/// Connects a TCP socket to a numeric IPv4 `host` (or "localhost"), with
/// TCP_NODELAY set, bounded by `deadline_ns` (0 = the kernel's own connect
/// timeout). EINTR-safe: the connect is non-blocking + poll + SO_ERROR, so
/// an interrupted wait resumes instead of failing with EALREADY. On success
/// the returned fd is in blocking mode.
StatusOr<int> ConnectTcp(const std::string& host, int port,
                         std::uint64_t deadline_ns);

}  // namespace ppref::net::internal

#endif  // PPREF_NET_INTERNAL_IO_H_
