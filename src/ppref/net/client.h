/// \file client.h
/// \brief `ppref::net` — a small blocking client for the daemon.
///
/// The client is deliberately synchronous: one socket, one outstanding
/// request, `poll(2)`-bounded reads and writes. That is what the bench
/// harness forks by the dozen and what the e2e test replays traces through;
/// anything fancier (pipelining, multiplexing) belongs in a caller that
/// owns several clients.
///
/// `HttpFetch` is the matching one-shot HTTP helper (the daemon closes the
/// connection after each response, so one-shot is the protocol).

#ifndef PPREF_NET_CLIENT_H_
#define PPREF_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "ppref/common/status.h"
#include "ppref/net/frame.h"
#include "ppref/net/wire.h"

namespace ppref::net {

struct ClientOptions {
  /// Per-poll bound on any single read/write; 0 = block forever.
  std::uint64_t io_timeout_ms = 30000;
  /// Frame body cap for responses (mirrors the daemon's request cap).
  std::size_t max_frame_body = kDefaultMaxBodyBytes;
};

/// Blocking binary-protocol client. Movable, not copyable; closes its fd on
/// destruction. Not thread-safe — one thread per client.
class Client {
 public:
  using Options = ClientOptions;

  /// Connects over TCP. `host` must be a numeric IPv4 address ("127.0.0.1")
  /// or "localhost".
  static StatusOr<Client> Connect(const std::string& host, int port,
                                  Options options = {});

  /// Wraps an already-connected stream socket (e.g. one end of a
  /// socketpair); takes ownership of the fd.
  static Client FromFd(int fd, Options options = {});

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request and blocks for its response. Interleaved pongs are
  /// skipped; a response whose id differs from `request.id` is an error
  /// (this client never has more than one request outstanding). IO errors,
  /// timeouts, and peer close all surface as non-ok Status; the remote
  /// request status rides inside the returned WireResponse untouched.
  StatusOr<WireResponse> Call(const WireRequest& request);

  /// Sends one parameter-sweep request and blocks for its answer, under the
  /// same single-outstanding-request discipline as Call.
  StatusOr<WireSweepResponse> CallSweep(const WireSweepRequest& request);

  /// Round-trips a ping frame.
  Status Ping();

  int fd() const { return fd_; }

 private:
  Client(int fd, Options options);

  Status WriteAll(std::string_view bytes);
  StatusOr<Frame> ReadFrame();

  int fd_ = -1;
  Options options_;
  FrameAssembler assembler_;
  std::uint64_t ping_counter_ = 0;
};

/// One HTTP exchange against the daemon.
struct HttpResult {
  int status_code = 0;
  std::string body;
};

/// Connects, sends one `Connection: close` HTTP/1.1 request, reads to EOF,
/// returns the parsed status code and body. `body` non-empty implies a
/// Content-Length header and `application/json` content type.
StatusOr<HttpResult> HttpFetch(const std::string& host, int port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body = "",
                               std::uint64_t io_timeout_ms = 30000);

}  // namespace ppref::net

#endif  // PPREF_NET_CLIENT_H_
