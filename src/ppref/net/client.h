/// \file client.h
/// \brief `ppref::net` — a small blocking client for the daemon.
///
/// The client is deliberately synchronous: one socket, one outstanding
/// request, `poll(2)`-bounded reads and writes. That is what the bench
/// harness forks by the dozen and what the e2e test replays traces through;
/// anything fancier (pipelining, multiplexing) belongs in a caller that
/// owns several clients.
///
/// `HttpFetch` is the matching one-shot HTTP helper (the daemon closes the
/// connection after each response, so one-shot is the protocol).

#ifndef PPREF_NET_CLIENT_H_
#define PPREF_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "ppref/common/status.h"
#include "ppref/net/frame.h"
#include "ppref/net/wire.h"

namespace ppref::net {

struct ClientOptions {
  /// Per-poll bound on any single read/write; 0 = block forever.
  std::uint64_t io_timeout_ms = 30000;
  /// Total wall-clock budget for one operation (Connect, Call, CallSweep,
  /// Ping), measured from its entry; 0 = no total bound. The per-poll
  /// `io_timeout_ms` catches a silent peer, but a peer that dribbles one
  /// byte per poll resets that clock forever — this budget converts such a
  /// stall into `kDeadlineExceeded`. The resilient client sets it to the
  /// per-attempt slice of the request deadline.
  std::uint64_t total_deadline_ms = 0;
  /// Frame body cap for responses (mirrors the daemon's request cap).
  std::size_t max_frame_body = kDefaultMaxBodyBytes;
};

/// Blocking binary-protocol client. Movable, not copyable; closes its fd on
/// destruction. Not thread-safe — one thread per client.
class Client {
 public:
  using Options = ClientOptions;

  /// Connects over TCP. `host` must be a numeric IPv4 address ("127.0.0.1")
  /// or "localhost".
  static StatusOr<Client> Connect(const std::string& host, int port,
                                  Options options = {});

  /// Wraps an already-connected stream socket (e.g. one end of a
  /// socketpair); takes ownership of the fd.
  static Client FromFd(int fd, Options options = {});

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Sends one request and blocks for its response. Interleaved pongs are
  /// skipped; a response whose id differs from `request.id` is an error
  /// (this client never has more than one request outstanding). IO errors,
  /// timeouts, and peer close all surface as non-ok Status; the remote
  /// request status rides inside the returned WireResponse untouched.
  StatusOr<WireResponse> Call(const WireRequest& request);

  /// Sends one parameter-sweep request and blocks for its answer, under the
  /// same single-outstanding-request discipline as Call.
  StatusOr<WireSweepResponse> CallSweep(const WireSweepRequest& request);

  /// Sends one hard-tier adaptive-estimate request and blocks for its
  /// answer, under the same discipline as Call.
  StatusOr<WireHardResponse> CallHard(const WireHardRequest& request);

  /// Sends one consensus top-k request and blocks for its answer, under the
  /// same discipline as Call.
  StatusOr<WireConsensusResponse> CallConsensus(
      const WireConsensusRequest& request);

  /// Round-trips a ping frame.
  Status Ping();

  int fd() const { return fd_; }

  /// Adjusts the per-operation total budget for subsequent operations (the
  /// resilient client re-budgets the remaining attempt time after connect).
  void set_total_deadline_ms(std::uint64_t ms) {
    options_.total_deadline_ms = ms;
  }

 private:
  Client(int fd, Options options);

  Status WriteAll(std::string_view bytes, std::uint64_t deadline_ns);
  StatusOr<Frame> ReadFrame(std::uint64_t deadline_ns);

  int fd_ = -1;
  Options options_;
  FrameAssembler assembler_;
  std::uint64_t ping_counter_ = 0;
};

/// One HTTP exchange against the daemon.
struct HttpResult {
  int status_code = 0;
  std::string body;
};

/// Connects, sends one `Connection: close` HTTP/1.1 request, reads to EOF,
/// returns the parsed status code and body. `body` non-empty implies a
/// Content-Length header and `application/json` content type.
/// `total_deadline_ms` (0 = none) bounds the whole exchange including the
/// connect, so a blackholed daemon surfaces as `kDeadlineExceeded` instead
/// of a per-poll-refreshed hang. `extra_headers`, when non-empty, is spliced
/// verbatim into the header block and must be complete CRLF-terminated
/// header lines (e.g. "x-ppref-idempotency-key: 7\r\n").
StatusOr<HttpResult> HttpFetch(const std::string& host, int port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body = "",
                               std::uint64_t io_timeout_ms = 30000,
                               std::uint64_t total_deadline_ms = 0,
                               const std::string& extra_headers = "");

}  // namespace ppref::net

#endif  // PPREF_NET_CLIENT_H_
