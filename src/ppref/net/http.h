/// \file http.h
/// \brief `ppref::net` — the minimal HTTP/1.1 sliver the daemon speaks.
///
/// The binary protocol is the data plane; HTTP exists for humans and
/// scrapers: `curl` a JSON query, point Prometheus at `GET /metrics`, wire a
/// load balancer to `GET /healthz`. Accordingly the implementation is
/// deliberately small: request line + headers + `Content-Length` body (no
/// chunked encoding, no keep-alive — every response carries
/// `Connection: close` and the daemon closes after writing). A connection is
/// classified as HTTP exactly when its first four bytes are not the binary
/// frame magic, so one port serves both planes.
///
/// Routes (see daemon.cc):
///   GET  /healthz        liveness — "ok", or 503 once draining
///   GET  /metrics        Prometheus text 0.0.4 (`serve::Server::ScrapeMetrics`)
///   GET  /metrics.json   the same instruments as JSON
///   POST /query          one JSON query (schema below) → JSON answer
///   POST /sweep          one query shape + a dispersion grid → JSON answers
///   POST /hard           one query shape + a precision target → adaptive
///                        Monte-Carlo estimate with its standard error
///   POST /consensus      a model + "top_k" → consensus ranking prefix
///
/// ## /query JSON schema
/// ```json
/// {
///   "id": 7,                       // optional, echoed
///   "kind": "pattern_prob",        // or "top_matching"
///   "deadline_us": 5000,           // optional, 0 = server default
///   "model": {
///     "reference": [0, 1, 2],      // optional — identity over m items
///     "m": 3,                      // required iff "reference" absent
///     "insertion": {"phi": 0.5},   // or {"phis":[…]} | {"uniform":true}
///                                  // or {"rows": [[1.0], [0.3, 0.7], …]}
///     "labels": [[0], [1], [0, 2]] // per-item label sets, length m
///   },
///   "pattern": {"nodes": [0, 1], "edges": [[0, 1]]}
/// }
/// ```
/// Answer: `{"id":…,"status":"OK","message":"","probability":…,
/// "approximate":false,"std_error":…,"retry_after_ns":…,"top_matching":[…]}`
/// with doubles printed `%.17g`, so `strtod` of the text reproduces the
/// exact bits the binary protocol carries.
///
/// ## /sweep JSON schema
/// The /query schema (kind absent or "pattern_prob") plus one extra key:
/// ```json
/// "params": [0.25, 0.5, [0.3, 0.9, 0.7]]
/// ```
/// Each entry is a single dispersion φ ∈ (0, 1] (Mallows) or an array of m
/// dispersions (generalized Mallows). The model's own insertion function
/// seeds the compiled circuit; every answer is for the re-bound entry.
/// Answer: `{"id":…,"status":"OK","message":"","probabilities":[…]}` in
/// request order, `%.17g`.
///
/// ## /hard JSON schema
/// The /query schema (kind absent or "pattern_prob") plus one optional key:
/// ```json
/// "target": 0.01
/// ```
/// — the requested 95%-CI half-width in [0, 1]; absent or 0 = the server's
/// default target. Answer: `{"id":…,"status":"OK","message":"",
/// "estimate":…,"std_error":…,"n_samples":…,"target_met":…,
/// "deadline_limited":…}`.
///
/// ## /consensus JSON schema
/// The /query "model" (plus optional id/deadline_us; "pattern" absent or
/// empty) and one required key:
/// ```json
/// "top_k": 3
/// ```
/// Answer: `{"id":…,"status":"OK","message":"","ranking":[…],
/// "mean_footrule":…,"footrule_std_error":…,"mean_kendall":…,
/// "kendall_std_error":…,"n_samples":…}`.

#ifndef PPREF_NET_HTTP_H_
#define PPREF_NET_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "ppref/common/status.h"
#include "ppref/net/json.h"
#include "ppref/net/wire.h"

namespace ppref::net {

/// Default cap on one HTTP request (request line + headers + body).
inline constexpr std::size_t kDefaultMaxHttpBytes = 1u << 20;

/// One parsed request.
struct HttpRequest {
  std::string method;
  std::string target;
  /// Header names lowercased; values trimmed of surrounding whitespace.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup (names are stored lowercased); nullptr
  /// when absent.
  const std::string* Header(std::string_view lowercase_name) const;
};

/// Incremental HTTP/1.1 request reader: feed stream bytes, poll for the
/// complete request. One per connection; not thread-safe.
class HttpAccumulator {
 public:
  explicit HttpAccumulator(std::size_t max_bytes = kDefaultMaxHttpBytes)
      : max_bytes_(max_bytes) {}

  enum class State : std::uint8_t { kNeedMore, kComplete, kError };

  /// Appends bytes and reparses. kError is sticky; `status()` explains.
  State Feed(std::string_view data);

  State state() const { return state_; }
  const Status& status() const { return status_; }

  /// The parsed request; valid once state() == kComplete.
  const HttpRequest& request() const { return request_; }

  /// True once any byte has been fed (the daemon uses this to distinguish
  /// an idle connection from a mid-request one at deadline time).
  bool started() const { return !buffer_.empty(); }

 private:
  State Fail(std::string message);
  State ParseBuffer();

  std::size_t max_bytes_;
  std::string buffer_;
  State state_ = State::kNeedMore;
  Status status_;
  HttpRequest request_;
};

/// Renders a full response: status line, standard headers (Content-Type,
/// Content-Length, Connection: close), blank line, body.
std::string RenderHttpResponse(int status_code, std::string_view reason,
                               std::string_view content_type,
                               std::string_view body);

/// Maps a parsed /query JSON document onto an owned wire request. All the
/// binary codec's validation applies (same caps, same no-abort contract).
StatusOr<WireRequest> WireRequestFromJson(const JsonValue& root);

/// The /query response body for an answer (doubles as %.17g).
std::string JsonFromWireResponse(const WireResponse& response);

/// Maps a parsed /sweep JSON document onto an owned sweep request. The
/// /query rules apply to the shared keys; "params" must be a bounded array
/// of dispersions (number) or dispersion vectors (array of 1 or m numbers),
/// each in (0, 1].
StatusOr<WireSweepRequest> SweepRequestFromJson(const JsonValue& root);

/// The /sweep response body for an answer (doubles as %.17g).
std::string JsonFromWireSweepResponse(const WireSweepResponse& response);

/// Maps a parsed /hard JSON document onto an owned hard request. The /query
/// rules apply to the shared keys; "target" must be a number in [0, 1].
StatusOr<WireHardRequest> HardRequestFromJson(const JsonValue& root);

/// The /hard response body for an answer (doubles as %.17g).
std::string JsonFromWireHardResponse(const WireHardResponse& response);

/// Maps a parsed /consensus JSON document onto an owned consensus request.
/// "pattern" may be absent (or empty); "top_k" must be a positive integer.
StatusOr<WireConsensusRequest> ConsensusRequestFromJson(const JsonValue& root);

/// The /consensus response body for an answer (doubles as %.17g).
std::string JsonFromWireConsensusResponse(const WireConsensusResponse& response);

}  // namespace ppref::net

#endif  // PPREF_NET_HTTP_H_
