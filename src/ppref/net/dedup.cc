#include "ppref/net/dedup.h"

#include <utility>

#include "ppref/obs/metrics.h"

namespace ppref::net {

IdempotencyTable::IdempotencyTable(Options options)
    : options_(options) {
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.registry != nullptr) {
    owner_counter_ = &options_.registry->GetCounter(
        "ppref_net_idem_owner_total",
        "Keyed requests executed as the owning (first) attempt");
    coalesced_counter_ = &options_.registry->GetCounter(
        "ppref_net_idem_coalesced_total",
        "Keyed requests coalesced onto an in-flight execution");
    replayed_counter_ = &options_.registry->GetCounter(
        "ppref_net_idem_replayed_total",
        "Keyed requests answered from retained response bytes");
    evicted_counter_ = &options_.registry->GetCounter(
        "ppref_net_idem_evicted_total",
        "Retained idempotency entries dropped by the capacity bound");
  }
}

IdempotencyTable::Claim IdempotencyTable::Begin(std::uint64_t key,
                                                std::uint64_t waiter_token) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = entries_.try_emplace(key);
  Claim claim;
  if (inserted) {
    claim.role = Role::kOwner;
    ++stats_.owner;
    if (owner_counter_ != nullptr) owner_counter_->Inc();
    return claim;
  }
  if (it->second.done) {
    claim.role = Role::kReplay;
    claim.replay_bytes = it->second.bytes;
    ++stats_.replayed;
    if (replayed_counter_ != nullptr) replayed_counter_->Inc();
    return claim;
  }
  it->second.waiters.push_back(waiter_token);
  claim.role = Role::kWaiter;
  ++stats_.coalesced;
  if (coalesced_counter_ != nullptr) coalesced_counter_->Inc();
  return claim;
}

std::vector<std::uint64_t> IdempotencyTable::Publish(std::uint64_t key,
                                                     std::string bytes,
                                                     bool retain) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.done) {
    // Publish without a live in-flight entry is an owner-contract violation;
    // tolerate it (nothing to deliver) rather than abort a server.
    return {};
  }
  std::vector<std::uint64_t> waiters = std::move(it->second.waiters);
  if (!retain) {
    entries_.erase(it);
    return waiters;
  }
  it->second.done = true;
  it->second.bytes = std::move(bytes);
  it->second.waiters.clear();
  retained_fifo_.push_back(key);
  ++retained_count_;
  while (retained_count_ > options_.capacity && !retained_fifo_.empty()) {
    const std::uint64_t victim = retained_fifo_.front();
    retained_fifo_.pop_front();
    auto victim_it = entries_.find(victim);
    if (victim_it == entries_.end() || !victim_it->second.done) continue;
    entries_.erase(victim_it);
    --retained_count_;
    ++stats_.evicted;
    if (evicted_counter_ != nullptr) evicted_counter_->Inc();
  }
  return waiters;
}

IdempotencyTable::Stats IdempotencyTable::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace ppref::net
