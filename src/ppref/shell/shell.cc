#include "ppref/shell/shell.h"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "ppref/common/check.h"
#include "ppref/db/csv.h"
#include "ppref/infer/labeled_rim.h"
#include "ppref/infer/labeling.h"
#include "ppref/ppd/analytics.h"
#include "ppref/ppd/approx.h"
#include "ppref/ppd/evaluator.h"
#include "ppref/ppd/explain.h"
#include "ppref/ppd/io.h"
#include "ppref/ppd/monte_carlo_evaluator.h"
#include "ppref/ppd/possible_worlds.h"
#include "ppref/ppd/reduction.h"
#include "ppref/ppd/splitting.h"
#include "ppref/ppd/ucq_evaluator.h"
#include "ppref/query/classify.h"
#include "ppref/query/parser.h"
#include "ppref/query/ucq.h"

namespace ppref::shell {
namespace {

/// Splits "cmd rest..." into the command word and the remainder.
std::pair<std::string, std::string> SplitCommand(const std::string& line) {
  std::size_t start = line.find_first_not_of(" \t");
  if (start == std::string::npos) return {"", ""};
  std::size_t end = line.find_first_of(" \t", start);
  if (end == std::string::npos) return {line.substr(start), ""};
  std::size_t rest = line.find_first_not_of(" \t", end);
  return {line.substr(start, end - start),
          rest == std::string::npos ? "" : line.substr(rest)};
}

/// Parses "a,b,c|l|r" into a preference signature.
db::PreferenceSignature ParsePSignatureSpec(const std::string& spec) {
  const std::size_t bar1 = spec.find('|');
  const std::size_t bar2 =
      bar1 == std::string::npos ? std::string::npos : spec.find('|', bar1 + 1);
  if (bar1 == std::string::npos || bar2 == std::string::npos) {
    throw ParseError("p-symbol spec must be 'attrs|lhs|rhs', got: " + spec);
  }
  std::vector<std::string> session_attrs;
  std::string current;
  for (char c : spec.substr(0, bar1)) {
    if (c == ',') {
      session_attrs.push_back(current);
      current.clear();
    } else if (c != ' ') {
      current += c;
    }
  }
  if (!current.empty()) session_attrs.push_back(current);
  return db::PreferenceSignature(db::RelationSignature(session_attrs),
                                 spec.substr(bar1 + 1, bar2 - bar1 - 1),
                                 spec.substr(bar2 + 1));
}

db::Tuple ParseRow(const std::string& text) {
  const auto rows = db::ParseCsv(text);
  if (rows.size() != 1) throw ParseError("expected one CSV row: " + text);
  return rows[0];
}

}  // namespace

Shell::Shell(std::ostream& out)
    : out_(out),
      ppd_(std::make_unique<ppd::RimPpd>(db::PreferenceSchema{})) {}

void Shell::Reset(ppd::RimPpd ppd) {
  ppd_ = std::make_unique<ppd::RimPpd>(std::move(ppd));
}

unsigned Shell::ExecuteScript(const std::string& script) {
  std::istringstream stream(script);
  std::string line;
  unsigned executed = 0;
  while (std::getline(stream, line)) {
    ++executed;
    if (!Execute(line)) break;
  }
  return executed;
}

bool Shell::Execute(const std::string& line) {
  if (loading_) {
    if (line == "end-load") {
      loading_ = false;
      try {
        Reset(ppd::ReadPpd(pending_load_));
        out_ << "loaded PPD\n";
      } catch (const std::exception& error) {
        out_ << "error: " << error.what() << "\n";
      }
      pending_load_.clear();
    } else {
      pending_load_ += line + "\n";
    }
    return true;
  }

  const auto [command, args] = SplitCommand(line);
  if (command.empty() || command[0] == '#') return true;
  try {
    if (command == "\\quit") return false;
    if (command == "\\help") {
      CommandHelp();
    } else if (command == "\\osymbol") {
      CommandOSymbol(args);
    } else if (command == "\\psymbol") {
      CommandPSymbol(args);
    } else if (command == "\\fact") {
      CommandFact(args);
    } else if (command == "\\mallows") {
      CommandMallows(args);
    } else if (command == "\\classify") {
      CommandClassify(args);
    } else if (command == "\\explain") {
      out_ << ppd::ExplainQuery(*ppd_,
                                query::ParseQuery(args, ppd_->schema()));
    } else if (command == "\\query") {
      CommandQuery(args);
    } else if (command == "\\answers") {
      CommandAnswers(args);
    } else if (command == "\\union") {
      CommandUnion(args);
    } else if (command == "\\approx") {
      CommandApprox(args);
    } else if (command == "\\sweep") {
      CommandSweep(args);
    } else if (command == "\\hard") {
      CommandHard(args);
    } else if (command == "\\consensus") {
      CommandConsensus(args);
    } else if (command == "\\sessions") {
      CommandSessions(args);
    } else if (command == "\\analytics") {
      std::istringstream stream(args);
      std::string symbol;
      stream >> symbol;
      out_ << "winner probabilities (mean over sessions):\n";
      for (const auto& stat : ppd::WinnerDistribution(
               ppd_->PInstance(symbol))) {
        out_ << "  " << stat.item.ToString() << "  " << stat.value << "  ("
             << stat.supporting_sessions << " sessions)\n";
      }
      out_ << "consensus (by mean expected position):";
      for (const auto& item :
           ppd::CrossSessionConsensus(ppd_->PInstance(symbol))) {
        out_ << " " << item.ToString();
      }
      out_ << "\n";
    } else if (command == "\\split") {
      const auto q = query::ParseQuery(args, ppd_->schema());
      out_ << "conf = " << ppd::EvaluateBooleanBySplitting(*ppd_, q)
           << " (exact via grounding into "
           << ppd::SplitIntoItemwise(*ppd_, q).size()
           << " itemwise disjuncts)\n";
    } else if (command == "\\save") {
      CommandSave();
    } else if (command == "\\load-inline") {
      loading_ = true;
      pending_load_.clear();
    } else if (command == "\\election") {
      Reset(ppd::ElectionPpd());
      out_ << "loaded the running example (Figures 1-2)\n";
    } else {
      out_ << "error: unknown command '" << command
           << "' (try \\help)\n";
    }
  } catch (const std::exception& error) {
    out_ << "error: " << error.what() << "\n";
  }
  return true;
}

void Shell::CommandHelp() {
  out_ << "commands:\n"
          "  \\osymbol Name a,b,c          declare an ordinary relation\n"
          "  \\psymbol Name a,b|l|r        declare a preference relation\n"
          "  \\fact Name <csv row>         insert a fact\n"
          "  \\mallows P phi | sess | ref  add a Mallows session\n"
          "  \\classify Q() :- ...         sessionwise/itemwise/complexity\n"
          "  \\explain Q() :- ...          show the evaluation plan\n"
          "  \\query Q() :- ...            Boolean confidence\n"
          "  \\answers Q(x) :- ...         ranked possible answers\n"
          "  \\union Q() :- .. UNION ..    UCQ confidence\n"
          "  \\approx eps delta Q() :- ..  Hoeffding-guaranteed estimate\n"
          "  \\sweep p1,p2,.. Q() :- ..    confidence at each dispersion phi,\n"
          "                               one cached circuit per session\n"
          "  \\hard target Q() :- ..       adaptive Monte-Carlo estimate to a\n"
          "                               CI half-width target (hard tier)\n"
          "  \\consensus P k               top-k consensus ranking per session\n"
          "                               (footrule-optimal, sampled worlds)\n"
          "  \\split Q() :- ...            exact non-itemwise eval by\n"
          "                               grounding join variables\n"
          "  \\analytics P                 winner probs + consensus order\n"
          "  \\sessions P                  list sessions of a p-symbol\n"
          "  \\save                        print the PPD in io.h format\n"
          "  \\load-inline ... end-load    replace the PPD from text\n"
          "  \\election                    load the paper's example\n"
          "  \\quit\n";
}

void Shell::CommandOSymbol(const std::string& args) {
  std::istringstream stream(args);
  std::string name, attrs;
  stream >> name >> attrs;
  std::vector<std::string> names;
  std::string current;
  for (char c : attrs) {
    if (c == ',') {
      names.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) names.push_back(current);
  db::PreferenceSchema schema = ppd_->schema();
  schema.AddOSymbol(name, db::RelationSignature(names));
  // Rebuild, carrying existing contents over.
  ppd::RimPpd rebuilt(schema);
  for (const std::string& symbol : ppd_->schema().OSymbols()) {
    for (const db::Tuple& tuple : ppd_->OInstance(symbol)) {
      rebuilt.AddFact(symbol, tuple);
    }
  }
  for (const std::string& symbol : ppd_->schema().PSymbols()) {
    for (const auto& [session, model] : ppd_->PInstance(symbol).sessions()) {
      rebuilt.AddSession(symbol, session, model);
    }
  }
  Reset(std::move(rebuilt));
  out_ << "o-symbol " << name << " declared\n";
}

void Shell::CommandPSymbol(const std::string& args) {
  std::istringstream stream(args);
  std::string name, spec;
  stream >> name >> spec;
  db::PreferenceSchema schema = ppd_->schema();
  schema.AddPSymbol(name, ParsePSignatureSpec(spec));
  ppd::RimPpd rebuilt(schema);
  for (const std::string& symbol : ppd_->schema().OSymbols()) {
    for (const db::Tuple& tuple : ppd_->OInstance(symbol)) {
      rebuilt.AddFact(symbol, tuple);
    }
  }
  for (const std::string& symbol : ppd_->schema().PSymbols()) {
    for (const auto& [session, model] : ppd_->PInstance(symbol).sessions()) {
      rebuilt.AddSession(symbol, session, model);
    }
  }
  Reset(std::move(rebuilt));
  out_ << "p-symbol " << name << " declared\n";
}

void Shell::CommandFact(const std::string& args) {
  const auto [symbol, row] = SplitCommand(args);
  if (!ppd_->schema().IsOSymbol(symbol)) {
    throw SchemaError("'" + symbol + "' is not a declared o-symbol");
  }
  db::Tuple tuple = ParseRow(row);
  const unsigned arity = ppd_->schema().Arity(symbol);
  if (tuple.size() != arity) {
    throw SchemaError("fact " + db::ToString(tuple) + " has " +
                      std::to_string(tuple.size()) + " fields; '" + symbol +
                      "' expects " + std::to_string(arity));
  }
  ppd_->AddFact(symbol, std::move(tuple));
  out_ << "ok\n";
}

void Shell::CommandMallows(const std::string& args) {
  // "<symbol> <phi> | <session csv> | <reference csv>"
  std::istringstream stream(args);
  std::string symbol;
  double phi = 0.0;
  stream >> symbol >> phi;
  std::string rest;
  std::getline(stream, rest);
  const std::size_t bar1 = rest.find('|');
  const std::size_t bar2 =
      bar1 == std::string::npos ? std::string::npos : rest.find('|', bar1 + 1);
  if (bar1 == std::string::npos || bar2 == std::string::npos) {
    throw ParseError(
        "usage: \\mallows P phi | session csv | reference csv");
  }
  const std::string session_text = rest.substr(bar1 + 1, bar2 - bar1 - 1);
  const std::string reference_text = rest.substr(bar2 + 1);
  const bool empty_session =
      session_text.find_first_not_of(" \t") == std::string::npos;
  ppd_->AddSession(symbol,
                   empty_session ? db::Tuple{} : ParseRow(session_text),
                   ppd::SessionModel::Mallows(ParseRow(reference_text), phi));
  out_ << "session added\n";
}

void Shell::CommandClassify(const std::string& args) {
  const auto q = query::ParseQuery(args, ppd_->schema());
  out_ << "sessionwise: " << (query::IsSessionwise(q) ? "yes" : "no")
       << "  itemwise: " << (query::IsItemwise(q) ? "yes" : "no")
       << "  complexity: " << query::ToString(query::Classify(q)) << "\n";
}

void Shell::CommandQuery(const std::string& args) {
  const auto q = query::ParseQuery(args, ppd_->schema());
  if (!q.IsBoolean()) {
    out_ << "error: \\query expects a Boolean query; use \\answers\n";
    return;
  }
  if (q.PAtoms().empty() || query::IsItemwise(q)) {
    out_ << "conf = " << ppd::EvaluateBoolean(*ppd_, q) << " (exact)\n";
  } else if (ppd::WorldCount(*ppd_) <= 1e6) {
    out_ << "conf = " << ppd::EvaluateBooleanByEnumeration(*ppd_, q)
         << " (non-itemwise: possible-world enumeration)\n";
  } else {
    const auto estimate = ppd::EstimateBoolean(*ppd_, q, 20000, rng_);
    out_ << "conf ~ " << estimate.estimate << " +- " << estimate.std_error
         << " (non-itemwise: Monte Carlo, 20k worlds)\n";
  }
}

void Shell::CommandAnswers(const std::string& args) {
  const auto q = query::ParseQuery(args, ppd_->schema());
  const auto answers = ppd::EvaluateQuery(*ppd_, q);
  if (answers.empty()) {
    out_ << "no possible answers\n";
    return;
  }
  for (const auto& answer : answers) {
    out_ << "  " << db::ToString(answer.tuple) << "  conf = "
         << answer.confidence << "\n";
  }
}

void Shell::CommandUnion(const std::string& args) {
  const auto ucq = query::ParseUnionQuery(args, ppd_->schema());
  if (!ucq.IsBoolean()) {
    const auto answers = ppd::EvaluateUnionQuery(*ppd_, ucq);
    for (const auto& answer : answers) {
      out_ << "  " << db::ToString(answer.tuple) << "  conf = "
           << answer.confidence << "\n";
    }
    return;
  }
  out_ << "conf = " << ppd::EvaluateBooleanUnion(*ppd_, ucq) << " (exact)\n";
}

void Shell::CommandApprox(const std::string& args) {
  std::istringstream stream(args);
  double epsilon = 0.0, delta = 0.0;
  stream >> epsilon >> delta;
  std::string query_text;
  std::getline(stream, query_text);
  const auto q = query::ParseQuery(query_text, ppd_->schema());
  const auto result =
      ppd::ApproximateBoolean(*ppd_, q, epsilon, delta, rng_);
  out_ << "conf ~ " << result.estimate << " (+- " << epsilon << " w.p. >= "
       << 1 - delta << ", " << result.samples << " samples)\n";
}

void Shell::CommandSweep(const std::string& args) {
  // "<phi,phi,...> Q() :- ..." — each phi re-binds every session's Mallows
  // dispersion; sessions are compiled to circuits once and re-evaluated per
  // point, so the grid costs one DP's worth of work plus cheap re-bindings.
  const auto [grid_text, query_text] = SplitCommand(args);
  std::vector<std::vector<double>> params;
  auto push = [&params](const std::string& token) {
    char* end = nullptr;
    const double phi =
        token.empty() ? 0.0 : std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size() ||
        !(phi > 0.0 && phi <= 1.0)) {
      throw ParseError("sweep dispersion '" + token +
                       "' must be a number in (0, 1]; usage: \\sweep "
                       "0.1,0.5,0.9 Q() :- ...");
    }
    params.push_back({phi});
  };
  std::string current;
  for (char c : grid_text) {
    if (c == ',') {
      push(current);
      current.clear();
    } else if (c != ' ' && c != '\t') {
      current += c;
    }
  }
  push(current);

  const auto q = query::ParseQuery(query_text, ppd_->schema());
  if (!q.IsBoolean()) {
    out_ << "error: \\sweep expects a Boolean query\n";
    return;
  }
  if (q.PAtoms().empty() || !query::IsItemwise(q)) {
    out_ << "error: \\sweep needs an itemwise query with p-atoms (circuits "
            "exist only for the tractable class); use \\query instead\n";
    return;
  }

  if (server_ == nullptr) {
    server_ = std::make_unique<serve::Server>(serve::ServerOptions{});
  }
  const serve::ServerStats before = server_->Snapshot();

  // Per session s and grid point k: p_{s,k} from the session's cached
  // circuit re-bound to phi_k; the Boolean confidence at phi_k is
  // 1 - prod_s (1 - p_{s,k}), mirroring ppd::EvaluateBoolean.
  const auto reductions = ppd::ReduceItemwise(*ppd_, q);
  std::vector<double> none_matches(params.size(), 1.0);
  for (const auto& reduction : reductions) {
    if (!reduction.satisfiable || reduction.reflexive_preference) continue;
    const infer::LabeledRimModel labeled(reduction.model->model(),
                                         reduction.labeling);
    const StatusOr<std::vector<double>> probs =
        server_->PatternProbSweep(labeled, reduction.pattern, params);
    if (!probs.ok()) {
      out_ << "error: " << probs.status().ToString() << "\n";
      return;
    }
    for (std::size_t k = 0; k < params.size(); ++k) {
      none_matches[k] *= 1.0 - (*probs)[k];
    }
  }
  for (std::size_t k = 0; k < params.size(); ++k) {
    out_ << "  phi = " << params[k][0] << "  conf = " << 1.0 - none_matches[k]
         << "\n";
  }
  const serve::ServerStats after = server_->Snapshot();
  out_ << "(" << reductions.size() << " sessions, " << params.size()
       << " points; circuits: "
       << after.circuit_compiles - before.circuit_compiles << " compiled, "
       << after.circuit_cache.hits - before.circuit_cache.hits
       << " cache hits)\n";
}

void Shell::CommandHard(const std::string& args) {
  // "<target> Q() :- ..." — per-session adaptive Monte-Carlo estimates to a
  // 95%-CI half-width target, combined into the Boolean confidence
  // 1 - prod_s (1 - p_s) with first-order error propagation.
  std::istringstream stream(args);
  double target = 0.0;
  stream >> target;
  if (!stream || !(target >= 0.0 && target <= 1.0)) {
    out_ << "error: usage: \\hard <target in [0, 1]> Q() :- ...\n";
    return;
  }
  std::string query_text;
  std::getline(stream, query_text);
  const auto q = query::ParseQuery(query_text, ppd_->schema());
  if (!q.IsBoolean()) {
    out_ << "error: \\hard expects a Boolean query\n";
    return;
  }
  if (q.PAtoms().empty() || !query::IsItemwise(q)) {
    out_ << "error: \\hard needs an itemwise query with p-atoms; use \\query "
            "instead\n";
    return;
  }

  if (server_ == nullptr) {
    server_ = std::make_unique<serve::Server>(serve::ServerOptions{});
  }

  const auto reductions = ppd::ReduceItemwise(*ppd_, q);
  double none_match = 1.0;
  double variance = 0.0;  // first-order: sum over s of (prod_{t!=s})^2 se_s^2
  std::uint64_t samples = 0;
  std::vector<std::pair<double, double>> estimates;  // (p_s, se_s)
  for (const auto& reduction : reductions) {
    if (!reduction.satisfiable || reduction.reflexive_preference) continue;
    const infer::LabeledRimModel labeled(reduction.model->model(),
                                         reduction.labeling);
    const StatusOr<serve::HardEstimate> estimate =
        server_->HardPatternProb(labeled, reduction.pattern, target);
    if (!estimate.ok()) {
      out_ << "error: " << estimate.status().ToString() << "\n";
      return;
    }
    estimates.emplace_back(estimate->estimate, estimate->std_error);
    samples += estimate->n_samples;
    none_match *= 1.0 - estimate->estimate;
  }
  for (std::size_t s = 0; s < estimates.size(); ++s) {
    double others = 1.0;
    for (std::size_t t = 0; t < estimates.size(); ++t) {
      if (t != s) others *= 1.0 - estimates[t].first;
    }
    variance += others * others * estimates[s].second * estimates[s].second;
  }
  out_ << "conf ~ " << 1.0 - none_match << " (se ~ " << std::sqrt(variance)
       << ", target " << target << ", " << estimates.size() << " sessions, "
       << samples << " worlds)\n";
}

void Shell::CommandConsensus(const std::string& args) {
  // "P k" — for each session of p-symbol P, the footrule-optimal consensus
  // ranking over sampled worlds, truncated to its first k items, with the
  // estimated mean footrule/Kendall distance from a random world.
  std::istringstream stream(args);
  std::string symbol;
  unsigned top_k = 0;
  stream >> symbol >> top_k;
  if (symbol.empty() || top_k == 0) {
    out_ << "error: usage: \\consensus <p-symbol> <k>\n";
    return;
  }
  if (server_ == nullptr) {
    server_ = std::make_unique<serve::Server>(serve::ServerOptions{});
  }
  for (const auto& [session, model] : ppd_->PInstance(symbol).sessions()) {
    const infer::LabeledRimModel labeled(model.model(),
                                         infer::ItemLabeling(model.size()));
    const StatusOr<serve::ConsensusAnswer> answer =
        server_->ConsensusTopK(labeled, top_k);
    if (!answer.ok()) {
      out_ << "error: " << answer.status().ToString() << "\n";
      return;
    }
    out_ << "  " << db::ToString(session) << " ->";
    for (rim::ItemId id : answer->ranking) {
      out_ << " " << model.ItemOf(id).ToString();
    }
    out_ << "  (mean footrule " << answer->mean_footrule << " +- "
         << answer->footrule_std_error << ", mean kendall "
         << answer->mean_kendall << " +- " << answer->kendall_std_error << ", "
         << answer->n_samples << " worlds)\n";
  }
}

void Shell::CommandSessions(const std::string& args) {
  std::istringstream stream(args);
  std::string symbol;
  stream >> symbol;
  for (const auto& [session, model] : ppd_->PInstance(symbol).sessions()) {
    out_ << "  " << db::ToString(session) << " -> " << model.ToString()
         << "\n";
  }
}

void Shell::CommandSave() { out_ << ppd::WritePpd(*ppd_); }

}  // namespace ppref::shell
