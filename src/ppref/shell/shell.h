/// \file shell.h
/// \brief An interactive command interpreter over RIM-PPDs: declare schemas,
/// load data, and evaluate probabilistic queries from text — the small
/// "database system" face of the library (the paper's long-term goal in §6).
///
/// Commands (one per line; see `\help`):
///
///   \osymbol Candidates candidate,party,sex,edu
///   \psymbol Polls voter,date|lcand|rcand
///   \fact Candidates "Clinton","D","F","JD"
///   \mallows Polls 0.3 | "Ann","Oct-5" | "Clinton","Sanders","Rubio","Trump"
///   \classify Q() :- Polls(v, d; l; r), Candidates(l, 'D', _, _)
///   \explain Q() :- ...             (the evaluation plan, §4.4 reduction)
///   \query Q() :- ...               (exact when itemwise; else enum <= 1e6
///                                    worlds; else Monte Carlo)
///   \answers Q(x) :- ...
///   \union Q() :- ... UNION Q() :- ...
///   \approx 0.05 0.01 Q() :- ...
///   \sweep 0.1,0.5,0.9 Q() :- ...   (confidence at each dispersion, via one
///                                    cached arithmetic circuit per session)
///   \hard 0.01 Q() :- ...           (adaptive Monte-Carlo estimate with a
///                                    CI half-width target — the hard tier)
///   \consensus Polls 3              (top-k consensus ranking per session
///                                    under footrule/Kendall distance)
///   \split Q() :- ...               (exact non-itemwise eval, splitting.h)
///   \analytics Polls                (winner probabilities + consensus)
///   \sessions Polls
///   \save                            (prints the serialized PPD)
///   \load-inline ... end             (multi-line PPD text until 'end-load')
///   \election                        (loads the paper's running example)
///   \help, \quit

#ifndef PPREF_SHELL_SHELL_H_
#define PPREF_SHELL_SHELL_H_

#include <memory>
#include <ostream>
#include <string>

#include "ppref/common/random.h"
#include "ppref/ppd/ppd.h"
#include "ppref/serve/server.h"

namespace ppref::shell {

/// A line-oriented interpreter bound to an output stream. All errors are
/// caught and reported to the stream; the interpreter never throws.
class Shell {
 public:
  explicit Shell(std::ostream& out);

  /// Executes one line. Returns false iff the command was \quit.
  bool Execute(const std::string& line);

  /// Runs every line of `script` (stops early on \quit). Returns the number
  /// of lines executed.
  unsigned ExecuteScript(const std::string& script);

  /// The current database (e.g. for tests).
  const ppd::RimPpd& ppd() const { return *ppd_; }

 private:
  void Reset(ppd::RimPpd ppd);
  void CommandHelp();
  void CommandOSymbol(const std::string& args);
  void CommandPSymbol(const std::string& args);
  void CommandFact(const std::string& args);
  void CommandMallows(const std::string& args);
  void CommandClassify(const std::string& args);
  void CommandQuery(const std::string& args);
  void CommandAnswers(const std::string& args);
  void CommandUnion(const std::string& args);
  void CommandApprox(const std::string& args);
  void CommandSweep(const std::string& args);
  void CommandHard(const std::string& args);
  void CommandConsensus(const std::string& args);
  void CommandSessions(const std::string& args);
  void CommandSave();

  std::ostream& out_;
  std::unique_ptr<ppd::RimPpd> ppd_;
  /// Lazily built serving core backing \sweep: its circuit cache persists
  /// across commands, so repeated sweeps over the same query shape recompile
  /// nothing.
  std::unique_ptr<serve::Server> server_;
  Rng rng_{20170514};  // PODS'17 conference date; fixed for reproducibility
  // Multi-line \load-inline accumulation state.
  bool loading_ = false;
  std::string pending_load_;
};

}  // namespace ppref::shell

#endif  // PPREF_SHELL_SHELL_H_
