#include "ppref/db/database.h"

#include "ppref/common/check.h"
#include "ppref/db/preference_instance.h"

namespace ppref::db {

Database::Database(PreferenceSchema schema) : schema_(std::move(schema)) {
  for (const std::string& name : schema_.OSymbols()) {
    instances_.emplace(name, Relation(schema_.OSignature(name)));
  }
  for (const std::string& name : schema_.PSymbols()) {
    instances_.emplace(name, Relation(schema_.PSignature(name).Flattened()));
  }
}

const Relation& Database::Instance(const std::string& symbol) const {
  const auto it = instances_.find(symbol);
  if (it == instances_.end()) {
    throw SchemaError("unknown symbol '" + symbol + "'");
  }
  return it->second;
}

Relation& Database::MutableInstance(const std::string& symbol) {
  const auto it = instances_.find(symbol);
  if (it == instances_.end()) {
    throw SchemaError("unknown symbol '" + symbol + "'");
  }
  return it->second;
}

void Database::Add(const std::string& symbol, Tuple tuple) {
  MutableInstance(symbol).Add(std::move(tuple));
}

void Database::Add(const std::string& symbol,
                   std::initializer_list<Value> values) {
  Add(symbol, Tuple(values));
}

Database ElectionDatabase() {
  Database db(ElectionSchema());
  // Candidates(candidate, party, sex, edu): attributes chosen so that the
  // paper's worked examples hold — Clinton is the only female (Example 4.9),
  // Trump holds a BS (Example 4.7), and Sanders shares Ann's BS education
  // (Example 4.9 gives {Trump, Sanders} as Ann's education matches).
  db.Add("Candidates", {"Clinton", "D", "F", "JD"});
  db.Add("Candidates", {"Sanders", "D", "M", "BS"});
  db.Add("Candidates", {"Rubio", "R", "M", "JD"});
  db.Add("Candidates", {"Trump", "R", "M", "BS"});
  // Voters(voter, edu, sex, age).
  db.Add("Voters", {"Ann", "BS", "F", 34});
  db.Add("Voters", {"Bob", "JD", "M", 51});
  db.Add("Voters", {"Dave", "BS", "M", 27});
  // Polls (Figure 1): three sessions, each a full ranking stored pairwise.
  AddRankingAsPairs(db, "Polls", {"Ann", "Oct-5"},
                    {"Sanders", "Clinton", "Rubio", "Trump"});
  AddRankingAsPairs(db, "Polls", {"Bob", "Oct-5"},
                    {"Sanders", "Rubio", "Clinton", "Trump"});
  AddRankingAsPairs(db, "Polls", {"Dave", "Nov-5"},
                    {"Clinton", "Rubio", "Sanders", "Trump"});
  return db;
}

}  // namespace ppref::db
