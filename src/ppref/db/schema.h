/// \file schema.h
/// \brief Preference schemas: o-symbols and p-symbols — §3.1.

#ifndef PPREF_DB_SCHEMA_H_
#define PPREF_DB_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "ppref/db/signature.h"

namespace ppref::db {

/// A relational schema whose relation symbols are either ordinary
/// (o-symbols) or preference symbols (p-symbols).
class PreferenceSchema {
 public:
  /// Declares an o-symbol. Throws SchemaError when the name is taken.
  void AddOSymbol(const std::string& name, RelationSignature signature);

  /// Declares a p-symbol. Throws SchemaError when the name is taken.
  void AddPSymbol(const std::string& name, PreferenceSignature signature);

  bool HasSymbol(const std::string& name) const;
  bool IsOSymbol(const std::string& name) const;
  bool IsPSymbol(const std::string& name) const;

  /// Signature of an o-symbol; throws SchemaError if absent.
  const RelationSignature& OSignature(const std::string& name) const;

  /// Signature of a p-symbol; throws SchemaError if absent.
  const PreferenceSignature& PSignature(const std::string& name) const;

  /// Arity of any symbol (p-symbols: |β| + 2); throws SchemaError if absent.
  unsigned Arity(const std::string& name) const;

  std::vector<std::string> OSymbols() const;
  std::vector<std::string> PSymbols() const;

 private:
  std::map<std::string, RelationSignature> o_symbols_;
  std::map<std::string, PreferenceSignature> p_symbols_;
};

/// The running example's schema (Figure 1): Candidates(candidate, party,
/// sex, edu), Voters(voter, edu, sex, age), Polls(voter, date; lcand; rcand).
PreferenceSchema ElectionSchema();

}  // namespace ppref::db

#endif  // PPREF_DB_SCHEMA_H_
