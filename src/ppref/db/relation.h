/// \file relation.h
/// \brief Relation instances: finite sets of tuples over a signature — §2.1.

#ifndef PPREF_DB_RELATION_H_
#define PPREF_DB_RELATION_H_

#include <atomic>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ppref/db/signature.h"
#include "ppref/db/value.h"

namespace ppref::db {

/// A finite set of tuples over a relation signature. Insertion order is
/// preserved for deterministic iteration; duplicates are silently dropped
/// (set semantics, as in the paper).
///
/// Point lookups are served by per-attribute hash indexes, built lazily on
/// first probe and invalidated by mutation. Const operations (including the
/// lazy build) are safe to call concurrently; mutation is not.
class Relation {
 public:
  Relation() = default;
  explicit Relation(RelationSignature signature)
      : signature_(std::move(signature)) {}

  Relation(const Relation& other);
  Relation& operator=(const Relation& other);

  const RelationSignature& signature() const { return signature_; }
  unsigned arity() const { return signature_.size(); }

  /// Adds `tuple`; returns true if it was new. The arity must match.
  bool Add(Tuple tuple);

  /// Convenience for initializer-list style population.
  bool Add(std::initializer_list<Value> values) {
    return Add(Tuple(values));
  }

  bool Contains(const Tuple& tuple) const;
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>::const_iterator begin() const { return tuples_.begin(); }
  std::vector<Tuple>::const_iterator end() const { return tuples_.end(); }

  /// Projection onto attribute indices, deduplicated, in first-seen order.
  std::vector<Tuple> Project(const std::vector<unsigned>& indices) const;

  /// Indices (into tuples()) of the tuples whose `attribute` equals
  /// `value`, in insertion order. O(1) expected after the first probe.
  const std::vector<std::size_t>& MatchingIndices(unsigned attribute,
                                                  const Value& value) const;

 private:
  void EnsureIndexes() const;

  RelationSignature signature_;
  std::vector<Tuple> tuples_;
  std::unordered_set<Tuple, TupleHash> dedup_;

  // Lazily built per-attribute point indexes (value -> tuple positions).
  mutable std::atomic<bool> indexed_{false};
  mutable std::mutex index_mutex_;
  mutable std::vector<std::unordered_map<Value, std::vector<std::size_t>,
                                         ValueHash>>
      attribute_index_;
};

}  // namespace ppref::db

#endif  // PPREF_DB_RELATION_H_
