/// \file database.h
/// \brief Deterministic preference databases — §3.1.
///
/// A `Database` assigns an instance to every symbol of a preference schema.
/// P-instances are stored as plain relations over the flattened signature
/// (β attributes, then lhs, then rhs) — the paper's "conceptual"
/// representation listing all pairwise preferences.

#ifndef PPREF_DB_DATABASE_H_
#define PPREF_DB_DATABASE_H_

#include <map>
#include <string>

#include "ppref/db/relation.h"
#include "ppref/db/schema.h"

namespace ppref::db {

/// A database over a preference schema.
class Database {
 public:
  explicit Database(PreferenceSchema schema);

  const PreferenceSchema& schema() const { return schema_; }

  /// The instance of `symbol` (o- or p-symbol); throws SchemaError when the
  /// symbol is not declared.
  const Relation& Instance(const std::string& symbol) const;

  /// Mutable access for population.
  Relation& MutableInstance(const std::string& symbol);

  /// Adds a tuple to `symbol`'s instance (p-symbols take flattened tuples:
  /// session values, then lhs item, then rhs item).
  void Add(const std::string& symbol, Tuple tuple);
  void Add(const std::string& symbol, std::initializer_list<Value> values);

 private:
  PreferenceSchema schema_;
  std::map<std::string, Relation> instances_;
};

/// The running example's deterministic database (Figure 1).
Database ElectionDatabase();

}  // namespace ppref::db

#endif  // PPREF_DB_DATABASE_H_
