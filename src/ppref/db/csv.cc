#include "ppref/db/csv.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "ppref/common/check.h"

namespace ppref::db {
namespace {

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

/// Types an unquoted field: integer, decimal, or string; empty is NULL.
Value SniffValue(const std::string& raw) {
  const std::string field = Trim(raw);
  if (field.empty()) return Value();
  char* end = nullptr;
  const long long as_int = std::strtoll(field.c_str(), &end, 10);
  if (end == field.c_str() + field.size() && !field.empty()) {
    return Value(static_cast<std::int64_t>(as_int));
  }
  const double as_double = std::strtod(field.c_str(), &end);
  if (end == field.c_str() + field.size()) {
    return Value(as_double);
  }
  return Value(field);
}

/// Parses a single CSV line into values.
// GCC 12's -Wmaybe-uninitialized fires a false positive on the moved
// std::variant temporaries inlined into push_back (GCC PR 105562).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
Tuple ParseLine(const std::string& line, std::size_t line_number) {
  Tuple tuple;
  std::size_t i = 0;
  while (true) {
    // Skip leading spaces.
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] == '"') {
      // Quoted string field; doubled quotes escape.
      std::string value;
      ++i;
      bool closed = false;
      while (i < line.size()) {
        if (line[i] == '"') {
          if (i + 1 < line.size() && line[i + 1] == '"') {
            value += '"';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value += line[i++];
      }
      if (!closed) {
        throw ParseError("unterminated quote on CSV line " +
                         std::to_string(line_number));
      }
      tuple.push_back(Value(value));
      while (i < line.size() && line[i] == ' ') ++i;
      if (i < line.size() && line[i] != ',') {
        throw ParseError("unexpected text after quoted field on line " +
                         std::to_string(line_number));
      }
    } else {
      const std::size_t comma = line.find(',', i);
      const std::string field =
          line.substr(i, comma == std::string::npos ? std::string::npos
                                                    : comma - i);
      tuple.push_back(SniffValue(field));
      i = comma == std::string::npos ? line.size() : comma;
    }
    if (i >= line.size()) break;
    ++i;  // skip the comma
    if (i == line.size()) {
      tuple.push_back(Value());  // trailing comma: final NULL field
      break;
    }
  }
  return tuple;
}
#pragma GCC diagnostic pop

}  // namespace

std::vector<Tuple> ParseCsv(const std::string& text) {
  std::vector<Tuple> tuples;
  std::size_t line_number = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(begin, end - begin);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    ++line_number;
    const std::string trimmed = Trim(line);
    if (!trimmed.empty() && trimmed[0] != '#') {
      tuples.push_back(ParseLine(line, line_number));
    }
    if (end == text.size()) break;
    begin = end + 1;
  }
  return tuples;
}

void LoadCsv(Relation& relation, const std::string& text) {
  for (Tuple& tuple : ParseCsv(text)) {
    if (tuple.size() != relation.arity()) {
      throw ParseError("CSV row " + ToString(tuple) + " has " +
                       std::to_string(tuple.size()) + " fields; relation " +
                       relation.signature().ToString() + " expects " +
                       std::to_string(relation.arity()));
    }
    relation.Add(std::move(tuple));
  }
}

std::string WriteCsv(const Relation& relation) {
  std::string out;
  for (const Tuple& tuple : relation) {
    for (std::size_t i = 0; i < tuple.size(); ++i) {
      if (i > 0) out += ",";
      const Value& value = tuple[i];
      switch (value.kind()) {
        case Value::Kind::kNull:
          break;
        case Value::Kind::kInt:
          out += std::to_string(value.AsInt());
          break;
        case Value::Kind::kDouble: {
          char buffer[32];
          std::snprintf(buffer, sizeof(buffer), "%.17g", value.AsDouble());
          out += buffer;
          break;
        }
        case Value::Kind::kString: {
          out += '"';
          for (char c : value.AsString()) {
            if (c == '"') out += '"';
            out += c;
          }
          out += '"';
          break;
        }
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace ppref::db
