/// \file csv.h
/// \brief Loading and saving relation instances as CSV text — the practical
/// ingestion path for poll/preference datasets.
///
/// Typing is sniffed per field: double-quoted fields are strings; unquoted
/// fields parse as integers, then decimals, and fall back to strings; empty
/// fields are NULL. `WriteCsv` quotes every string so round-trips preserve
/// value kinds. Blank lines and lines starting with '#' are skipped.

#ifndef PPREF_DB_CSV_H_
#define PPREF_DB_CSV_H_

#include <string>
#include <vector>

#include "ppref/db/relation.h"
#include "ppref/db/value.h"

namespace ppref::db {

/// Parses CSV text into tuples. Throws ParseError on unterminated quotes.
std::vector<Tuple> ParseCsv(const std::string& text);

/// Parses and appends rows into `relation`; every row must match its arity.
void LoadCsv(Relation& relation, const std::string& text);

/// Renders the relation as CSV (no header). Strings are double-quoted with
/// internal quotes doubled; NULL is the empty field. Caveat: an
/// integral-valued double (e.g. 3.0) prints as "3" and loads back as an
/// integer.
std::string WriteCsv(const Relation& relation);

}  // namespace ppref::db

#endif  // PPREF_DB_CSV_H_
