#include "ppref/db/signature.h"

#include <algorithm>

#include "ppref/common/check.h"

namespace ppref::db {

RelationSignature::RelationSignature(std::vector<std::string> attributes)
    : attributes_(std::move(attributes)) {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    PPREF_CHECK_MSG(!attributes_[i].empty(), "empty attribute name");
    for (std::size_t j = i + 1; j < attributes_.size(); ++j) {
      PPREF_CHECK_MSG(attributes_[i] != attributes_[j],
                      "duplicate attribute '" << attributes_[i] << "'");
    }
  }
}

const std::string& RelationSignature::Attribute(unsigned index) const {
  PPREF_CHECK(index < attributes_.size());
  return attributes_[index];
}

std::optional<unsigned> RelationSignature::IndexOf(
    const std::string& name) const {
  const auto it = std::find(attributes_.begin(), attributes_.end(), name);
  if (it == attributes_.end()) return std::nullopt;
  return static_cast<unsigned>(it - attributes_.begin());
}

std::string RelationSignature::ToString() const {
  std::string out = "(";
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i];
  }
  return out + ")";
}

PreferenceSignature::PreferenceSignature(RelationSignature session,
                                         std::string lhs, std::string rhs)
    : session_(std::move(session)), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {
  PPREF_CHECK_MSG(!lhs_.empty() && !rhs_.empty(), "empty item attribute name");
  PPREF_CHECK_MSG(lhs_ != rhs_, "lhs and rhs attributes must differ");
  PPREF_CHECK_MSG(!session_.IndexOf(lhs_).has_value(),
                  "lhs attribute '" << lhs_ << "' collides with session");
  PPREF_CHECK_MSG(!session_.IndexOf(rhs_).has_value(),
                  "rhs attribute '" << rhs_ << "' collides with session");
}

RelationSignature PreferenceSignature::Flattened() const {
  std::vector<std::string> attributes = session_.attributes();
  attributes.push_back(lhs_);
  attributes.push_back(rhs_);
  return RelationSignature(std::move(attributes));
}

std::string PreferenceSignature::ToString() const {
  std::string out = "(";
  for (unsigned i = 0; i < session_.size(); ++i) {
    if (i > 0) out += ", ";
    out += session_.Attribute(i);
  }
  out += "; " + lhs_ + "; " + rhs_ + ")";
  return out;
}

}  // namespace ppref::db
