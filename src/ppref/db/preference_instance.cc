#include "ppref/db/preference_instance.h"

#include <algorithm>
#include <unordered_set>

#include "ppref/common/check.h"

namespace ppref::db {
namespace {

void CheckInstanceShape(const Relation& instance,
                        const PreferenceSignature& signature) {
  PPREF_CHECK_MSG(instance.arity() == signature.arity(),
                  "p-instance arity " << instance.arity()
                                      << " does not match signature arity "
                                      << signature.arity());
}

Tuple SessionPart(const Tuple& tuple, const PreferenceSignature& signature) {
  return Tuple(tuple.begin(), tuple.begin() + signature.session_arity());
}

}  // namespace

std::vector<Tuple> Sessions(const Relation& instance,
                            const PreferenceSignature& signature) {
  CheckInstanceShape(instance, signature);
  std::vector<Tuple> sessions;
  std::unordered_set<Tuple, TupleHash> seen;
  for (const Tuple& tuple : instance) {
    Tuple session = SessionPart(tuple, signature);
    if (seen.insert(session).second) sessions.push_back(std::move(session));
  }
  return sessions;
}

std::vector<Value> Items(const Relation& instance,
                         const PreferenceSignature& signature) {
  CheckInstanceShape(instance, signature);
  std::vector<Value> items;
  std::unordered_set<Tuple, TupleHash> seen;  // singleton tuples as keys
  const unsigned lhs = signature.session_arity();
  const unsigned rhs = lhs + 1;
  for (const Tuple& tuple : instance) {
    for (unsigned index : {lhs, rhs}) {
      if (seen.insert({tuple[index]}).second) items.push_back(tuple[index]);
    }
  }
  return items;
}

std::vector<std::pair<Value, Value>> SessionPairs(
    const Relation& instance, const PreferenceSignature& signature,
    const Tuple& session) {
  CheckInstanceShape(instance, signature);
  PPREF_CHECK(session.size() == signature.session_arity());
  std::vector<std::pair<Value, Value>> pairs;
  const unsigned lhs = signature.session_arity();
  for (const Tuple& tuple : instance) {
    if (SessionPart(tuple, signature) == session) {
      pairs.emplace_back(tuple[lhs], tuple[lhs + 1]);
    }
  }
  return pairs;
}

std::optional<std::vector<Value>> SessionRanking(
    const Relation& instance, const PreferenceSignature& signature,
    const Tuple& session) {
  const auto pairs = SessionPairs(instance, signature, session);
  // Collect the session's items.
  std::vector<Value> items;
  for (const auto& [a, b] : pairs) {
    for (const Value& v : {a, b}) {
      if (std::find(items.begin(), items.end(), v) == items.end()) {
        items.push_back(v);
      }
    }
  }
  const std::size_t n = items.size();
  if (pairs.size() != n * (n - 1) / 2) return std::nullopt;
  // Sort by out-degree: in a strict linear order over n items, the i-th item
  // from the top beats exactly n-1-i others.
  std::vector<std::size_t> wins(n, 0);
  auto index_of = [&](const Value& v) {
    return static_cast<std::size_t>(
        std::find(items.begin(), items.end(), v) - items.begin());
  };
  for (const auto& [a, b] : pairs) {
    if (a == b) return std::nullopt;  // irreflexivity
    ++wins[index_of(a)];
  }
  std::vector<Value> ranking(n);
  std::vector<bool> used(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t expected = n - 1 - i;
    bool found = false;
    for (std::size_t j = 0; j < n; ++j) {
      if (!used[j] && wins[j] == expected) {
        ranking[i] = items[j];
        used[j] = true;
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;  // not a linear order
  }
  // Verify every pair agrees with the ranking (catches non-transitive sets
  // that happen to have linear win counts).
  auto rank_of = [&](const Value& v) {
    return std::find(ranking.begin(), ranking.end(), v) - ranking.begin();
  };
  for (const auto& [a, b] : pairs) {
    if (rank_of(a) >= rank_of(b)) return std::nullopt;
  }
  return ranking;
}

void AddRankingAsPairs(Database& database, const std::string& symbol,
                       const Tuple& session,
                       const std::vector<Value>& items_in_order) {
  const PreferenceSignature& signature =
      database.schema().PSignature(symbol);
  PPREF_CHECK(session.size() == signature.session_arity());
  for (std::size_t i = 0; i < items_in_order.size(); ++i) {
    for (std::size_t j = i + 1; j < items_in_order.size(); ++j) {
      Tuple tuple = session;
      tuple.push_back(items_in_order[i]);
      tuple.push_back(items_in_order[j]);
      database.Add(symbol, std::move(tuple));
    }
  }
}

}  // namespace ppref::db
