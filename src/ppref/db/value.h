/// \file value.h
/// \brief Atomic values and tuples for the relational substrate — §2.1.
///
/// Values are nulls, 64-bit integers, doubles, or strings. Tuples are value
/// sequences. Equality and ordering are defined across kinds (kind first,
/// then payload) so values can key ordered and hashed containers.

#ifndef PPREF_DB_VALUE_H_
#define PPREF_DB_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace ppref::db {

/// An atomic database value.
class Value {
 public:
  enum class Kind { kNull = 0, kInt = 1, kDouble = 2, kString = 3 };

  /// The null value.
  Value() : data_(std::monostate{}) {}
  Value(std::int64_t v) : data_(v) {}          // NOLINT(runtime/explicit)
  Value(int v) : data_(std::int64_t{v}) {}     // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}                // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)

  Kind kind() const { return static_cast<Kind>(data_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }

  /// Typed accessors; the kind must match.
  std::int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Renders for diagnostics: strings quoted, null as "NULL".
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.data_ < b.data_;
  }

  /// Hash for unordered containers.
  std::size_t Hash() const;

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> data_;
};

/// A tuple over some relation signature.
using Tuple = std::vector<Value>;

/// Renders a tuple as "(v1, v2, ...)".
std::string ToString(const Tuple& tuple);

/// Hash functor for values (unordered containers keyed by Value).
struct ValueHash {
  std::size_t operator()(const Value& value) const { return value.Hash(); }
};

/// Hash functor for tuples.
struct TupleHash {
  std::size_t operator()(const Tuple& tuple) const;
};

}  // namespace ppref::db

#endif  // PPREF_DB_VALUE_H_
