#include "ppref/db/schema.h"

#include "ppref/common/check.h"

namespace ppref::db {

void PreferenceSchema::AddOSymbol(const std::string& name,
                                  RelationSignature signature) {
  if (HasSymbol(name)) throw SchemaError("symbol '" + name + "' already declared");
  o_symbols_.emplace(name, std::move(signature));
}

void PreferenceSchema::AddPSymbol(const std::string& name,
                                  PreferenceSignature signature) {
  if (HasSymbol(name)) throw SchemaError("symbol '" + name + "' already declared");
  p_symbols_.emplace(name, std::move(signature));
}

bool PreferenceSchema::HasSymbol(const std::string& name) const {
  return IsOSymbol(name) || IsPSymbol(name);
}

bool PreferenceSchema::IsOSymbol(const std::string& name) const {
  return o_symbols_.contains(name);
}

bool PreferenceSchema::IsPSymbol(const std::string& name) const {
  return p_symbols_.contains(name);
}

const RelationSignature& PreferenceSchema::OSignature(
    const std::string& name) const {
  const auto it = o_symbols_.find(name);
  if (it == o_symbols_.end()) throw SchemaError("unknown o-symbol '" + name + "'");
  return it->second;
}

const PreferenceSignature& PreferenceSchema::PSignature(
    const std::string& name) const {
  const auto it = p_symbols_.find(name);
  if (it == p_symbols_.end()) throw SchemaError("unknown p-symbol '" + name + "'");
  return it->second;
}

unsigned PreferenceSchema::Arity(const std::string& name) const {
  if (IsOSymbol(name)) return OSignature(name).size();
  if (IsPSymbol(name)) return PSignature(name).arity();
  throw SchemaError("unknown symbol '" + name + "'");
}

std::vector<std::string> PreferenceSchema::OSymbols() const {
  std::vector<std::string> names;
  for (const auto& [name, signature] : o_symbols_) names.push_back(name);
  return names;
}

std::vector<std::string> PreferenceSchema::PSymbols() const {
  std::vector<std::string> names;
  for (const auto& [name, signature] : p_symbols_) names.push_back(name);
  return names;
}

PreferenceSchema ElectionSchema() {
  PreferenceSchema schema;
  schema.AddOSymbol("Candidates", RelationSignature({"candidate", "party",
                                                     "sex", "edu"}));
  schema.AddOSymbol("Voters",
                    RelationSignature({"voter", "edu", "sex", "age"}));
  schema.AddPSymbol("Polls",
                    PreferenceSignature(RelationSignature({"voter", "date"}),
                                        "lcand", "rcand"));
  return schema;
}

}  // namespace ppref::db
