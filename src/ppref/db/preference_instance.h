/// \file preference_instance.h
/// \brief Utilities over p-instances: sessions, items, per-session orders,
/// and conversions between rankings and pairwise representations — §3.1.

#ifndef PPREF_DB_PREFERENCE_INSTANCE_H_
#define PPREF_DB_PREFERENCE_INSTANCE_H_

#include <optional>
#include <vector>

#include "ppref/db/database.h"
#include "ppref/db/relation.h"
#include "ppref/db/signature.h"

namespace ppref::db {

/// The distinct sessions of a p-instance `r`: π_β(r), in first-seen order.
std::vector<Tuple> Sessions(const Relation& instance,
                            const PreferenceSignature& signature);

/// items(r): every value occurring in the lhs or rhs attribute.
std::vector<Value> Items(const Relation& instance,
                         const PreferenceSignature& signature);

/// The preference pairs (lhs, rhs) of one session.
std::vector<std::pair<Value, Value>> SessionPairs(
    const Relation& instance, const PreferenceSignature& signature,
    const Tuple& session);

/// If the session's pairs form a strict linear order over the given items,
/// returns the items from most to least preferred; otherwise nullopt. Pairs
/// must be exactly the full order relation (all C(n,2) comparisons), as in
/// the paper's conceptual representation.
std::optional<std::vector<Value>> SessionRanking(
    const Relation& instance, const PreferenceSignature& signature,
    const Tuple& session);

/// Appends to `database[symbol]` the complete pairwise encoding of the
/// ranking `items_in_order` (most preferred first) for `session`: tuples
/// (session; items[i]; items[j]) for every i < j.
void AddRankingAsPairs(Database& database, const std::string& symbol,
                       const Tuple& session,
                       const std::vector<Value>& items_in_order);

}  // namespace ppref::db

#endif  // PPREF_DB_PREFERENCE_INSTANCE_H_
