#include "ppref/db/relation.h"

#include "ppref/common/check.h"

namespace ppref::db {

Relation::Relation(const Relation& other)
    : signature_(other.signature_),
      tuples_(other.tuples_),
      dedup_(other.dedup_) {}  // indexes rebuild lazily in the copy

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  signature_ = other.signature_;
  tuples_ = other.tuples_;
  dedup_ = other.dedup_;
  indexed_.store(false, std::memory_order_relaxed);
  attribute_index_.clear();
  return *this;
}

bool Relation::Add(Tuple tuple) {
  PPREF_CHECK_MSG(tuple.size() == signature_.size(),
                  "tuple " << db::ToString(tuple) << " has arity "
                           << tuple.size() << ", relation expects "
                           << signature_.size());
  if (dedup_.contains(tuple)) return false;
  dedup_.insert(tuple);
  tuples_.push_back(std::move(tuple));
  // Invalidate point indexes (mutation is single-threaded by contract).
  indexed_.store(false, std::memory_order_relaxed);
  attribute_index_.clear();
  return true;
}

bool Relation::Contains(const Tuple& tuple) const {
  return dedup_.contains(tuple);
}

std::vector<Tuple> Relation::Project(
    const std::vector<unsigned>& indices) const {
  std::vector<Tuple> result;
  std::unordered_set<Tuple, TupleHash> seen;
  for (const Tuple& tuple : tuples_) {
    Tuple projected;
    projected.reserve(indices.size());
    for (unsigned index : indices) {
      PPREF_CHECK(index < tuple.size());
      projected.push_back(tuple[index]);
    }
    if (seen.insert(projected).second) result.push_back(std::move(projected));
  }
  return result;
}

void Relation::EnsureIndexes() const {
  if (indexed_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (indexed_.load(std::memory_order_relaxed)) return;
  attribute_index_.assign(signature_.size(), {});
  for (std::size_t position = 0; position < tuples_.size(); ++position) {
    for (unsigned attribute = 0; attribute < signature_.size(); ++attribute) {
      attribute_index_[attribute][tuples_[position][attribute]].push_back(
          position);
    }
  }
  indexed_.store(true, std::memory_order_release);
}

const std::vector<std::size_t>& Relation::MatchingIndices(
    unsigned attribute, const Value& value) const {
  PPREF_CHECK(attribute < signature_.size());
  EnsureIndexes();
  static const std::vector<std::size_t> kEmpty;
  const auto& index = attribute_index_[attribute];
  const auto it = index.find(value);
  return it == index.end() ? kEmpty : it->second;
}

}  // namespace ppref::db
