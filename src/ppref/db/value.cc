#include "ppref/db/value.h"

#include <functional>
#include <sstream>

#include "ppref/common/check.h"

namespace ppref::db {

std::int64_t Value::AsInt() const {
  PPREF_CHECK_MSG(kind() == Kind::kInt, "value " << ToString() << " is not int");
  return std::get<std::int64_t>(data_);
}

double Value::AsDouble() const {
  PPREF_CHECK_MSG(kind() == Kind::kDouble,
                  "value " << ToString() << " is not double");
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  PPREF_CHECK_MSG(kind() == Kind::kString,
                  "value " << ToString() << " is not string");
  return std::get<std::string>(data_);
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "NULL";
    case Kind::kInt:
      return std::to_string(std::get<std::int64_t>(data_));
    case Kind::kDouble: {
      std::ostringstream out;
      out << std::get<double>(data_);
      return out.str();
    }
    case Kind::kString:
      return "'" + std::get<std::string>(data_) + "'";
  }
  return "?";
}

std::size_t Value::Hash() const {
  const std::size_t kind_salt = static_cast<std::size_t>(kind()) * 0x9E3779B97F4A7C15ull;
  switch (kind()) {
    case Kind::kNull:
      return kind_salt;
    case Kind::kInt:
      return kind_salt ^ std::hash<std::int64_t>{}(std::get<std::int64_t>(data_));
    case Kind::kDouble:
      return kind_salt ^ std::hash<double>{}(std::get<double>(data_));
    case Kind::kString:
      return kind_salt ^ std::hash<std::string>{}(std::get<std::string>(data_));
  }
  return kind_salt;
}

std::string ToString(const Tuple& tuple) {
  std::string out = "(";
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ", ";
    out += tuple[i].ToString();
  }
  out += ")";
  return out;
}

std::size_t TupleHash::operator()(const Tuple& tuple) const {
  std::size_t hash = 1469598103934665603ull;
  for (const Value& value : tuple) {
    hash ^= value.Hash();
    hash *= 1099511628211ull;
  }
  return hash;
}

}  // namespace ppref::db
