/// \file signature.h
/// \brief Relation signatures and preference signatures — §2.1 and §3.1.
///
/// An ordinary relation signature is a sequence of distinct attribute names.
/// A preference signature is (β; A_l; A_r): a session signature β plus the
/// left-hand-side and right-hand-side item attributes, written in the paper
/// as e.g. Polls(voter, date; lcand; rcand).

#ifndef PPREF_DB_SIGNATURE_H_
#define PPREF_DB_SIGNATURE_H_

#include <optional>
#include <string>
#include <vector>

namespace ppref::db {

/// A finite sequence of distinct attribute names.
class RelationSignature {
 public:
  RelationSignature() = default;
  explicit RelationSignature(std::vector<std::string> attributes);

  unsigned size() const { return static_cast<unsigned>(attributes_.size()); }
  const std::string& Attribute(unsigned index) const;
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// Index of the attribute named `name`, if present.
  std::optional<unsigned> IndexOf(const std::string& name) const;

  /// Renders as "(a, b, c)".
  std::string ToString() const;

  friend bool operator==(const RelationSignature& a,
                         const RelationSignature& b) {
    return a.attributes_ == b.attributes_;
  }

 private:
  std::vector<std::string> attributes_;
};

/// A preference signature (β; A_l; A_r).
class PreferenceSignature {
 public:
  PreferenceSignature() = default;
  /// `session` is β; `lhs`/`rhs` must be distinct from each other and from
  /// every session attribute.
  PreferenceSignature(RelationSignature session, std::string lhs,
                      std::string rhs);

  const RelationSignature& session() const { return session_; }
  const std::string& lhs() const { return lhs_; }
  const std::string& rhs() const { return rhs_; }

  /// Number of session attributes |β| (may be zero).
  unsigned session_arity() const { return session_.size(); }

  /// Total arity |β| + 2, the arity of tuples stored in a p-instance.
  unsigned arity() const { return session_.size() + 2; }

  /// The flattened ordinary signature (β attributes, then lhs, then rhs),
  /// used to store p-instances as plain relations.
  RelationSignature Flattened() const;

  /// Renders as "(a, b; l; r)".
  std::string ToString() const;

 private:
  RelationSignature session_;
  std::string lhs_;
  std::string rhs_;
};

}  // namespace ppref::db

#endif  // PPREF_DB_SIGNATURE_H_
