#include "ppref/resil/chaos_proxy.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <vector>

#include "ppref/resil/backoff.h"

namespace ppref::resil {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kListenTag = 0;
constexpr std::uint64_t kWakeTag = 1;
/// Both per-connection fds map into epoll user data as (id << 1) | side.
constexpr std::uint64_t kSideClient = 0;
constexpr std::uint64_t kSideUpstream = 1;

/// Stop reading a side once this much is buffered for the other.
constexpr std::size_t kBackpressureBytes = 4u << 20;

void SetLingerReset(int fd) {
  // SO_LINGER{on, 0}: close() discards the send queue and emits RST
  // instead of FIN — the canonical way to inject a connection reset.
  linger hard{};
  hard.l_onoff = 1;
  hard.l_linger = 0;
  setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
}

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

struct ChaosProxy::Conn {
  std::uint64_t id = 0;
  int client_fd = -1;
  int upstream_fd = -1;
  Fate fate = Fate::kNormal;
  bool upstream_connected = false;
  bool client_eof = false;
  bool upstream_eof = false;
  bool mid_rst_fired = false;
  bool corrupt_done = false;
  bool stall_done = false;
  bool stalled = false;
  Clock::time_point stall_until;

  std::string to_upstream;
  std::size_t to_upstream_off = 0;
  std::string to_client;
  std::size_t to_client_off = 0;

  std::size_t c2u_count = 0;    // client bytes read
  std::size_t u2c_count = 0;    // upstream bytes read (corruption offset)
  std::size_t u2c_written = 0;  // bytes delivered to the client

  std::uint32_t client_events = 0;
  std::uint32_t upstream_events = 0;

  std::size_t to_upstream_pending() const {
    return to_upstream.size() - to_upstream_off;
  }
  std::size_t to_client_pending() const {
    return to_client.size() - to_client_off;
  }
};

ChaosProxy::ChaosProxy(ChaosProxyOptions options)
    : options_(std::move(options)) {}

ChaosProxy::~ChaosProxy() { Stop(); }

Status ChaosProxy::Start() {
  if (started_.exchange(true)) return Status::Internal("already started");
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) return Errno("eventfd");
  epoll_event wake_event{};
  wake_event.events = EPOLLIN;
  wake_event.data.u64 = kWakeTag;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wake_event);

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(static_cast<std::uint16_t>(options_.listen_port));
  if (inet_pton(AF_INET, options_.listen_address.c_str(), &address.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad listen address " +
                                   options_.listen_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
           sizeof(address)) != 0) {
    return Errno("bind");
  }
  if (listen(listen_fd_, 128) != 0) return Errno("listen");
  socklen_t length = sizeof(address);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&address), &length);
  port_ = ntohs(address.sin_port);
  epoll_event listen_event{};
  listen_event.events = EPOLLIN;
  listen_event.data.u64 = kListenTag;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &listen_event);

  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void ChaosProxy::Stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  stop_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  if (wake_fd_ >= 0) close(wake_fd_);
  wake_fd_ = -1;
  if (epoll_fd_ >= 0) close(epoll_fd_);
  epoll_fd_ = -1;
}

ChaosProxy::Stats ChaosProxy::stats() const {
  Stats out;
  out.connections = stats_.connections.load();
  out.accept_resets = stats_.accept_resets.load();
  out.mid_rsts = stats_.mid_rsts.load();
  out.corruptions = stats_.corruptions.load();
  out.blackholes = stats_.blackholes.load();
  out.stalls = stats_.stalls.load();
  out.bytes_client_to_upstream = stats_.bytes_c2u.load();
  out.bytes_upstream_to_client = stats_.bytes_u2c.load();
  return out;
}

ChaosProxy::Fate ChaosProxy::DrawFate(std::uint64_t conn_index) const {
  const ChaosScenario& s = options_.scenario;
  std::uint64_t state = s.seed ^ (conn_index * 0x9e3779b97f4a7c15ull);
  const unsigned draw = static_cast<unsigned>(SplitMix64(&state) % 1000);
  unsigned edge = s.accept_reset_permille;
  if (draw < edge) return Fate::kAcceptReset;
  edge += s.mid_rst_permille;
  if (draw < edge) return Fate::kMidRst;
  edge += s.corrupt_permille;
  if (draw < edge) return Fate::kCorrupt;
  edge += s.blackhole_permille;
  if (draw < edge) return Fate::kBlackhole;
  edge += s.stall_permille;
  if (draw < edge) return Fate::kStall;
  return Fate::kNormal;
}

void ChaosProxy::Loop() {
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    const int ready = epoll_wait(epoll_fd_, events, 64, NextTimeoutMs());
    if (ready < 0 && errno != EINTR) break;
    for (int i = 0; i < ready; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        AcceptReady();
        continue;
      }
      if (tag == kWakeTag) {
        std::uint64_t drained = 0;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      const std::uint64_t conn_id = tag >> 1;
      auto it = conns_.find(conn_id);
      if (it == conns_.end()) continue;
      Conn& conn = *it->second;
      if ((tag & 1) == kSideUpstream) {
        HandleUpstreamEvent(conn, events[i].events);
      } else {
        if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
          HandleClientReadable(conn);
        }
        if (conns_.find(conn_id) != conns_.end() &&
            (events[i].events & EPOLLOUT) != 0) {
          FlushToClient(conn);
        }
      }
      if (conns_.find(conn_id) != conns_.end()) UpdateInterest(conn);
    }
    // Resume stalled connections whose hold expired.
    const Clock::time_point now = Clock::now();
    std::vector<std::uint64_t> resumed;
    for (auto& [id, conn] : conns_) {
      if (conn->stalled && now >= conn->stall_until) {
        conn->stalled = false;
        resumed.push_back(id);
      }
    }
    for (std::uint64_t id : resumed) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      FlushToClient(*it->second);
      if (conns_.find(id) != conns_.end()) UpdateInterest(*it->second);
    }
  }
  // Teardown on the loop thread: connection state is single-owner here.
  for (auto& [id, conn] : conns_) {
    if (conn->client_fd >= 0) close(conn->client_fd);
    if (conn->upstream_fd >= 0) close(conn->upstream_fd);
  }
  conns_.clear();
}

int ChaosProxy::NextTimeoutMs() const {
  int best = 500;
  const Clock::time_point now = Clock::now();
  for (const auto& [id, conn] : conns_) {
    if (!conn->stalled) continue;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                          conn->stall_until - now)
                          .count();
    best = std::max(0, std::min<int>(best, static_cast<int>(left)));
  }
  return best;
}

void ChaosProxy::AcceptReady() {
  while (true) {
    const int fd =
        accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd < 0) return;
    stats_.connections.fetch_add(1);
    const Fate fate = DrawFate(accepted_count_++);
    if (fate == Fate::kAcceptReset) {
      stats_.accept_resets.fetch_add(1);
      SetLingerReset(fd);
      close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto conn = std::make_unique<Conn>();
    conn->id = next_conn_id_++;
    conn->client_fd = fd;
    conn->fate = fate;
    if (fate == Fate::kBlackhole) {
      stats_.blackholes.fetch_add(1);
    } else {
      // Begin the upstream connect; completion (or failure) arrives as
      // EPOLLOUT on the upstream fd.
      conn->upstream_fd =
          socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
      sockaddr_in address{};
      address.sin_family = AF_INET;
      address.sin_port =
          htons(static_cast<std::uint16_t>(options_.upstream_port));
      const std::string numeric = options_.upstream_host == "localhost"
                                      ? "127.0.0.1"
                                      : options_.upstream_host;
      bool dial_failed =
          conn->upstream_fd < 0 ||
          inet_pton(AF_INET, numeric.c_str(), &address.sin_addr) != 1;
      if (!dial_failed) {
        const int rc =
            connect(conn->upstream_fd, reinterpret_cast<sockaddr*>(&address),
                    sizeof(address));
        dial_failed = rc != 0 && errno != EINPROGRESS && errno != EINTR;
        conn->upstream_connected = rc == 0;
      }
      if (dial_failed) {
        SetLingerReset(fd);
        close(fd);
        if (conn->upstream_fd >= 0) close(conn->upstream_fd);
        continue;
      }
      setsockopt(conn->upstream_fd, IPPROTO_TCP, TCP_NODELAY, &one,
                 sizeof(one));
      epoll_event up_event{};
      up_event.events = conn->upstream_connected ? EPOLLIN : EPOLLOUT;
      up_event.data.u64 = (conn->id << 1) | kSideUpstream;
      epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn->upstream_fd, &up_event);
      conn->upstream_events = up_event.events;
    }
    epoll_event client_event{};
    client_event.events = EPOLLIN;
    client_event.data.u64 = (conn->id << 1) | kSideClient;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &client_event);
    conn->client_events = EPOLLIN;
    conns_.emplace(conn->id, std::move(conn));
  }
}

void ChaosProxy::HandleClientReadable(Conn& conn) {
  // Flush helpers can close + erase the connection; every use of `conn`
  // after one must be guarded by re-finding this id.
  const std::uint64_t id = conn.id;
  char buffer[65536];
  while (true) {
    const ssize_t n = recv(conn.client_fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      if (conn.fate == Fate::kBlackhole) continue;  // swallow
      std::size_t usable = static_cast<std::size_t>(n);
      if (conn.fate == Fate::kMidRst && !conn.mid_rst_fired) {
        const std::size_t threshold = options_.scenario.rst_after_bytes;
        if (conn.c2u_count + usable >= threshold) {
          // Forward only the bytes below the threshold, then tear the
          // connection: the daemon sees a torn frame + EOF, the client RST.
          usable = threshold > conn.c2u_count ? threshold - conn.c2u_count : 0;
          conn.to_upstream.append(buffer, usable);
          conn.c2u_count += usable;
          conn.mid_rst_fired = true;
          stats_.mid_rsts.fetch_add(1);
          FlushToUpstream(conn);
          auto it = conns_.find(id);
          if (it != conns_.end()) ResetClient(*it->second);
          return;
        }
      }
      conn.to_upstream.append(buffer, usable);
      conn.c2u_count += usable;
      stats_.bytes_c2u.fetch_add(usable);
      FlushToUpstream(conn);
      if (conns_.find(id) == conns_.end()) return;
      if (conn.to_upstream_pending() > kBackpressureBytes) return;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    // Client EOF or error. A blackhole holds the socket open on EOF only if
    // the peer half-closed; a full close surfaces as error later — either
    // way once the client is done there is nothing left to swallow.
    if (n < 0) {
      CloseConn(conn.id);
      return;
    }
    conn.client_eof = true;
    if (conn.fate == Fate::kBlackhole) {
      CloseConn(conn.id);
      return;
    }
    if (conn.to_upstream_pending() == 0 && conn.upstream_connected) {
      shutdown(conn.upstream_fd, SHUT_WR);
    }
    if (conn.upstream_eof && conn.to_client_pending() == 0) {
      CloseConn(conn.id);
    }
    return;
  }
}

void ChaosProxy::HandleUpstreamEvent(Conn& conn, std::uint32_t events) {
  const std::uint64_t id = conn.id;  // guard: flushes can erase the conn
  if (!conn.upstream_connected) {
    if ((events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) == 0) return;
    int error = 0;
    socklen_t len = sizeof(error);
    if (getsockopt(conn.upstream_fd, SOL_SOCKET, SO_ERROR, &error, &len) !=
            0 ||
        error != 0) {
      ResetClient(conn);
      return;
    }
    conn.upstream_connected = true;
    FlushToUpstream(conn);
    if (conns_.find(id) == conns_.end()) return;
    if (conn.client_eof && conn.to_upstream_pending() == 0) {
      shutdown(conn.upstream_fd, SHUT_WR);
    }
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    FlushToUpstream(conn);
    if (conns_.find(id) == conns_.end()) return;
  }
  if ((events & (EPOLLIN | EPOLLHUP | EPOLLERR)) == 0) return;

  char buffer[65536];
  while (true) {
    const ssize_t n = recv(conn.upstream_fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      // Corruption: one bit of the stream flips at the configured offset.
      if (conn.fate == Fate::kCorrupt && !conn.corrupt_done) {
        const std::size_t offset = options_.scenario.corrupt_offset;
        if (offset >= conn.u2c_count &&
            offset < conn.u2c_count + static_cast<std::size_t>(n)) {
          buffer[offset - conn.u2c_count] ^= 0x20;
          conn.corrupt_done = true;
          stats_.corruptions.fetch_add(1);
        }
      }
      conn.u2c_count += static_cast<std::size_t>(n);
      conn.to_client.append(buffer, static_cast<std::size_t>(n));
      stats_.bytes_u2c.fetch_add(static_cast<std::size_t>(n));
      FlushToClient(conn);
      if (conns_.find(id) == conns_.end()) return;
      if (conn.to_client_pending() > kBackpressureBytes) return;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    conn.upstream_eof = true;
    if (conn.to_client_pending() == 0 && !conn.stalled) CloseConn(conn.id);
    return;
  }
}

void ChaosProxy::FlushToUpstream(Conn& conn) {
  if (!conn.upstream_connected || conn.upstream_fd < 0) return;
  while (conn.to_upstream_pending() > 0) {
    const ssize_t n = send(conn.upstream_fd,
                           conn.to_upstream.data() + conn.to_upstream_off,
                           conn.to_upstream_pending(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.to_upstream_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Upstream died mid-write: the client learns via reset.
    ResetClient(conn);
    return;
  }
  if (conn.to_upstream_pending() == 0) {
    conn.to_upstream.clear();
    conn.to_upstream_off = 0;
    if (conn.client_eof) shutdown(conn.upstream_fd, SHUT_WR);
  }
}

void ChaosProxy::FlushToClient(Conn& conn) {
  if (conn.stalled) return;
  while (conn.to_client_pending() > 0) {
    std::size_t chunk = conn.to_client_pending();
    if (conn.fate == Fate::kStall && !conn.stall_done) {
      // Deliver only the pre-stall prefix, then hold everything for
      // stall_ms — a partial write followed by silence.
      const std::size_t threshold = options_.scenario.stall_after_bytes;
      if (conn.u2c_written >= threshold) {
        conn.stall_done = true;
        conn.stalled = true;
        conn.stall_until =
            Clock::now() +
            std::chrono::milliseconds(options_.scenario.stall_ms);
        stats_.stalls.fetch_add(1);
        return;
      }
      chunk = std::min(chunk, threshold - conn.u2c_written);
    }
    const ssize_t n =
        send(conn.client_fd, conn.to_client.data() + conn.to_client_off, chunk,
             MSG_NOSIGNAL);
    if (n > 0) {
      conn.to_client_off += static_cast<std::size_t>(n);
      conn.u2c_written += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn.id);
    return;
  }
  if (conn.to_client_pending() == 0) {
    conn.to_client.clear();
    conn.to_client_off = 0;
    if (conn.upstream_eof) CloseConn(conn.id);
  }
}

void ChaosProxy::UpdateInterest(Conn& conn) {
  std::uint32_t client_want = 0;
  if (!conn.client_eof && conn.to_upstream_pending() <= kBackpressureBytes) {
    client_want |= EPOLLIN;
  }
  if (conn.to_client_pending() > 0 && !conn.stalled) client_want |= EPOLLOUT;
  if (client_want != conn.client_events) {
    epoll_event event{};
    event.events = client_want;
    event.data.u64 = (conn.id << 1) | kSideClient;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.client_fd, &event);
    conn.client_events = client_want;
  }
  if (conn.upstream_fd < 0) return;
  std::uint32_t upstream_want = 0;
  if (!conn.upstream_connected) {
    upstream_want = EPOLLOUT;
  } else {
    if (!conn.upstream_eof && conn.to_client_pending() <= kBackpressureBytes) {
      upstream_want |= EPOLLIN;
    }
    if (conn.to_upstream_pending() > 0) upstream_want |= EPOLLOUT;
  }
  if (upstream_want != conn.upstream_events) {
    epoll_event event{};
    event.events = upstream_want;
    event.data.u64 = (conn.id << 1) | kSideUpstream;
    epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.upstream_fd, &event);
    conn.upstream_events = upstream_want;
  }
}

void ChaosProxy::ResetClient(Conn& conn) {
  SetLingerReset(conn.client_fd);
  CloseConn(conn.id);
}

void ChaosProxy::CloseConn(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  if (conn.client_fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.client_fd, nullptr);
    close(conn.client_fd);
  }
  if (conn.upstream_fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.upstream_fd, nullptr);
    close(conn.upstream_fd);
  }
  conns_.erase(it);
}

}  // namespace ppref::resil
