/// \file client.h
/// \brief `ppref::resil` — the resilient client: retries, failover,
/// deadline budgeting, retry-after admission, and hedging around
/// `net::Client`.
///
/// `net::Client` is one socket and one attempt; this wrapper is the policy
/// layer that makes the client→daemon path survive a misbehaving network
/// and a browning-out daemon:
///
/// - **Multi-endpoint failover.** A transport failure (connect refused,
///   torn connection, per-attempt timeout) advances to the next endpoint
///   round-robin; the endpoint that answers stays sticky across Calls.
/// - **Deadline budgeting.** Each Call has one total wall-clock budget.
///   Every attempt gets `remaining / attempts_left` of it (or the explicit
///   per-attempt cap if smaller), so early attempts cannot eat the whole
///   budget and the last attempt still has time to succeed.
/// - **Backoff + retry-after.** Retries are spaced by decorrelated jitter
///   (backoff.h) and *never* re-admit earlier than the daemon's
///   `retry_after_ns` hint when one came back with `kResourceExhausted` —
///   the hint is the daemon's own estimate of when capacity frees up.
/// - **Retry budget.** Every retry spends a token (backoff.h); an empty
///   bucket fails fast with the last error instead of adding load.
/// - **Hedging.** With `hedge_after_ms > 0`, an attempt that has not
///   answered within the threshold gets a second, concurrent attempt on the
///   next endpoint; first usable answer wins. Hedges are tail-latency
///   insurance and are safe because of idempotency keys (below).
/// - **Idempotency.** Every Call is assigned a key (if the caller did not
///   set one); all attempts — retries and hedges — carry the same key and
///   wire id, so the daemon single-flights them and replays are
///   bit-identical (net/dedup.h). Degraded seeded-MC answers included: a
///   retried request gets *the* answer, not *an* answer.
///
/// Every decision is observable: `ppref_resil_*` counters when a registry
/// is configured, and a per-call `CallStats` out-param for tests.

#ifndef PPREF_RESIL_CLIENT_H_
#define PPREF_RESIL_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ppref/common/status.h"
#include "ppref/net/client.h"
#include "ppref/net/wire.h"
#include "ppref/resil/backoff.h"

namespace ppref::obs {
class MetricsRegistry;
}  // namespace ppref::obs

namespace ppref::resil {

struct Endpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

struct ResilOptions {
  /// Failover set, tried round-robin on transport failure. At least one.
  std::vector<Endpoint> endpoints;
  /// Total wall-clock budget per Call (connect + all attempts + waits);
  /// 0 = unbounded (discouraged — a blackholed endpoint then costs the full
  /// per-attempt io timeout per attempt).
  std::uint64_t total_deadline_ms = 2000;
  /// Attempts per Call (1 = no retries).
  unsigned max_attempts = 4;
  /// Hard cap on a single attempt; 0 = derive from the remaining budget
  /// (`remaining / attempts_left`).
  std::uint64_t attempt_timeout_ms = 0;
  /// Per-poll IO bound inside an attempt (net::ClientOptions).
  std::uint64_t io_timeout_ms = 30000;
  /// Hedge threshold: a pending attempt older than this spawns one
  /// concurrent second attempt on the next endpoint. 0 = hedging off.
  std::uint64_t hedge_after_ms = 0;
  /// Backoff between retries (the `seed` also feeds idempotency-key
  /// generation — two clients must not share a seed).
  BackoffOptions backoff;
  /// Retry-storm bound; see backoff.h.
  RetryBudgetOptions retry_budget;
  /// Counters land here when set (ppref_resil_*).
  obs::MetricsRegistry* registry = nullptr;

  // --- test seams (production leaves these unset) ---
  /// Replaces real sleeping between retries.
  std::function<void(std::uint64_t)> sleep_ms_fn;
  /// Replaces Client::Connect; receives the endpoint and the per-attempt
  /// client options (deadline already budgeted).
  std::function<StatusOr<net::Client>(const Endpoint&,
                                      const net::ClientOptions&)>
      dial_fn;
};

/// Per-Call decision record, for tests and tracing.
struct CallStats {
  unsigned attempts = 0;
  unsigned failovers = 0;
  unsigned hedges = 0;
  bool hedge_won = false;
  std::uint64_t waited_ms = 0;          // total backoff/retry-after sleeps
  std::uint64_t retry_after_hint_ns = 0;  // last hint honored
};

/// Thread-compatible (one Call at a time per instance); hedge threads are
/// internal and joined by the destructor.
class ResilientClient {
 public:
  explicit ResilientClient(ResilOptions options);
  ~ResilientClient();

  ResilientClient(const ResilientClient&) = delete;
  ResilientClient& operator=(const ResilientClient&) = delete;

  /// Executes one logical request to completion or terminal failure.
  /// Assigns `request.idempotency_key` when zero. Returns the daemon's
  /// WireResponse (possibly carrying a non-OK application status — e.g. the
  /// kResourceExhausted a budget-empty client fails fast with), or the last
  /// transport Status when no attempt produced a response.
  StatusOr<net::WireResponse> Call(net::WireRequest request,
                                   CallStats* stats = nullptr);

  /// Tokens left in the retry budget (observability).
  double retry_budget_tokens() const { return budget_.tokens(); }

 private:
  struct Instruments;
  struct AttemptOutcome;
  struct HedgeState;

  AttemptOutcome AttemptOnce(std::size_t endpoint_index,
                             const net::WireRequest& request,
                             std::uint64_t budget_ms);
  AttemptOutcome HedgedAttempt(std::size_t endpoint_index,
                               const net::WireRequest& request,
                               std::uint64_t budget_ms, CallStats* stats);
  void SpawnAttempt(std::shared_ptr<HedgeState> state, int index,
                    std::size_t endpoint_index, net::WireRequest request,
                    std::uint64_t budget_ms);
  void ReapFinishedThreads();
  void SleepMs(std::uint64_t ms);

  ResilOptions options_;
  RetryBudget budget_;
  std::uint64_t key_state_;  // splitmix stream for idempotency keys
  std::size_t endpoint_index_ = 0;
  std::unique_ptr<Instruments> instruments_;

  /// Hedge attempt threads; done_flags_[i] belongs to threads_[i]. A losing
  /// hedge runs to completion in the background; its thread is joined at
  /// the next Call (ReapFinishedThreads) or in the destructor.
  std::mutex threads_mutex_;
  std::vector<std::thread> threads_;
  std::vector<std::shared_ptr<std::atomic<bool>>> done_flags_;
};

}  // namespace ppref::resil

#endif  // PPREF_RESIL_CLIENT_H_
