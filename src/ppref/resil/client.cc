#include "ppref/resil/client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <optional>
#include <thread>
#include <utility>

#include "ppref/common/check.h"
#include "ppref/common/clock.h"
#include "ppref/obs/metrics.h"

namespace ppref::resil {

namespace {

std::uint64_t CeilNsToMs(std::uint64_t ns) { return (ns + 999'999) / 1'000'000; }

/// A response the caller should get back as-is: a success, a degraded
/// approximate answer (seeded — *the* answer), or a deterministic failure a
/// retry cannot fix.
bool TerminalResponse(const net::WireResponse& response) {
  if (response.status.ok() || response.approximate) return true;
  switch (response.status.code()) {
    case StatusCode::kResourceExhausted:  // shed — retry after the hint
    case StatusCode::kDeadlineExceeded:   // empty-handed timeout — retry
      return false;
    default:
      return true;
  }
}

}  // namespace

struct ResilientClient::Instruments {
  explicit Instruments(obs::MetricsRegistry& r)
      : calls(r.GetCounter("ppref_resil_calls_total",
                           "Logical calls through the resilient client")),
        failures(r.GetCounter("ppref_resil_call_failures_total",
                              "Calls that exhausted every recovery path")),
        attempts(r.GetCounter("ppref_resil_attempts_total",
                              "Individual attempts (first tries, retries, "
                              "and hedges)")),
        retries(r.GetCounter("ppref_resil_retries_total",
                             "Attempts after the first for one call")),
        failovers(r.GetCounter("ppref_resil_failovers_total",
                               "Endpoint advances after transport failure")),
        hedges(r.GetCounter("ppref_resil_hedges_total",
                            "Hedged second attempts launched")),
        hedge_wins(r.GetCounter("ppref_resil_hedge_wins_total",
                                "Calls answered by the hedge attempt")),
        budget_exhausted(
            r.GetCounter("ppref_resil_budget_exhausted_total",
                         "Retries refused by the empty retry budget")),
        retry_after_waits(
            r.GetCounter("ppref_resil_retry_after_waits_total",
                         "Waits extended to honor a retry_after_ns hint")) {}

  obs::Counter& calls;
  obs::Counter& failures;
  obs::Counter& attempts;
  obs::Counter& retries;
  obs::Counter& failovers;
  obs::Counter& hedges;
  obs::Counter& hedge_wins;
  obs::Counter& budget_exhausted;
  obs::Counter& retry_after_waits;
};

struct ResilientClient::AttemptOutcome {
  Status transport = Status::Ok();  // non-ok ⇔ no response arrived
  std::optional<net::WireResponse> response;
};

struct ResilientClient::HedgeState {
  std::mutex mutex;
  std::condition_variable cv;
  int launched = 0;
  int finished = 0;
  /// (attempt index, outcome) in completion order; index 1 is the hedge.
  std::vector<std::pair<int, AttemptOutcome>> results;
};

ResilientClient::ResilientClient(ResilOptions options)
    : options_(std::move(options)),
      budget_(options_.retry_budget),
      key_state_(options_.backoff.seed ^ 0x70707265665f6964ull) {
  PPREF_CHECK_MSG(!options_.endpoints.empty(),
                  "ResilientClient needs at least one endpoint");
  if (options_.max_attempts == 0) options_.max_attempts = 1;
  if (options_.registry != nullptr) {
    instruments_ = std::make_unique<Instruments>(*options_.registry);
  }
}

ResilientClient::~ResilientClient() {
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mutex_);
    threads.swap(threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) thread.join();
  }
}

void ResilientClient::SleepMs(std::uint64_t ms) {
  if (options_.sleep_ms_fn) {
    options_.sleep_ms_fn(ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

void ResilientClient::ReapFinishedThreads() {
  // Joining a still-running loser would block the call path, so only
  // threads whose done flag flipped get joined here; the destructor joins
  // the rest unconditionally.
  std::lock_guard<std::mutex> lock(threads_mutex_);
  std::size_t index = 0;
  while (index < done_flags_.size()) {
    if (done_flags_[index]->load(std::memory_order_acquire)) {
      if (threads_[index].joinable()) threads_[index].join();
      threads_.erase(threads_.begin() + static_cast<std::ptrdiff_t>(index));
      done_flags_.erase(done_flags_.begin() +
                        static_cast<std::ptrdiff_t>(index));
    } else {
      ++index;
    }
  }
}

ResilientClient::AttemptOutcome ResilientClient::AttemptOnce(
    std::size_t endpoint_index, const net::WireRequest& request,
    std::uint64_t budget_ms) {
  const Endpoint& endpoint =
      options_.endpoints[endpoint_index % options_.endpoints.size()];
  net::ClientOptions client_options;
  client_options.io_timeout_ms = options_.io_timeout_ms;
  client_options.total_deadline_ms = budget_ms;

  const std::uint64_t started_ns = MonotonicNowNs();
  StatusOr<net::Client> client =
      options_.dial_fn
          ? options_.dial_fn(endpoint, client_options)
          : net::Client::Connect(endpoint.host, endpoint.port, client_options);
  AttemptOutcome outcome;
  if (!client.ok()) {
    outcome.transport = client.status();
    return outcome;
  }
  if (budget_ms != 0) {
    // Re-budget the round-trip with whatever the connect left over, so the
    // whole attempt — not each phase — fits in `budget_ms`.
    const std::uint64_t elapsed_ms =
        CeilNsToMs(MonotonicNowNs() - started_ns);
    client.value().set_total_deadline_ms(
        budget_ms > elapsed_ms ? budget_ms - elapsed_ms : 1);
  }
  StatusOr<net::WireResponse> response = client.value().Call(request);
  if (!response.ok()) {
    outcome.transport = response.status();
    return outcome;
  }
  outcome.response = std::move(*response);
  return outcome;
}

void ResilientClient::SpawnAttempt(std::shared_ptr<HedgeState> state,
                                   int index, std::size_t endpoint_index,
                                   net::WireRequest request,
                                   std::uint64_t budget_ms) {
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    ++state->launched;
  }
  auto done = std::make_shared<std::atomic<bool>>(false);
  std::thread thread([this, state, index, endpoint_index,
                      request = std::move(request), budget_ms, done] {
    AttemptOutcome outcome = AttemptOnce(endpoint_index, request, budget_ms);
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->results.emplace_back(index, std::move(outcome));
      ++state->finished;
    }
    state->cv.notify_all();
    done->store(true, std::memory_order_release);
  });
  std::lock_guard<std::mutex> lock(threads_mutex_);
  threads_.push_back(std::move(thread));
  done_flags_.push_back(std::move(done));
}

ResilientClient::AttemptOutcome ResilientClient::HedgedAttempt(
    std::size_t endpoint_index, const net::WireRequest& request,
    std::uint64_t budget_ms, CallStats* stats) {
  auto state = std::make_shared<HedgeState>();
  SpawnAttempt(state, 0, endpoint_index, request, budget_ms);

  std::unique_lock<std::mutex> lock(state->mutex);
  const bool answered_fast = state->cv.wait_for(
      lock, std::chrono::milliseconds(options_.hedge_after_ms),
      [&] { return state->finished > 0; });
  if (!answered_fast) {
    lock.unlock();
    const std::uint64_t secondary_budget =
        budget_ms == 0
            ? 0
            : (budget_ms > options_.hedge_after_ms
                   ? budget_ms - options_.hedge_after_ms
                   : 1);
    SpawnAttempt(state, 1,
                 (endpoint_index + 1) % options_.endpoints.size(), request,
                 secondary_budget);
    if (instruments_ != nullptr) instruments_->hedges.Inc();
    if (instruments_ != nullptr) instruments_->attempts.Inc();
    if (stats != nullptr) ++stats->hedges;
    lock.lock();
  }
  // First usable (response-bearing) outcome wins; if every launched attempt
  // died in transport, take the first failure and let the caller fail over.
  state->cv.wait(lock, [&] {
    if (state->finished >= state->launched) return true;
    for (const auto& [index, outcome] : state->results) {
      if (outcome.response.has_value()) return true;
    }
    return false;
  });
  const std::pair<int, AttemptOutcome>* chosen = nullptr;
  for (const auto& entry : state->results) {
    if (entry.second.response.has_value()) {
      chosen = &entry;
      break;
    }
  }
  if (chosen == nullptr) chosen = &state->results.front();
  if (chosen->first == 1) {
    if (instruments_ != nullptr) instruments_->hedge_wins.Inc();
    if (stats != nullptr) stats->hedge_won = true;
  }
  return chosen->second;
}

StatusOr<net::WireResponse> ResilientClient::Call(net::WireRequest request,
                                                  CallStats* stats) {
  ReapFinishedThreads();
  if (instruments_ != nullptr) instruments_->calls.Inc();
  if (request.idempotency_key == 0) {
    std::uint64_t key = 0;
    while (key == 0) key = SplitMix64(&key_state_);
    request.idempotency_key = key;
  }

  const std::uint64_t deadline_ns =
      options_.total_deadline_ms == 0
          ? 0
          : MonotonicNowNs() + options_.total_deadline_ms * 1'000'000;
  Backoff backoff(options_.backoff);
  Status last_transport =
      Status::DeadlineExceeded("resil: no attempt completed");
  std::optional<net::WireResponse> last_response;

  for (unsigned attempt = 0; attempt < options_.max_attempts; ++attempt) {
    // Budget slice: an equal share of what is left, so the final attempt is
    // never starved by earlier slow ones.
    std::uint64_t budget_ms = options_.attempt_timeout_ms;
    if (deadline_ns != 0) {
      const std::uint64_t now = MonotonicNowNs();
      if (now >= deadline_ns) break;
      const std::uint64_t remaining_ms = CeilNsToMs(deadline_ns - now);
      const unsigned attempts_left = options_.max_attempts - attempt;
      std::uint64_t slice = remaining_ms / attempts_left;
      if (slice == 0) slice = 1;
      budget_ms = budget_ms == 0 ? slice : std::min(budget_ms, slice);
    }

    if (stats != nullptr) ++stats->attempts;
    if (instruments_ != nullptr) {
      instruments_->attempts.Inc();
      if (attempt > 0) instruments_->retries.Inc();
    }

    AttemptOutcome outcome =
        options_.hedge_after_ms > 0
            ? HedgedAttempt(endpoint_index_, request, budget_ms, stats)
            : AttemptOnce(endpoint_index_, request, budget_ms);

    std::uint64_t hint_ns = 0;
    if (outcome.response.has_value()) {
      net::WireResponse& response = *outcome.response;
      if (TerminalResponse(response)) {
        budget_.RecordSuccess();
        return std::move(response);
      }
      hint_ns = response.retry_after_ns;
      last_response = std::move(response);
    } else {
      last_transport = outcome.transport;
      // A torn or unreachable endpoint: advance round-robin so the next
      // attempt (and subsequent Calls) land elsewhere.
      if (options_.endpoints.size() > 1) {
        endpoint_index_ = (endpoint_index_ + 1) % options_.endpoints.size();
        if (stats != nullptr) ++stats->failovers;
        if (instruments_ != nullptr) instruments_->failovers.Inc();
      }
    }

    if (attempt + 1 == options_.max_attempts) break;
    if (!budget_.TrySpend()) {
      if (instruments_ != nullptr) instruments_->budget_exhausted.Inc();
      break;
    }

    std::uint64_t wait_ms = backoff.NextDelayMs();
    if (hint_ns != 0) {
      // Never re-admit earlier than the daemon's own capacity estimate.
      const std::uint64_t hint_ms = CeilNsToMs(hint_ns);
      if (hint_ms > wait_ms) {
        wait_ms = hint_ms;
        if (instruments_ != nullptr) instruments_->retry_after_waits.Inc();
      }
      if (stats != nullptr) stats->retry_after_hint_ns = hint_ns;
    }
    if (deadline_ns != 0) {
      const std::uint64_t now = MonotonicNowNs();
      if (now >= deadline_ns ||
          wait_ms >= CeilNsToMs(deadline_ns - now)) {
        break;  // the wait alone would blow the budget
      }
    }
    if (stats != nullptr) stats->waited_ms += wait_ms;
    SleepMs(wait_ms);
  }

  if (instruments_ != nullptr) instruments_->failures.Inc();
  if (last_response.has_value()) return std::move(*last_response);
  return last_transport;
}

}  // namespace ppref::resil
