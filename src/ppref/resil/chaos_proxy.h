/// \file chaos_proxy.h
/// \brief `ppref::resil` — a seeded TCP chaos proxy for deterministic
/// network-fault injection.
///
/// The proxy sits between a client and the daemon and misbehaves on
/// purpose. Each accepted connection draws a *fate* from a splitmix64
/// stream seeded by `(scenario.seed, connection index)` — the same seed and
/// arrival order always produce the same fault sequence, which is what lets
/// ctest drive every retry/hedge/failover branch of the resilient client
/// deterministically and lets the chaos gate assert bit-identical answers
/// under ≥10% faults.
///
/// Fates (drawn by cumulative permille thresholds, in this order):
///   accept-reset   SO_LINGER{1,0} + close right after accept → the client
///                  sees RST before it can write (connect-level failure).
///   mid-RST        forward the first `rst_after_bytes` client bytes, then
///                  RST the client and close the upstream → a torn write /
///                  torn response mid-request.
///   corrupt        flip one bit of the upstream→client stream at
///                  `corrupt_offset` → exercises frame/app-layer integrity
///                  checks (the client must treat it as transport failure).
///   blackhole      accept and swallow: never connect upstream, read and
///                  discard forever, answer nothing → only a client-side
///                  deadline gets out of this one.
///   stall          forward `stall_after_bytes` of the response, then hold
///                  the rest for `stall_ms` → a partial write with a
///                  latency spike (tail-latency fodder for hedging).
///   normal         faithful byte-for-byte forwarding.
///
/// Single epoll thread, same ownership discipline as net::Daemon: all
/// connection state lives on that thread, `Stop()` wakes it via eventfd.

#ifndef PPREF_RESIL_CHAOS_PROXY_H_
#define PPREF_RESIL_CHAOS_PROXY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "ppref/common/status.h"

namespace ppref::resil {

/// Fault mix. Permilles are cumulative draws out of 1000 per connection;
/// their sum must be ≤ 1000 (the remainder is the normal fate).
struct ChaosScenario {
  std::uint64_t seed = 1;
  unsigned accept_reset_permille = 0;
  unsigned mid_rst_permille = 0;
  /// Client bytes forwarded before the mid-RST fires.
  std::size_t rst_after_bytes = 16;
  unsigned corrupt_permille = 0;
  /// Byte offset in the upstream→client stream whose bit 5 is flipped.
  std::size_t corrupt_offset = 1;
  unsigned blackhole_permille = 0;
  unsigned stall_permille = 0;
  /// Stall length and how many response bytes escape before it.
  std::uint64_t stall_ms = 100;
  std::size_t stall_after_bytes = 8;
};

struct ChaosProxyOptions {
  std::string listen_address = "127.0.0.1";
  /// 0 = ephemeral; read the outcome from `port()`.
  int listen_port = 0;
  std::string upstream_host = "127.0.0.1";
  int upstream_port = 0;
  ChaosScenario scenario;
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosProxyOptions options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds, listens, and spawns the epoll thread.
  Status Start();

  /// The bound listen port after Start().
  int port() const { return port_; }

  /// Closes everything and joins the thread. Idempotent; ~ChaosProxy calls
  /// it.
  void Stop();

  /// Injection totals (monotonic, thread-safe).
  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t accept_resets = 0;
    std::uint64_t mid_rsts = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t blackholes = 0;
    std::uint64_t stalls = 0;
    std::uint64_t bytes_client_to_upstream = 0;
    std::uint64_t bytes_upstream_to_client = 0;
  };
  Stats stats() const;

 private:
  enum class Fate : std::uint8_t {
    kNormal,
    kAcceptReset,
    kMidRst,
    kCorrupt,
    kBlackhole,
    kStall,
  };
  struct Conn;

  void Loop();
  void AcceptReady();
  Fate DrawFate(std::uint64_t conn_index) const;
  void HandleClientReadable(Conn& conn);
  void HandleUpstreamEvent(Conn& conn, std::uint32_t events);
  void FlushToUpstream(Conn& conn);
  void FlushToClient(Conn& conn);
  void UpdateInterest(Conn& conn);
  void ResetClient(Conn& conn);
  void CloseConn(std::uint64_t id);
  int NextTimeoutMs() const;

  ChaosProxyOptions options_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_{false};
  std::thread thread_;

  std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t accepted_count_ = 0;

  struct AtomicStats {
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> accept_resets{0};
    std::atomic<std::uint64_t> mid_rsts{0};
    std::atomic<std::uint64_t> corruptions{0};
    std::atomic<std::uint64_t> blackholes{0};
    std::atomic<std::uint64_t> stalls{0};
    std::atomic<std::uint64_t> bytes_c2u{0};
    std::atomic<std::uint64_t> bytes_u2c{0};
  };
  AtomicStats stats_;
};

}  // namespace ppref::resil

#endif  // PPREF_RESIL_CHAOS_PROXY_H_
