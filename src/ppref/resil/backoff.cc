#include "ppref/resil/backoff.h"

#include <algorithm>

namespace ppref::resil {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Backoff::Backoff(BackoffOptions options)
    : options_(options), state_(options.seed), prev_ms_(options.base_ms) {
  if (options_.base_ms == 0) options_.base_ms = 1;
  if (options_.cap_ms < options_.base_ms) options_.cap_ms = options_.base_ms;
  prev_ms_ = options_.base_ms;
}

std::uint64_t Backoff::NextDelayMs() {
  // uniform(base, prev * 3): the walk's upper bound grows from the previous
  // *drawn* delay, not a deterministic doubling — that is the decorrelation.
  const std::uint64_t upper = std::max(options_.base_ms, prev_ms_ * 3);
  const std::uint64_t span = upper - options_.base_ms + 1;
  const std::uint64_t draw =
      options_.base_ms + SplitMix64(&state_) % span;
  prev_ms_ = std::min(options_.cap_ms, draw);
  return prev_ms_;
}

void Backoff::Reset() { prev_ms_ = options_.base_ms; }

RetryBudget::RetryBudget(RetryBudgetOptions options)
    : options_(options), tokens_(options.initial_tokens) {}

bool RetryBudget::TrySpend() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tokens_ < options_.cost_per_retry) return false;
  tokens_ -= options_.cost_per_retry;
  return true;
}

void RetryBudget::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  tokens_ = std::min(options_.max_tokens, tokens_ + options_.tokens_per_success);
}

double RetryBudget::tokens() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tokens_;
}

}  // namespace ppref::resil
