/// \file backoff.h
/// \brief `ppref::resil` — retry pacing primitives: decorrelated-jitter
/// backoff and the token-bucket retry budget.
///
/// Both exist to keep a fleet of retrying clients from synchronizing into a
/// retry storm against a browning-out daemon:
///
/// **Decorrelated jitter.** Plain exponential backoff with full jitter
/// still correlates clients that failed at the same instant. Decorrelated
/// jitter draws each delay from `uniform(base, prev * 3)`, capped — the
/// delay sequence itself is the random walk, so two clients that start in
/// lockstep diverge after one step. Delays are produced by a splitmix64
/// stream seeded per client: deterministic for tests, distinct across
/// clients by seed.
///
/// **Retry budget.** Backoff spaces retries out; the budget bounds how many
/// there can *be*. Each retry spends one token; each success drips a
/// configurable fraction of a token back (classic 10%: sustained retry
/// traffic is bounded at ~10% of successful traffic, so retries can absorb
/// a blip but cannot double load on a daemon that is already shedding).
/// An empty bucket means fail fast — return the last error now, because
/// adding load is the one thing guaranteed to make overload worse.

#ifndef PPREF_RESIL_BACKOFF_H_
#define PPREF_RESIL_BACKOFF_H_

#include <cstdint>
#include <mutex>

namespace ppref::resil {

/// The splitmix64 step: deterministic, seed-stable, good enough jitter.
std::uint64_t SplitMix64(std::uint64_t* state);

struct BackoffOptions {
  /// Lower bound of every delay (and the first draw's upper bound seed).
  std::uint64_t base_ms = 5;
  /// Upper clamp on any delay.
  std::uint64_t cap_ms = 2000;
  /// Jitter stream seed; same seed → same delay sequence.
  std::uint64_t seed = 1;
};

/// Decorrelated-jitter delay sequence. Not thread-safe: one instance per
/// logical call sequence (the resilient client owns one per Call).
class Backoff {
 public:
  explicit Backoff(BackoffOptions options = {});

  /// The next delay: `min(cap, uniform(base, prev * 3))`.
  std::uint64_t NextDelayMs();

  /// Restarts the sequence (prev := base) without reseeding the stream.
  void Reset();

 private:
  BackoffOptions options_;
  std::uint64_t state_;
  std::uint64_t prev_ms_;
};

struct RetryBudgetOptions {
  /// Tokens in the bucket at construction (burst allowance).
  double initial_tokens = 10.0;
  /// Bucket capacity; success refills saturate here.
  double max_tokens = 10.0;
  /// Tokens returned per recorded success (0.1 = retries bounded at ~10%
  /// of success throughput in steady state).
  double tokens_per_success = 0.1;
  /// Cost of one retry.
  double cost_per_retry = 1.0;
};

/// Token-bucket retry budget. Thread-safe (hedge threads and the caller
/// both touch it).
class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetOptions options = {});

  /// Spends one retry's cost if available; false = no budget, fail fast.
  bool TrySpend();

  /// Drips `tokens_per_success` back (saturating at `max_tokens`).
  void RecordSuccess();

  double tokens() const;

 private:
  RetryBudgetOptions options_;
  mutable std::mutex mutex_;
  double tokens_;
};

}  // namespace ppref::resil

#endif  // PPREF_RESIL_BACKOFF_H_
