#include "ppref/ppd/ucq_evaluator.h"

#include <algorithm>
#include <map>

#include "ppref/common/check.h"
#include "ppref/infer/conjunction.h"
#include "ppref/infer/labeled_rim.h"
#include "ppref/infer/top_prob.h"
#include "ppref/ppd/possible_worlds.h"
#include "ppref/ppd/reduction.h"
#include "ppref/query/classify.h"
#include "ppref/query/eval.h"

namespace ppref::ppd {
namespace {

/// The pattern events contributed to one session (identified by p-symbol +
/// session tuple) by the union's disjuncts.
struct SessionEvents {
  const SessionModel* model = nullptr;
  std::vector<infer::PatternInstance> events;
};

/// Pr(at least one event matches) by inclusion–exclusion over conjunctions.
double AnyEventProb(const SessionEvents& session,
                    const infer::PatternProbOptions& options) {
  const std::size_t t = session.events.size();
  PPREF_CHECK(t > 0);
  PPREF_CHECK_MSG(t <= 20, "inclusion-exclusion over " << t
                               << " disjunct events is infeasible");
  double total = 0.0;
  for (std::size_t mask = 1; mask < (std::size_t{1} << t); ++mask) {
    // Conjoin the selected events.
    infer::PatternInstance joint;
    bool first = true;
    for (std::size_t i = 0; i < t; ++i) {
      if (!(mask & (std::size_t{1} << i))) continue;
      joint = first ? session.events[i]
                    : infer::Conjoin(joint, session.events[i]);
      first = false;
    }
    const double prob = infer::PatternProb(
        infer::LabeledRimModel(session.model->model(), joint.labeling),
        joint.pattern, options);
    const bool odd = __builtin_popcountll(mask) % 2 == 1;
    total += odd ? prob : -prob;
  }
  return total;
}

/// AnyEventProb routed through a serve::Server: every inclusion–exclusion
/// conjunction goes out as one deduplicated batch; the signed reduction
/// runs in mask order, bit-identical to the serial loop above.
double AnyEventProb(const SessionEvents& session, serve::Server& server) {
  const std::size_t t = session.events.size();
  PPREF_CHECK(t > 0);
  PPREF_CHECK_MSG(t <= 20, "inclusion-exclusion over " << t
                               << " disjunct events is infeasible");
  const std::size_t terms = (std::size_t{1} << t) - 1;
  // The batch borrows the conjoined instances, so both vectors are
  // reserved up front — no relocation under the borrowed pointers.
  std::vector<infer::PatternInstance> joints;
  std::vector<infer::LabeledRimModel> models;
  joints.reserve(terms);
  models.reserve(terms);
  std::vector<serve::Request> batch;
  for (std::size_t mask = 1; mask <= terms; ++mask) {
    infer::PatternInstance joint;
    bool first = true;
    for (std::size_t i = 0; i < t; ++i) {
      if (!(mask & (std::size_t{1} << i))) continue;
      joint = first ? session.events[i]
                    : infer::Conjoin(joint, session.events[i]);
      first = false;
    }
    joints.push_back(std::move(joint));
    models.emplace_back(session.model->model(), joints.back().labeling);
    serve::Request request;
    request.kind = serve::Request::Kind::kPatternProb;
    request.model = &models.back();
    request.pattern = &joints.back().pattern;
    batch.push_back(request);
  }
  const std::vector<serve::Response> responses = server.EvaluateBatch(batch);
  double total = 0.0;
  for (std::size_t mask = 1; mask <= terms; ++mask) {
    const double prob = responses[mask - 1].probability;
    const bool odd = __builtin_popcountll(mask) % 2 == 1;
    total += odd ? prob : -prob;
  }
  return total;
}

/// Shared driver for the serial and server-routed union evaluators:
/// groups the disjuncts' reductions by session and folds `any_event` over
/// the groups in session order.
template <typename AnyEvent>
double EvaluateBooleanUnionImpl(const RimPpd& ppd, const query::UnionQuery& ucq,
                                const AnyEvent& any_event) {
  PPREF_CHECK(ucq.IsBoolean());
  // Key: p-symbol + session tuple. Sessions of distinct symbols are
  // distinct keys and independent.
  std::map<std::pair<std::string, db::Tuple>, SessionEvents> by_session;

  for (const query::ConjunctiveQuery& disjunct : ucq.disjuncts()) {
    if (disjunct.PAtoms().empty()) {
      if (query::IsSatisfiable(disjunct, ppd.ODatabase())) return 1.0;
      continue;  // a false deterministic disjunct contributes nothing
    }
    const std::string symbol = disjunct.PAtoms().front()->symbol;
    for (const SessionReduction& reduction : ReduceItemwise(ppd, disjunct)) {
      if (!reduction.satisfiable || reduction.reflexive_preference) continue;
      SessionEvents& events = by_session[{symbol, reduction.session}];
      events.model = reduction.model;
      events.events.push_back(
          {reduction.pattern, reduction.labeling});
    }
  }

  double none = 1.0;
  for (const auto& [key, events] : by_session) {
    none *= 1.0 - any_event(events);
  }
  return 1.0 - none;
}

}  // namespace

double EvaluateBooleanUnion(const RimPpd& ppd, const query::UnionQuery& ucq,
                            const infer::PatternProbOptions& options) {
  return EvaluateBooleanUnionImpl(ppd, ucq, [&](const SessionEvents& events) {
    return AnyEventProb(events, options);
  });
}

double EvaluateBooleanUnion(const RimPpd& ppd, const query::UnionQuery& ucq,
                            serve::Server& server) {
  return EvaluateBooleanUnionImpl(ppd, ucq, [&](const SessionEvents& events) {
    return AnyEventProb(events, server);
  });
}

std::vector<Answer> EvaluateUnionQuery(const RimPpd& ppd,
                                       const query::UnionQuery& ucq) {
  if (ucq.IsBoolean()) {
    std::vector<Answer> answers;
    const double confidence = EvaluateBooleanUnion(ppd, ucq);
    if (confidence > 0.0) answers.push_back({db::Tuple{}, confidence});
    return answers;
  }
  // Candidate answers: union of each disjunct's candidates over the
  // possibility database.
  const db::Database possibility = PossibilityDatabase(ppd);
  std::vector<db::Tuple> candidates;
  for (const query::ConjunctiveQuery& disjunct : ucq.disjuncts()) {
    for (const db::Tuple& tuple : query::Evaluate(disjunct, possibility)) {
      if (std::find(candidates.begin(), candidates.end(), tuple) ==
          candidates.end()) {
        candidates.push_back(tuple);
      }
    }
  }
  std::vector<Answer> answers;
  for (const db::Tuple& candidate : candidates) {
    std::vector<query::ConjunctiveQuery> bound;
    for (const query::ConjunctiveQuery& disjunct : ucq.disjuncts()) {
      query::ConjunctiveQuery q = disjunct;
      for (std::size_t i = 0; i < candidate.size(); ++i) {
        q = q.Substitute(disjunct.head()[i], candidate[i]);
      }
      bound.push_back(std::move(q));
    }
    const double confidence =
        EvaluateBooleanUnion(ppd, query::UnionQuery(std::move(bound)));
    if (confidence > 0.0) answers.push_back({candidate, confidence});
  }
  std::stable_sort(answers.begin(), answers.end(),
                   [](const Answer& a, const Answer& b) {
                     return a.confidence > b.confidence;
                   });
  return answers;
}

double EvaluateBooleanUnionByEnumeration(const RimPpd& ppd,
                                         const query::UnionQuery& ucq,
                                         double max_worlds) {
  PPREF_CHECK(ucq.IsBoolean());
  double total = 0.0;
  ForEachWorld(ppd, max_worlds, [&](const db::Database& world, double prob) {
    for (const query::ConjunctiveQuery& disjunct : ucq.disjuncts()) {
      if (query::IsSatisfiable(disjunct, world)) {
        total += prob;
        return;
      }
    }
  });
  return total;
}

}  // namespace ppref::ppd
