#include "ppref/ppd/splitting.h"

#include <algorithm>
#include <deque>
#include <set>

#include "ppref/common/check.h"
#include "ppref/ppd/evaluator.h"
#include "ppref/ppd/ucq_evaluator.h"
#include "ppref/query/classify.h"
#include "ppref/query/gaifman.h"

namespace ppref::ppd {
namespace {

using query::Atom;
using query::ConjunctiveQuery;
using query::Term;

/// Picks the variable to ground: a member of some o-graph component (after
/// deleting session variables) that holds two or more item variables.
/// Prefers a non-item variable in the component (grounding it preserves the
/// item variables for the reduction). Returns empty when the query is
/// already itemwise.
std::string PickGroundingVariable(const ConjunctiveQuery& query) {
  const query::VariableGraph o_graph = query::VariableGraph::GaifmanO(query);
  const std::vector<std::string> item_vars = query.ItemVariables();
  for (const auto& component :
       o_graph.ComponentsWithout(query.SessionVariables())) {
    unsigned items_here = 0;
    for (const std::string& variable : component) {
      if (std::find(item_vars.begin(), item_vars.end(), variable) !=
          item_vars.end()) {
        ++items_here;
      }
    }
    if (items_here < 2) continue;
    for (const std::string& variable : component) {
      if (std::find(item_vars.begin(), item_vars.end(), variable) ==
          item_vars.end()) {
        return variable;  // a pure join variable
      }
    }
    return component.front();  // all connectors are item variables
  }
  return "";
}

/// Candidate values of `variable`: the intersection, over every o-atom
/// position it occupies, of the values stored in that column. Complete
/// because o-instances are world-invariant.
std::vector<db::Value> CandidateValues(const RimPpd& ppd,
                                       const ConjunctiveQuery& query,
                                       const std::string& variable) {
  bool first_constraint = true;
  std::set<db::Value> candidates;
  for (const Atom* atom : query.OAtoms()) {
    for (std::size_t position = 0; position < atom->terms.size(); ++position) {
      const Term& term = atom->terms[position];
      if (!term.is_variable() || term.variable() != variable) continue;
      std::set<db::Value> column;
      for (const db::Tuple& tuple : ppd.OInstance(atom->symbol)) {
        column.insert(tuple[position]);
      }
      if (first_constraint) {
        candidates = std::move(column);
        first_constraint = false;
      } else {
        std::set<db::Value> intersection;
        std::set_intersection(candidates.begin(), candidates.end(),
                              column.begin(), column.end(),
                              std::inserter(intersection,
                                            intersection.begin()));
        candidates = std::move(intersection);
      }
    }
  }
  PPREF_CHECK_MSG(!first_constraint,
                  "grounding variable '" << variable
                                         << "' occurs in no o-atom");
  return std::vector<db::Value>(candidates.begin(), candidates.end());
}

}  // namespace

std::vector<ConjunctiveQuery> SplitIntoItemwise(const RimPpd& ppd,
                                                const ConjunctiveQuery& query,
                                                unsigned max_disjuncts) {
  if (!query.IsBoolean()) {
    throw SchemaError("splitting expects a Boolean query");
  }
  if (!query::IsSessionwise(query)) {
    throw SchemaError("splitting requires a sessionwise query: " +
                      query.ToString());
  }
  std::vector<ConjunctiveQuery> done;
  std::deque<ConjunctiveQuery> pending = {query};
  std::set<std::string> seen;  // dedupe syntactically equal disjuncts
  while (!pending.empty()) {
    ConjunctiveQuery current = std::move(pending.front());
    pending.pop_front();
    if (query::IsItemwise(current)) {
      if (seen.insert(current.ToString()).second) {
        done.push_back(std::move(current));
      }
      continue;
    }
    const std::string variable = PickGroundingVariable(current);
    PPREF_CHECK_MSG(!variable.empty(),
                    "non-itemwise query with no violating component");
    for (const db::Value& value : CandidateValues(ppd, current, variable)) {
      pending.push_back(current.Substitute(variable, value));
      if (done.size() + pending.size() > max_disjuncts) {
        throw SchemaError("splitting exceeded " +
                          std::to_string(max_disjuncts) +
                          " disjuncts; the join domain is too large");
      }
    }
  }
  return done;
}

double EvaluateBooleanBySplitting(const RimPpd& ppd,
                                  const ConjunctiveQuery& query,
                                  unsigned max_disjuncts) {
  if (query.PAtoms().empty() || query::IsItemwise(query)) {
    return EvaluateBoolean(ppd, query);
  }
  const std::vector<ConjunctiveQuery> disjuncts =
      SplitIntoItemwise(ppd, query, max_disjuncts);
  if (disjuncts.empty()) return 0.0;  // no candidate values at all
  return EvaluateBooleanUnion(ppd, query::UnionQuery(disjuncts));
}

}  // namespace ppref::ppd
