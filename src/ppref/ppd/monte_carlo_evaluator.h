/// \file monte_carlo_evaluator.h
/// \brief Monte-Carlo query evaluation over RIM-PPDs: sample one ranking per
/// session, materialize the world, evaluate the CQ. Works for any CQ
/// (including the #P-hard side of the dichotomy) at the cost of sampling
/// error — the approximate-answering direction the paper's §6 raises.

#ifndef PPREF_PPD_MONTE_CARLO_EVALUATOR_H_
#define PPREF_PPD_MONTE_CARLO_EVALUATOR_H_

#include "ppref/common/random.h"
#include "ppref/infer/monte_carlo.h"
#include "ppref/ppd/ppd.h"
#include "ppref/query/cq.h"

namespace ppref::ppd {

/// Estimates conf_Q([E]) for a Boolean CQ from `samples` sampled worlds.
infer::McEstimate EstimateBoolean(const RimPpd& ppd,
                                  const query::ConjunctiveQuery& query,
                                  unsigned samples, Rng& rng);

/// Seeded, optionally parallel estimate of conf_Q([E]). Worlds are sampled
/// in fixed blocks seeded from (options.seed, block) and fanned out over
/// ClampThreads(options.threads) workers (0 = auto), so the estimate is
/// identical for every thread count — see infer::McOptions.
infer::McEstimate EstimateBoolean(const RimPpd& ppd,
                                  const query::ConjunctiveQuery& query,
                                  const infer::McOptions& options);

}  // namespace ppref::ppd

#endif  // PPREF_PPD_MONTE_CARLO_EVALUATOR_H_
