/// \file splitting.h
/// \brief Exact evaluation beyond the itemwise class by grounding the
/// offending join variables.
///
/// Thm 4.5's hardness (e.g. Q2, whose party variable p joins the two item
/// variables) stems from *unboundedly many* join values. For a concrete
/// database the values a join variable can take are fixed by the
/// o-instances, so substituting each candidate value yields an equivalent
/// union of CQs; once every disjunct is itemwise, the UCQ evaluator
/// finishes exactly. Cost: exponential in the number of satisfiable
/// groundings (inclusion–exclusion), not in session sizes or counts — the
/// dichotomy is about data complexity with unbounded domains, and this
/// evaluator makes that boundary tangible.

#ifndef PPREF_PPD_SPLITTING_H_
#define PPREF_PPD_SPLITTING_H_

#include <vector>

#include "ppref/ppd/ppd.h"
#include "ppref/query/cq.h"

namespace ppref::ppd {

/// Rewrites `query` into an equivalent list of *itemwise* (or p-atom-free)
/// CQs by repeatedly grounding, over its candidate values, a variable that
/// lies on an o-path between item variables. The query must be Boolean and
/// sessionwise. Throws SchemaError when the expansion exceeds
/// `max_disjuncts` or no groundable variable exists.
std::vector<query::ConjunctiveQuery> SplitIntoItemwise(
    const RimPpd& ppd, const query::ConjunctiveQuery& query,
    unsigned max_disjuncts = 64);

/// conf_Q([E]) for a sessionwise Boolean CQ, itemwise or not: itemwise
/// queries go straight to the Thm 4.4 evaluator; others are split and
/// evaluated as a union. Throws SchemaError for non-sessionwise queries or
/// oversized expansions.
double EvaluateBooleanBySplitting(const RimPpd& ppd,
                                  const query::ConjunctiveQuery& query,
                                  unsigned max_disjuncts = 64);

}  // namespace ppref::ppd

#endif  // PPREF_PPD_SPLITTING_H_
