/// \file analytics.h
/// \brief Cross-session preference analytics over one p-instance — the
/// "preference-to-preference" operations (rank aggregation, winner
/// analysis) that §1 motivates on top of the probabilistic representation.
///
/// All statistics are exact, built from the per-session polynomial DPs
/// (position distributions) and averaged across sessions.

#ifndef PPREF_PPD_ANALYTICS_H_
#define PPREF_PPD_ANALYTICS_H_

#include <vector>

#include "ppref/ppd/ppd.h"

namespace ppref::ppd {

/// A per-item statistic aggregated across sessions.
struct ItemStat {
  db::Value item;
  double value = 0.0;
  /// Number of sessions whose model ranks this item.
  unsigned supporting_sessions = 0;
};

/// Mean over sessions of Pr(item ranked first); sessions not ranking the
/// item contribute probability 0. Sorted by decreasing probability.
std::vector<ItemStat> WinnerDistribution(const RimPreferenceInstance& instance);

/// Mean expected (0-based) position per item, averaged over the sessions
/// that rank it. Sorted by increasing expected position.
std::vector<ItemStat> MeanExpectedPositions(
    const RimPreferenceInstance& instance);

/// A consensus order over the union of all session items: sorted by the
/// mean expected position (ties by value order).
std::vector<db::Value> CrossSessionConsensus(
    const RimPreferenceInstance& instance);

}  // namespace ppref::ppd

#endif  // PPREF_PPD_ANALYTICS_H_
