#include "ppref/ppd/approx.h"

#include <cmath>

#include "ppref/common/check.h"
#include "ppref/db/preference_instance.h"
#include "ppref/query/eval.h"
#include "ppref/rim/sampler.h"

namespace ppref::ppd {
namespace {

/// Samples one possible world of the PPD.
db::Database SampleWorld(const RimPpd& ppd, Rng& rng) {
  db::Database world(ppd.schema());
  for (const std::string& symbol : ppd.schema().OSymbols()) {
    for (const db::Tuple& tuple : ppd.OInstance(symbol)) {
      world.Add(symbol, tuple);
    }
  }
  for (const std::string& symbol : ppd.schema().PSymbols()) {
    for (const auto& [session, model] : ppd.PInstance(symbol).sessions()) {
      const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
      std::vector<db::Value> order;
      order.reserve(tau.size());
      for (rim::Position p = 0; p < tau.size(); ++p) {
        order.push_back(model.ItemOf(tau.At(p)));
      }
      db::AddRankingAsPairs(world, symbol, session, order);
    }
  }
  return world;
}

ApproxResult RunSampler(const RimPpd& ppd, double epsilon, double delta,
                        Rng& rng,
                        const std::function<bool(const db::Database&)>& holds) {
  ApproxResult result;
  result.epsilon = epsilon;
  result.delta = delta;
  result.samples = HoeffdingSamples(epsilon, delta);
  unsigned hits = 0;
  for (unsigned s = 0; s < result.samples; ++s) {
    if (holds(SampleWorld(ppd, rng))) ++hits;
  }
  result.estimate = static_cast<double>(hits) / result.samples;
  return result;
}

}  // namespace

unsigned HoeffdingSamples(double epsilon, double delta) {
  PPREF_CHECK_MSG(epsilon > 0.0 && epsilon < 1.0,
                  "epsilon must be in (0, 1), got " << epsilon);
  PPREF_CHECK_MSG(delta > 0.0 && delta < 1.0,
                  "delta must be in (0, 1), got " << delta);
  return static_cast<unsigned>(
      std::ceil(std::log(2.0 / delta) / (2.0 * epsilon * epsilon)));
}

ApproxResult ApproximateBoolean(const RimPpd& ppd,
                                const query::ConjunctiveQuery& query,
                                double epsilon, double delta, Rng& rng) {
  PPREF_CHECK(query.IsBoolean());
  return RunSampler(ppd, epsilon, delta, rng, [&](const db::Database& world) {
    return query::IsSatisfiable(query, world);
  });
}

ApproxResult ApproximateBooleanUnion(const RimPpd& ppd,
                                     const query::UnionQuery& ucq,
                                     double epsilon, double delta, Rng& rng) {
  PPREF_CHECK(ucq.IsBoolean());
  return RunSampler(ppd, epsilon, delta, rng, [&](const db::Database& world) {
    for (const query::ConjunctiveQuery& disjunct : ucq.disjuncts()) {
      if (query::IsSatisfiable(disjunct, world)) return true;
    }
    return false;
  });
}

}  // namespace ppref::ppd
