#include "ppref/ppd/possible_worlds.h"

#include <algorithm>

#include "ppref/common/check.h"
#include "ppref/common/combinatorics.h"
#include "ppref/db/preference_instance.h"
#include "ppref/query/eval.h"

namespace ppref::ppd {

double WorldCount(const RimPpd& ppd) {
  double count = 1.0;
  for (const std::string& symbol : ppd.schema().PSymbols()) {
    for (const auto& [session, model] : ppd.PInstance(symbol).sessions()) {
      count *= FactorialAsDouble(model.size());
    }
  }
  return count;
}

void ForEachWorld(const RimPpd& ppd, double max_worlds,
                  const std::function<void(const db::Database&, double)>& visit) {
  PPREF_CHECK_MSG(WorldCount(ppd) <= max_worlds,
                  "possible-world enumeration over " << WorldCount(ppd)
                                                     << " worlds exceeds cap "
                                                     << max_worlds);
  // Collect (symbol, session, rankings) triples; symbols are re-derived here
  // so the string storage outlives the lambdas below.
  const std::vector<std::string> p_symbols = ppd.schema().PSymbols();
  struct Entry {
    std::string symbol;
    db::Tuple session;
    std::vector<std::pair<std::vector<db::Value>, double>> rankings;
  };
  std::vector<Entry> entries;
  for (const std::string& symbol : p_symbols) {
    for (const auto& [session, model] : ppd.PInstance(symbol).sessions()) {
      Entry entry;
      entry.symbol = symbol;
      entry.session = session;
      model.model().ForEachRanking([&](const rim::Ranking& tau, double prob) {
        std::vector<db::Value> order;
        order.reserve(tau.size());
        for (rim::Position p = 0; p < tau.size(); ++p) {
          order.push_back(model.ItemOf(tau.At(p)));
        }
        entry.rankings.emplace_back(std::move(order), prob);
      });
      entries.push_back(std::move(entry));
    }
  }

  // Odometer over the per-session ranking choices.
  std::vector<std::size_t> choice(entries.size(), 0);
  while (true) {
    db::Database world(ppd.schema());
    for (const std::string& symbol : ppd.schema().OSymbols()) {
      for (const db::Tuple& tuple : ppd.OInstance(symbol)) {
        world.Add(symbol, tuple);
      }
    }
    double probability = 1.0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      const auto& [order, prob] = entries[i].rankings[choice[i]];
      probability *= prob;
      db::AddRankingAsPairs(world, entries[i].symbol, entries[i].session,
                            order);
    }
    visit(world, probability);

    // Advance the odometer.
    std::size_t index = 0;
    while (index < entries.size()) {
      if (++choice[index] < entries[index].rankings.size()) break;
      choice[index] = 0;
      ++index;
    }
    if (index == entries.size()) break;
  }
}

double EvaluateBooleanByEnumeration(const RimPpd& ppd,
                                    const query::ConjunctiveQuery& query,
                                    double max_worlds) {
  PPREF_CHECK(query.IsBoolean());
  double total = 0.0;
  ForEachWorld(ppd, max_worlds, [&](const db::Database& world, double prob) {
    if (query::IsSatisfiable(query, world)) total += prob;
  });
  return total;
}

std::vector<Answer> EvaluateQueryByEnumeration(
    const RimPpd& ppd, const query::ConjunctiveQuery& query,
    double max_worlds) {
  std::vector<Answer> answers;
  ForEachWorld(ppd, max_worlds, [&](const db::Database& world, double prob) {
    for (const db::Tuple& tuple : query::Evaluate(query, world)) {
      auto it = std::find_if(answers.begin(), answers.end(),
                             [&](const Answer& a) { return a.tuple == tuple; });
      if (it == answers.end()) {
        answers.push_back({tuple, prob});
      } else {
        it->confidence += prob;
      }
    }
  });
  std::stable_sort(answers.begin(), answers.end(),
                   [](const Answer& a, const Answer& b) {
                     return a.confidence > b.confidence;
                   });
  return answers;
}

}  // namespace ppref::ppd
