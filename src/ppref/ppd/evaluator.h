/// \file evaluator.h
/// \brief Query evaluation over RIM-PPDs — §3.3 semantics, Thm 4.4 algorithm.
///
/// `EvaluateBoolean` computes conf_Q([E]) for itemwise Boolean CQs in
/// polynomial data complexity by combining the §4.4 reduction with TopProb
/// and session independence:
///   conf = 1 − Π_{s ∈ r_Q} (1 − Pr(s ⊨ Q^s)).
/// `EvaluateQuery` handles non-Boolean CQs by enumerating possible answers
/// and computing each answer's confidence.

#ifndef PPREF_PPD_EVALUATOR_H_
#define PPREF_PPD_EVALUATOR_H_

#include <vector>

#include "ppref/common/status.h"
#include "ppref/db/database.h"
#include "ppref/infer/top_prob.h"
#include "ppref/ppd/ppd.h"
#include "ppref/query/cq.h"
#include "ppref/serve/server.h"

namespace ppref::ppd {

/// A possible answer with its confidence (marginal probability).
struct Answer {
  db::Tuple tuple;
  double confidence = 0.0;
};

/// conf_Q([E]) for a Boolean CQ. Queries without p-atoms evaluate
/// deterministically over the o-instances (0 or 1). Throws SchemaError when
/// the query has p-atoms but is not itemwise — use the possible-worlds or
/// Monte-Carlo evaluators for those.
double EvaluateBoolean(const RimPpd& ppd, const query::ConjunctiveQuery& query);

/// EvaluateBoolean with per-session inference options: each session compiles
/// one DP plan reused across its candidate matchings, and `options.threads`
/// fans those matchings out (bit-identical ordered reduction).
double EvaluateBoolean(const RimPpd& ppd, const query::ConjunctiveQuery& query,
                       const infer::PatternProbOptions& options);

/// EvaluateBoolean routed through a shared serve::Server: the per-session
/// pattern probabilities are submitted as one deduplicated batch, so
/// repeated sessions (same model, same pattern) are computed once, plans
/// and results are reused across *queries* via the server's caches, and
/// unique work runs on the server's worker pool. Bit-identical to the
/// serial evaluator (the server's determinism guarantee plus session-order
/// reduction).
double EvaluateBoolean(const RimPpd& ppd, const query::ConjunctiveQuery& query,
                       serve::Server& server);

/// conf_Q([E]) through the fault-tolerant serving boundary.
struct BooleanResult {
  double confidence = 0.0;
  /// True when at least one session probability is a Monte-Carlo fallback
  /// (server degradation policy); `std_error` then bounds the confidence's
  /// error: since ∂(1 − Π(1 − p_i))/∂p_i = Π_{j≠i}(1 − p_j) ≤ 1, the
  /// first-order error is at most the sum of the sessions' standard errors.
  bool approximate = false;
  double std_error = 0.0;
};

/// The Status-returning twin of the Server overload of EvaluateBoolean:
/// never throws and never aborts on operational failures. Non-Boolean or
/// non-itemwise queries map to kInvalidArgument (instead of SchemaError);
/// `control` is applied to every per-session request, so a deadline or
/// cancellation surfaces as the first failing session's status. When the
/// server degrades to Monte-Carlo, the result is marked approximate with a
/// conservative error bound (see BooleanResult).
StatusOr<BooleanResult> TryEvaluateBoolean(
    const RimPpd& ppd, const query::ConjunctiveQuery& query,
    serve::Server& server, const serve::RequestControl& control = {});

/// EvaluateBoolean with the independent per-session TopProb instances
/// computed on `threads` workers (§6's CPU-parallelism direction;
/// `threads == 0` means auto, per ppref::ClampThreads). Work
/// assignment is static, so the result is bit-identical to the serial
/// evaluator. Session-level parallelism composes poorly with matching-level
/// parallelism on small machines, so sessions run their matchings serially
/// here; prefer the options overload above to parallelize within few large
/// sessions instead.
double EvaluateBooleanParallel(const RimPpd& ppd,
                               const query::ConjunctiveQuery& query,
                               unsigned threads);

/// Q(E): every possible answer with positive confidence, sorted by
/// decreasing confidence (ties: first-found order). The query must be
/// itemwise under every head substitution, which holds whenever the query
/// itself is itemwise.
std::vector<Answer> EvaluateQuery(const RimPpd& ppd,
                                  const query::ConjunctiveQuery& query);

/// The "possibility database": o-instances plus, per session, every ordered
/// pair of distinct items. Every possible world's p-relations are subsets,
/// so evaluating a CQ here enumerates a superset of the possible answers.
db::Database PossibilityDatabase(const RimPpd& ppd);

}  // namespace ppref::ppd

#endif  // PPREF_PPD_EVALUATOR_H_
