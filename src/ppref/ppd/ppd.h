/// \file ppd.h
/// \brief RIM-PPDs: probabilistic preference databases with session-
/// independent RIM models — §3.2.
///
/// A `RimPpd` assigns an ordinary instance to every o-symbol and a
/// `RimPreferenceInstance` (the paper's M-instance (r, μ)) to every
/// p-symbol. A possible world draws one ranking per session independently
/// and materializes it as pairwise preference tuples.

#ifndef PPREF_PPD_PPD_H_
#define PPREF_PPD_PPD_H_

#include <map>
#include <string>
#include <vector>

#include "ppref/db/database.h"
#include "ppref/db/relation.h"
#include "ppref/db/schema.h"
#include "ppref/ppd/preference_model.h"

namespace ppref::ppd {

/// The M-instance (r, μ) of one p-symbol: sessions with their models.
class RimPreferenceInstance {
 public:
  RimPreferenceInstance() = default;
  explicit RimPreferenceInstance(db::PreferenceSignature signature)
      : signature_(std::move(signature)) {}

  const db::PreferenceSignature& signature() const { return signature_; }

  /// Adds a session with its model. Throws SchemaError when the session
  /// tuple's arity mismatches the signature or the session already exists
  /// (r is a set).
  void AddSession(db::Tuple session, SessionModel model);

  std::size_t session_count() const { return sessions_.size(); }

  const std::vector<std::pair<db::Tuple, SessionModel>>& sessions() const {
    return sessions_;
  }

 private:
  db::PreferenceSignature signature_;
  std::vector<std::pair<db::Tuple, SessionModel>> sessions_;
};

/// A session-independent RIM-PPD over a preference schema.
class RimPpd {
 public:
  explicit RimPpd(db::PreferenceSchema schema);

  const db::PreferenceSchema& schema() const { return schema_; }

  /// O-instance access.
  const db::Relation& OInstance(const std::string& symbol) const;
  db::Relation& MutableOInstance(const std::string& symbol);
  void AddFact(const std::string& symbol, db::Tuple tuple);
  void AddFact(const std::string& symbol, std::initializer_list<db::Value> v);

  /// P-instance access.
  const RimPreferenceInstance& PInstance(const std::string& symbol) const;
  void AddSession(const std::string& symbol, db::Tuple session,
                  SessionModel model);

  /// A database holding only the o-instances (p-instances empty); the
  /// deterministic substrate the §4.4 reduction evaluates o-atoms against.
  const db::Database& ODatabase() const { return o_database_; }

 private:
  db::PreferenceSchema schema_;
  db::Database o_database_;
  std::map<std::string, RimPreferenceInstance> p_instances_;
};

/// The MAL-PPD of Figure 2: the running example's sessions with Mallows
/// models. Only the (Ann, Oct-5) model — MAL(<Clinton, Sanders, Rubio,
/// Trump>, 0.3) — is fully specified in the paper's text; the other two
/// sessions use each session's Figure-1 ranking as reference with moderate
/// dispersions, which the worked examples do not depend on.
RimPpd ElectionPpd();

}  // namespace ppref::ppd

#endif  // PPREF_PPD_PPD_H_
