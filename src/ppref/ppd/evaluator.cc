#include "ppref/ppd/evaluator.h"

#include <algorithm>

#include "ppref/common/check.h"
#include "ppref/common/parallel.h"
#include "ppref/obs/metrics.h"
#include "ppref/ppd/reduction.h"
#include "ppref/query/classify.h"
#include "ppref/query/eval.h"

namespace ppref::ppd {
namespace {

/// Process-wide count of Boolean CQ evaluations, across all entry points
/// (serial, parallel, and server-batched).
void CountBooleanQuery() {
  static obs::Counter& queries = obs::MetricsRegistry::Default().GetCounter(
      "ppref_ppd_boolean_queries_total",
      "Boolean CQ evaluations via ppd::EvaluateBoolean*");
  queries.Inc();
}

}  // namespace

double EvaluateBoolean(const RimPpd& ppd, const query::ConjunctiveQuery& query) {
  return EvaluateBoolean(ppd, query, infer::PatternProbOptions{});
}

double EvaluateBoolean(const RimPpd& ppd, const query::ConjunctiveQuery& query,
                       const infer::PatternProbOptions& options) {
  if (!query.IsBoolean()) {
    throw SchemaError("EvaluateBoolean expects a Boolean query");
  }
  CountBooleanQuery();
  if (query.PAtoms().empty()) {
    return query::IsSatisfiable(query, ppd.ODatabase()) ? 1.0 : 0.0;
  }
  double none_matches = 1.0;
  for (const SessionReduction& reduction : ReduceItemwise(ppd, query)) {
    none_matches *= 1.0 - SessionProb(reduction, options);
  }
  return 1.0 - none_matches;
}

double EvaluateBoolean(const RimPpd& ppd, const query::ConjunctiveQuery& query,
                       serve::Server& server) {
  if (!query.IsBoolean()) {
    throw SchemaError("EvaluateBoolean expects a Boolean query");
  }
  CountBooleanQuery();
  if (query.PAtoms().empty()) {
    return query::IsSatisfiable(query, ppd.ODatabase()) ? 1.0 : 0.0;
  }
  const std::vector<SessionReduction> reductions = ReduceItemwise(ppd, query);
  // Sessions with a trivially-zero probability never reach the server;
  // the rest go out as one deduplicated batch. The labeled models must
  // stay alive until the batch returns, hence the reserve (no relocation
  // under the borrowed pointers).
  std::vector<infer::LabeledRimModel> models;
  models.reserve(reductions.size());
  std::vector<serve::Request> batch;
  std::vector<std::size_t> reduction_of;  // batch index -> reduction index
  for (std::size_t i = 0; i < reductions.size(); ++i) {
    const SessionReduction& reduction = reductions[i];
    if (!reduction.satisfiable || reduction.reflexive_preference) continue;
    models.emplace_back(reduction.model->model(), reduction.labeling);
    serve::Request request;
    request.kind = serve::Request::Kind::kPatternProb;
    request.model = &models.back();
    request.pattern = &reduction.pattern;
    batch.push_back(request);
    reduction_of.push_back(i);
  }
  const std::vector<serve::Response> responses = server.EvaluateBatch(batch);
  // Combine in session order so the float result matches the serial path.
  std::vector<double> session_probs(reductions.size(), 0.0);
  for (std::size_t b = 0; b < responses.size(); ++b) {
    session_probs[reduction_of[b]] = responses[b].probability;
  }
  double none_matches = 1.0;
  for (double prob : session_probs) none_matches *= 1.0 - prob;
  return 1.0 - none_matches;
}

StatusOr<BooleanResult> TryEvaluateBoolean(const RimPpd& ppd,
                                           const query::ConjunctiveQuery& query,
                                           serve::Server& server,
                                           const serve::RequestControl& control) {
  if (!query.IsBoolean()) {
    return Status::InvalidArgument("TryEvaluateBoolean expects a Boolean query");
  }
  CountBooleanQuery();
  if (query.PAtoms().empty()) {
    return BooleanResult{
        query::IsSatisfiable(query, ppd.ODatabase()) ? 1.0 : 0.0, false, 0.0};
  }
  // ReduceItemwise throws SchemaError on non-itemwise queries; at this
  // boundary that is a malformed request, not a programming error.
  std::vector<SessionReduction> reductions;
  try {
    reductions = ReduceItemwise(ppd, query);
  } catch (const SchemaError& e) {
    return Status::InvalidArgument(e.what());
  }
  std::vector<infer::LabeledRimModel> models;
  models.reserve(reductions.size());
  std::vector<serve::Request> batch;
  std::vector<std::size_t> reduction_of;
  for (std::size_t i = 0; i < reductions.size(); ++i) {
    const SessionReduction& reduction = reductions[i];
    if (!reduction.satisfiable || reduction.reflexive_preference) continue;
    models.emplace_back(reduction.model->model(), reduction.labeling);
    serve::Request request;
    request.kind = serve::Request::Kind::kPatternProb;
    request.model = &models.back();
    request.pattern = &reduction.pattern;
    request.control = control;
    batch.push_back(request);
    reduction_of.push_back(i);
  }
  const std::vector<serve::Response> responses = server.EvaluateBatch(batch);
  // A session that failed outright fails the query with that status; a
  // degraded (approximate) session keeps the query answerable but marks the
  // result approximate with a summed error bound.
  BooleanResult result;
  std::vector<double> session_probs(reductions.size(), 0.0);
  for (std::size_t b = 0; b < responses.size(); ++b) {
    const serve::Response& response = responses[b];
    if (!response.status.ok() && !response.approximate) {
      return response.status;
    }
    if (response.approximate) {
      result.approximate = true;
      result.std_error += response.std_error;
    }
    session_probs[reduction_of[b]] = response.probability;
  }
  // Combine in session order so the float result matches the serial path.
  double none_matches = 1.0;
  for (double prob : session_probs) none_matches *= 1.0 - prob;
  result.confidence = 1.0 - none_matches;
  return result;
}

double EvaluateBooleanParallel(const RimPpd& ppd,
                               const query::ConjunctiveQuery& query,
                               unsigned threads) {
  if (!query.IsBoolean()) {
    throw SchemaError("EvaluateBooleanParallel expects a Boolean query");
  }
  CountBooleanQuery();
  if (query.PAtoms().empty()) {
    return query::IsSatisfiable(query, ppd.ODatabase()) ? 1.0 : 0.0;
  }
  const std::vector<SessionReduction> reductions = ReduceItemwise(ppd, query);
  std::vector<double> session_probs(reductions.size(), 0.0);
  // ClampThreads so `threads == 0` means auto here too; the raw value used
  // to fall through to ParallelFor where 0 silently meant "serial".
  ParallelFor(reductions.size(), ClampThreads(threads), [&](std::size_t i) {
    session_probs[i] = SessionProb(reductions[i]);
  });
  // Combine in session order so the float result matches the serial path.
  double none_matches = 1.0;
  for (double prob : session_probs) none_matches *= 1.0 - prob;
  return 1.0 - none_matches;
}

db::Database PossibilityDatabase(const RimPpd& ppd) {
  db::Database database(ppd.schema());
  // Copy o-instances.
  for (const std::string& symbol : ppd.schema().OSymbols()) {
    for (const db::Tuple& tuple : ppd.OInstance(symbol)) {
      database.Add(symbol, tuple);
    }
  }
  // Saturate p-instances with every ordered pair of distinct items.
  for (const std::string& symbol : ppd.schema().PSymbols()) {
    for (const auto& [session, model] : ppd.PInstance(symbol).sessions()) {
      for (rim::ItemId a = 0; a < model.size(); ++a) {
        for (rim::ItemId b = 0; b < model.size(); ++b) {
          if (a == b) continue;
          db::Tuple tuple = session;
          tuple.push_back(model.ItemOf(a));
          tuple.push_back(model.ItemOf(b));
          database.Add(symbol, std::move(tuple));
        }
      }
    }
  }
  return database;
}

std::vector<Answer> EvaluateQuery(const RimPpd& ppd,
                                  const query::ConjunctiveQuery& query) {
  std::vector<Answer> answers;
  if (query.IsBoolean()) {
    const double confidence = EvaluateBoolean(ppd, query);
    if (confidence > 0.0) answers.push_back({db::Tuple{}, confidence});
    return answers;
  }
  const db::Database possibility = PossibilityDatabase(ppd);
  for (const db::Tuple& candidate : query::Evaluate(query, possibility)) {
    query::ConjunctiveQuery bound = query;
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      bound = bound.Substitute(query.head()[i], candidate[i]);
    }
    const double confidence = EvaluateBoolean(ppd, bound);
    if (confidence > 0.0) answers.push_back({candidate, confidence});
  }
  std::stable_sort(answers.begin(), answers.end(),
                   [](const Answer& a, const Answer& b) {
                     return a.confidence > b.confidence;
                   });
  return answers;
}

}  // namespace ppref::ppd
