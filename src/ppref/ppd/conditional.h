/// \file conditional.h
/// \brief Conjunctions and conditional confidences of Boolean itemwise CQs.
///
/// For Boolean events A, B over the same PPD,
///   Pr(A ∧ B) = Pr(A) + Pr(B) − Pr(A ∨ B),
/// and the disjunction is exactly what the UCQ evaluator computes. This
/// yields exact conditioning Pr(A | B) = Pr(A ∧ B)/Pr(B) for itemwise CQs —
/// e.g. "how likely is Q1 given that some voter put Trump last?".

#ifndef PPREF_PPD_CONDITIONAL_H_
#define PPREF_PPD_CONDITIONAL_H_

#include "ppref/ppd/ppd.h"
#include "ppref/query/cq.h"

namespace ppref::ppd {

/// Pr(both Boolean queries hold). Each query must be itemwise (or p-atom
/// free); throws SchemaError otherwise.
double EvaluateBooleanConjunction(const RimPpd& ppd,
                                  const query::ConjunctiveQuery& first,
                                  const query::ConjunctiveQuery& second);

/// Pr(`target` | `evidence`) over possible worlds; 0 when the evidence has
/// probability 0.
double ConditionalConfidence(const RimPpd& ppd,
                             const query::ConjunctiveQuery& target,
                             const query::ConjunctiveQuery& evidence);

}  // namespace ppref::ppd

#endif  // PPREF_PPD_CONDITIONAL_H_
