/// \file explain.h
/// \brief Human-readable evaluation plans for CQs over RIM-PPDs: the
/// classification verdict and, for itemwise queries, the full §4.4
/// reduction (sessions of r_Q, potential-match labelings, label patterns,
/// per-session probabilities). The EXPLAIN facility of the little system.

#ifndef PPREF_PPD_EXPLAIN_H_
#define PPREF_PPD_EXPLAIN_H_

#include <string>

#include "ppref/ppd/ppd.h"
#include "ppref/query/cq.h"

namespace ppref::ppd {

/// Renders the evaluation plan of a Boolean CQ. Never throws: non-Boolean
/// and non-itemwise queries get a plan describing the fallback strategy.
std::string ExplainQuery(const RimPpd& ppd,
                         const query::ConjunctiveQuery& query);

}  // namespace ppref::ppd

#endif  // PPREF_PPD_EXPLAIN_H_
