/// \file approx.h
/// \brief Additive (ε, δ)-approximation of Boolean query confidence — the
/// §6 "approximate query evaluation" direction.
///
/// For any Boolean CQ or UCQ (itemwise or not — including the #P-hard side
/// of the dichotomy), sampling N = ⌈ln(2/δ) / (2ε²)⌉ possible worlds yields
/// an estimate within ε of conf_Q([E]) with probability at least 1 − δ
/// (Hoeffding). Polynomial in 1/ε, ln(1/δ), and the data.

#ifndef PPREF_PPD_APPROX_H_
#define PPREF_PPD_APPROX_H_

#include "ppref/common/random.h"
#include "ppref/ppd/ppd.h"
#include "ppref/query/cq.h"
#include "ppref/query/ucq.h"

namespace ppref::ppd {

/// An (ε, δ) additive approximation result.
struct ApproxResult {
  double estimate = 0.0;
  double epsilon = 0.0;
  double delta = 0.0;
  unsigned samples = 0;
};

/// Number of Hoeffding samples guaranteeing additive error ε with
/// probability 1 − δ.
unsigned HoeffdingSamples(double epsilon, double delta);

/// Approximates conf_Q([E]) for a Boolean CQ within ±ε w.p. ≥ 1 − δ.
ApproxResult ApproximateBoolean(const RimPpd& ppd,
                                const query::ConjunctiveQuery& query,
                                double epsilon, double delta, Rng& rng);

/// The same guarantee for Boolean UCQs.
ApproxResult ApproximateBooleanUnion(const RimPpd& ppd,
                                     const query::UnionQuery& ucq,
                                     double epsilon, double delta, Rng& rng);

}  // namespace ppref::ppd

#endif  // PPREF_PPD_APPROX_H_
