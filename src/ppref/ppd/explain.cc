#include "ppref/ppd/explain.h"

#include <sstream>

#include "ppref/ppd/evaluator.h"
#include "ppref/ppd/possible_worlds.h"
#include "ppref/ppd/reduction.h"
#include "ppref/query/classify.h"

namespace ppref::ppd {

std::string ExplainQuery(const RimPpd& ppd,
                         const query::ConjunctiveQuery& query) {
  std::ostringstream out;
  out << "query: " << query.ToString() << "\n";
  out << "sessionwise: " << (query::IsSessionwise(query) ? "yes" : "no")
      << ", itemwise: " << (query::IsItemwise(query) ? "yes" : "no")
      << ", complexity: " << query::ToString(query::Classify(query)) << "\n";

  if (!query.IsBoolean()) {
    out << "plan: enumerate candidate answers over the possibility database,"
           "\n      then evaluate the Boolean substitution of each\n";
    return out.str();
  }
  if (query.PAtoms().empty()) {
    out << "plan: deterministic evaluation over the o-instances\n";
    out << "result: conf = " << EvaluateBoolean(ppd, query) << "\n";
    return out.str();
  }
  if (!query::IsItemwise(query)) {
    out << "plan: no polynomial algorithm (Thm 4.5 side); fall back to\n"
           "      possible-world enumeration ("
        << WorldCount(ppd) << " worlds) or sampling\n";
    return out.str();
  }

  out << "plan: Section 4.4 reduction; conf = 1 - prod_s (1 - Pr(s |= Q^s))\n";
  double none = 1.0;
  for (const SessionReduction& reduction : ReduceItemwise(ppd, query)) {
    out << "  session " << db::ToString(reduction.session) << " over "
        << reduction.model->ToString() << "\n";
    if (!reduction.satisfiable) {
      out << "    o-atoms unsatisfiable -> Pr = 0\n";
      continue;
    }
    if (reduction.reflexive_preference) {
      out << "    reflexive item term -> Pr = 0\n";
      continue;
    }
    for (unsigned node = 0; node < reduction.pattern.NodeCount(); ++node) {
      out << "    node " << node << " <- term " << reduction.node_terms[node]
          << ", potential matches {";
      bool first = true;
      for (rim::ItemId id :
           reduction.labeling.ItemsWith(reduction.pattern.NodeLabel(node))) {
        if (!first) out << ", ";
        first = false;
        out << reduction.model->ItemOf(id).ToString();
      }
      out << "}\n";
    }
    out << "    pattern " << reduction.pattern.ToString() << "\n";
    const double prob = SessionProb(reduction);
    none *= 1.0 - prob;
    out << "    Pr(s |= Q^s) = " << prob << "\n";
  }
  out << "result: conf = " << 1.0 - none << "\n";
  return out.str();
}

}  // namespace ppref::ppd
