#include "ppref/ppd/monte_carlo_evaluator.h"

#include <cmath>

#include "ppref/common/check.h"
#include "ppref/db/preference_instance.h"
#include "ppref/query/eval.h"
#include "ppref/rim/sampler.h"

namespace ppref::ppd {

infer::McEstimate EstimateBoolean(const RimPpd& ppd,
                                  const query::ConjunctiveQuery& query,
                                  unsigned samples, Rng& rng) {
  PPREF_CHECK(query.IsBoolean());
  PPREF_CHECK(samples > 0);
  unsigned hits = 0;
  for (unsigned s = 0; s < samples; ++s) {
    db::Database world(ppd.schema());
    for (const std::string& symbol : ppd.schema().OSymbols()) {
      for (const db::Tuple& tuple : ppd.OInstance(symbol)) {
        world.Add(symbol, tuple);
      }
    }
    for (const std::string& symbol : ppd.schema().PSymbols()) {
      for (const auto& [session, model] : ppd.PInstance(symbol).sessions()) {
        const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
        std::vector<db::Value> order;
        order.reserve(tau.size());
        for (rim::Position p = 0; p < tau.size(); ++p) {
          order.push_back(model.ItemOf(tau.At(p)));
        }
        db::AddRankingAsPairs(world, symbol, session, order);
      }
    }
    if (query::IsSatisfiable(query, world)) ++hits;
  }
  infer::McEstimate estimate;
  estimate.estimate = static_cast<double>(hits) / samples;
  estimate.std_error =
      std::sqrt(estimate.estimate * (1.0 - estimate.estimate) / samples);
  return estimate;
}

}  // namespace ppref::ppd
