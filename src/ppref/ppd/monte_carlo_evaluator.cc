#include "ppref/ppd/monte_carlo_evaluator.h"

#include <vector>

#include "ppref/common/check.h"
#include "ppref/db/preference_instance.h"
#include "ppref/hard/estimator.h"
#include "ppref/hard/sampler.h"
#include "ppref/query/eval.h"
#include "ppref/rim/sampler.h"

namespace ppref::ppd {
namespace {

/// Samples one world from the PPD and evaluates the Boolean query on it.
bool SampleWorldAndEvaluate(const RimPpd& ppd,
                            const query::ConjunctiveQuery& query, Rng& rng) {
  db::Database world(ppd.schema());
  for (const std::string& symbol : ppd.schema().OSymbols()) {
    for (const db::Tuple& tuple : ppd.OInstance(symbol)) {
      world.Add(symbol, tuple);
    }
  }
  for (const std::string& symbol : ppd.schema().PSymbols()) {
    for (const auto& [session, model] : ppd.PInstance(symbol).sessions()) {
      const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
      std::vector<db::Value> order;
      order.reserve(tau.size());
      for (rim::Position p = 0; p < tau.size(); ++p) {
        order.push_back(model.ItemOf(tau.At(p)));
      }
      db::AddRankingAsPairs(world, symbol, session, order);
    }
  }
  return query::IsSatisfiable(query, world);
}

infer::McEstimate FromBernoulliCount(unsigned hits, unsigned samples) {
  const hard::BernoulliEstimate point =
      hard::EstimateFromBernoulliCount(hits, samples);
  infer::McEstimate estimate;
  estimate.estimate = point.estimate;
  estimate.std_error = point.std_error;
  return estimate;
}

}  // namespace

infer::McEstimate EstimateBoolean(const RimPpd& ppd,
                                  const query::ConjunctiveQuery& query,
                                  unsigned samples, Rng& rng) {
  PPREF_CHECK(query.IsBoolean());
  PPREF_CHECK(samples > 0);
  unsigned hits = 0;
  for (unsigned s = 0; s < samples; ++s) {
    if (SampleWorldAndEvaluate(ppd, query, rng)) ++hits;
  }
  return FromBernoulliCount(hits, samples);
}

infer::McEstimate EstimateBoolean(const RimPpd& ppd,
                                  const query::ConjunctiveQuery& query,
                                  const infer::McOptions& options) {
  PPREF_CHECK(query.IsBoolean());
  PPREF_CHECK(options.samples > 0);
  // The shared seeded-block core (hard/sampler.h), at a smaller block size
  // because database worlds are costlier to materialize than rankings. The
  // estimate stays a function of (seed, samples) only, never thread count.
  constexpr unsigned kBlockSamples = 256;
  const unsigned total = hard::SeededBlockHits(
      options.samples, kBlockSamples, options.seed, options.threads,
      options.control, [&](Rng& rng, unsigned begin, unsigned end) {
        unsigned h = 0;
        for (unsigned s = begin; s < end; ++s) {
          if (SampleWorldAndEvaluate(ppd, query, rng)) ++h;
        }
        return h;
      });
  return FromBernoulliCount(total, options.samples);
}

}  // namespace ppref::ppd
