#include "ppref/ppd/monte_carlo_evaluator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "ppref/common/check.h"
#include "ppref/common/hash.h"
#include "ppref/common/parallel.h"
#include "ppref/db/preference_instance.h"
#include "ppref/query/eval.h"
#include "ppref/rim/sampler.h"

namespace ppref::ppd {
namespace {

/// Samples one world from the PPD and evaluates the Boolean query on it.
bool SampleWorldAndEvaluate(const RimPpd& ppd,
                            const query::ConjunctiveQuery& query, Rng& rng) {
  db::Database world(ppd.schema());
  for (const std::string& symbol : ppd.schema().OSymbols()) {
    for (const db::Tuple& tuple : ppd.OInstance(symbol)) {
      world.Add(symbol, tuple);
    }
  }
  for (const std::string& symbol : ppd.schema().PSymbols()) {
    for (const auto& [session, model] : ppd.PInstance(symbol).sessions()) {
      const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
      std::vector<db::Value> order;
      order.reserve(tau.size());
      for (rim::Position p = 0; p < tau.size(); ++p) {
        order.push_back(model.ItemOf(tau.At(p)));
      }
      db::AddRankingAsPairs(world, symbol, session, order);
    }
  }
  return query::IsSatisfiable(query, world);
}

infer::McEstimate FromBernoulliCount(unsigned hits, unsigned samples) {
  infer::McEstimate estimate;
  estimate.estimate = static_cast<double>(hits) / samples;
  estimate.std_error =
      std::sqrt(estimate.estimate * (1.0 - estimate.estimate) / samples);
  return estimate;
}

}  // namespace

infer::McEstimate EstimateBoolean(const RimPpd& ppd,
                                  const query::ConjunctiveQuery& query,
                                  unsigned samples, Rng& rng) {
  PPREF_CHECK(query.IsBoolean());
  PPREF_CHECK(samples > 0);
  unsigned hits = 0;
  for (unsigned s = 0; s < samples; ++s) {
    if (SampleWorldAndEvaluate(ppd, query, rng)) ++hits;
  }
  return FromBernoulliCount(hits, samples);
}

infer::McEstimate EstimateBoolean(const RimPpd& ppd,
                                  const query::ConjunctiveQuery& query,
                                  const infer::McOptions& options) {
  PPREF_CHECK(query.IsBoolean());
  PPREF_CHECK(options.samples > 0);
  // Same fixed block decomposition as infer's McOptions entry points: block
  // b draws its worlds from Rng(HashCombine(seed, b)), so the estimate is
  // a function of (seed, samples) only, never of the thread count.
  constexpr unsigned kBlockSamples = 256;  // worlds are costlier than rankings
  const unsigned blocks = (options.samples + kBlockSamples - 1) / kBlockSamples;
  std::vector<unsigned> hits(blocks, 0);
  ParallelFor(blocks, ClampThreads(options.threads), [&](std::size_t b) {
    if (options.control != nullptr) options.control->Check();
    Rng rng(HashCombine(options.seed, b));
    const unsigned begin = static_cast<unsigned>(b) * kBlockSamples;
    const unsigned end = std::min(options.samples, begin + kBlockSamples);
    unsigned h = 0;
    for (unsigned s = begin; s < end; ++s) {
      if (SampleWorldAndEvaluate(ppd, query, rng)) ++h;
    }
    hits[b] = h;
  });
  unsigned total = 0;
  for (unsigned h : hits) total += h;
  return FromBernoulliCount(total, options.samples);
}

}  // namespace ppref::ppd
