#include "ppref/ppd/preference_model.h"

#include <sstream>

#include "ppref/common/check.h"

namespace ppref::ppd {
namespace {

/// Reference rankings come from user data, so violations throw rather than
/// abort.
void CheckDistinct(const std::vector<db::Value>& items) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    for (std::size_t j = i + 1; j < items.size(); ++j) {
      if (items[i] == items[j]) {
        throw SchemaError("duplicate item " + items[i].ToString() +
                          " in reference ranking");
      }
    }
  }
}

}  // namespace

SessionModel::SessionModel(std::vector<db::Value> items, rim::RimModel model,
                           std::optional<double> phi)
    : items_(std::move(items)), model_(std::move(model)), phi_(phi) {
  PPREF_CHECK(items_.size() == model_.size());
}

SessionModel SessionModel::Mallows(std::vector<db::Value> reference,
                                   double phi) {
  CheckDistinct(reference);
  const unsigned m = static_cast<unsigned>(reference.size());
  rim::RimModel model(rim::Ranking::Identity(m),
                      rim::InsertionFunction::Mallows(m, phi));
  return SessionModel(std::move(reference), std::move(model), phi);
}

SessionModel SessionModel::Rim(std::vector<db::Value> reference,
                               rim::InsertionFunction insertion) {
  CheckDistinct(reference);
  const unsigned m = static_cast<unsigned>(reference.size());
  if (insertion.size() != m) {
    throw SchemaError("insertion function covers " +
                      std::to_string(insertion.size()) +
                      " items, reference has " + std::to_string(m));
  }
  rim::RimModel model(rim::Ranking::Identity(m), std::move(insertion));
  return SessionModel(std::move(reference), std::move(model), std::nullopt);
}

std::optional<rim::ItemId> SessionModel::IdOf(const db::Value& item) const {
  for (rim::ItemId id = 0; id < items_.size(); ++id) {
    if (items_[id] == item) return id;
  }
  return std::nullopt;
}

const db::Value& SessionModel::ItemOf(rim::ItemId id) const {
  PPREF_CHECK(id < items_.size());
  return items_[id];
}

std::string SessionModel::ToString() const {
  std::ostringstream out;
  out << (phi_.has_value() ? "MAL(<" : "RIM(<");
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out << ", ";
    out << items_[i].ToString();
  }
  out << ">";
  if (phi_.has_value()) out << ", phi=" << *phi_;
  out << ")";
  return out.str();
}

}  // namespace ppref::ppd
