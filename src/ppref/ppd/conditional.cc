#include "ppref/ppd/conditional.h"

#include <algorithm>

#include "ppref/common/check.h"
#include "ppref/ppd/evaluator.h"
#include "ppref/ppd/ucq_evaluator.h"

namespace ppref::ppd {

double EvaluateBooleanConjunction(const RimPpd& ppd,
                                  const query::ConjunctiveQuery& first,
                                  const query::ConjunctiveQuery& second) {
  const double p_first = EvaluateBoolean(ppd, first);
  const double p_second = EvaluateBoolean(ppd, second);
  const double p_union =
      EvaluateBooleanUnion(ppd, query::UnionQuery({first, second}));
  // Clamp tiny negative slack from the subtraction.
  return std::max(0.0, p_first + p_second - p_union);
}

double ConditionalConfidence(const RimPpd& ppd,
                             const query::ConjunctiveQuery& target,
                             const query::ConjunctiveQuery& evidence) {
  const double p_evidence = EvaluateBoolean(ppd, evidence);
  if (p_evidence <= 0.0) return 0.0;
  return std::min(1.0, EvaluateBooleanConjunction(ppd, target, evidence) /
                           p_evidence);
}

}  // namespace ppref::ppd
