/// \file ucq_evaluator.h
/// \brief Exact evaluation of unions of itemwise CQs over RIM-PPDs.
///
/// conf(Q₁ ∨ ... ∨ Q_q) factorizes over sessions by independence. Within a
/// session, each disjunct contributes a pattern-matching event (its §4.4
/// reduction), and Pr(at least one event) is computed by inclusion–exclusion
/// over conjunctions of pattern events, built with infer::Conjoin (label-
/// disjoint unions, since the disjuncts quantify their matchings
/// independently). With q fixed this runs in polynomial data complexity —
/// a constructive instance of the paper's §6 "larger fragments of FO"
/// direction.

#ifndef PPREF_PPD_UCQ_EVALUATOR_H_
#define PPREF_PPD_UCQ_EVALUATOR_H_

#include <vector>

#include "ppref/ppd/evaluator.h"
#include "ppref/ppd/ppd.h"
#include "ppref/query/ucq.h"

namespace ppref::ppd {

/// conf_Q([E]) for a Boolean UCQ. Disjuncts without p-atoms evaluate
/// deterministically (a true one short-circuits to 1). Throws SchemaError
/// when some p-atom-bearing disjunct is not itemwise. `options` forwards to
/// every inclusion–exclusion PatternProb call (plan reuse, matching-level
/// parallelism).
double EvaluateBooleanUnion(const RimPpd& ppd, const query::UnionQuery& ucq,
                            const infer::PatternProbOptions& options = {});

/// EvaluateBooleanUnion routed through a shared serve::Server: each
/// session's 2^t - 1 inclusion–exclusion conjunctions are submitted as one
/// deduplicated batch and the signed sum is reduced in mask order, so the
/// result is bit-identical to the serial path while repeated conjunction
/// events (across sessions and across queries) hit the server's caches.
double EvaluateBooleanUnion(const RimPpd& ppd, const query::UnionQuery& ucq,
                            serve::Server& server);

/// Q(E) for a non-Boolean UCQ: possible answers across all disjuncts with
/// their union confidence, sorted by decreasing confidence.
std::vector<Answer> EvaluateUnionQuery(const RimPpd& ppd,
                                       const query::UnionQuery& ucq);

/// Enumeration oracle: conf by possible-world enumeration (any disjunct
/// satisfied). Exponential; for tests and benchmarks.
double EvaluateBooleanUnionByEnumeration(const RimPpd& ppd,
                                         const query::UnionQuery& ucq,
                                         double max_worlds = 1e6);

}  // namespace ppref::ppd

#endif  // PPREF_PPD_UCQ_EVALUATOR_H_
