/// \file reduction.h
/// \brief The §4.4 reduction: itemwise Boolean CQs over a RIM-PPD become
/// labeled-RIM pattern-matching instances, one per matching session.
///
/// For a session s, the reduction substitutes s into the query (Lemma 4.8),
/// splits the o-atoms into connected components, checks satisfiability of
/// item-variable-free components against the o-instances, computes potential
/// matches for each item term, and emits the labeling λ and label pattern g
/// such that Pr(s ⊨ Q^s) = Pr(g | σ^s, Π^s, λ).

#ifndef PPREF_PPD_REDUCTION_H_
#define PPREF_PPD_REDUCTION_H_

#include <string>
#include <vector>

#include "ppref/infer/labeling.h"
#include "ppref/infer/pattern.h"
#include "ppref/infer/top_prob.h"
#include "ppref/ppd/ppd.h"
#include "ppref/query/cq.h"

namespace ppref::ppd {

/// The labeled-RIM instance produced for one session of r_Q.
struct SessionReduction {
  /// The session tuple s.
  db::Tuple session;
  /// The session's model (borrowed from the PPD; valid while it lives).
  const SessionModel* model = nullptr;
  /// False when some item-variable-free o-component is unsatisfiable, in
  /// which case Pr(s ⊨ Q^s) = 0 and `pattern`/`labeling` are meaningless.
  bool satisfiable = true;
  /// True when a p-atom relates an item term to itself (σ ≻ σ is
  /// unsatisfiable), forcing Pr(s ⊨ Q^s) = 0.
  bool reflexive_preference = false;
  /// The label pattern g; node labels index `node_terms`.
  infer::LabelPattern pattern;
  /// λ over the session's dense item ids.
  infer::ItemLabeling labeling{0};
  /// Human-readable rendering of each node's item term (variable name or
  /// constant), parallel to pattern node indices.
  std::vector<std::string> node_terms;
};

/// Runs the reduction for every session of r_Q (sessions whose tuple unifies
/// with the common session terms of the query's p-atoms). Throws SchemaError
/// when the query is not Boolean, has no p-atoms, or is not itemwise.
std::vector<SessionReduction> ReduceItemwise(const RimPpd& ppd,
                                             const query::ConjunctiveQuery& query);

/// Pr(s ⊨ Q^s) for one reduced session: 0 when unsatisfiable or reflexive,
/// otherwise Pr(g | σ^s, Π^s, λ) via TopProb. One DP plan is compiled per
/// session and reused across all of its candidate matchings; `options`
/// forwards to PatternProb (matching-level parallelism, pruning).
double SessionProb(const SessionReduction& reduction,
                   const infer::PatternProbOptions& options = {});

}  // namespace ppref::ppd

#endif  // PPREF_PPD_REDUCTION_H_
