#include "ppref/ppd/analytics.h"

#include <algorithm>
#include <map>

#include "ppref/infer/aggregates.h"
#include "ppref/infer/marginals.h"

namespace ppref::ppd {
namespace {

/// Accumulates (sum, count) per item value across sessions.
struct Accumulator {
  double sum = 0.0;
  unsigned count = 0;
};

std::vector<ItemStat> Finalize(const std::map<db::Value, Accumulator>& totals,
                               std::size_t session_count, bool divide_by_all) {
  std::vector<ItemStat> stats;
  for (const auto& [item, acc] : totals) {
    ItemStat stat;
    stat.item = item;
    stat.supporting_sessions = acc.count;
    const double denominator =
        divide_by_all ? static_cast<double>(session_count)
                      : static_cast<double>(acc.count);
    stat.value = denominator > 0 ? acc.sum / denominator : 0.0;
    stats.push_back(std::move(stat));
  }
  return stats;
}

}  // namespace

std::vector<ItemStat> WinnerDistribution(
    const RimPreferenceInstance& instance) {
  std::map<db::Value, Accumulator> totals;
  for (const auto& [session, model] : instance.sessions()) {
    for (rim::ItemId id = 0; id < model.size(); ++id) {
      Accumulator& acc = totals[model.ItemOf(id)];
      acc.sum += infer::TopKProb(model.model(), id, 1);
      ++acc.count;
    }
  }
  std::vector<ItemStat> stats =
      Finalize(totals, instance.session_count(), /*divide_by_all=*/true);
  std::stable_sort(stats.begin(), stats.end(),
                   [](const ItemStat& a, const ItemStat& b) {
                     return a.value > b.value;
                   });
  return stats;
}

std::vector<ItemStat> MeanExpectedPositions(
    const RimPreferenceInstance& instance) {
  std::map<db::Value, Accumulator> totals;
  for (const auto& [session, model] : instance.sessions()) {
    const std::vector<double> expected =
        infer::ExpectedPositions(model.model());
    for (rim::ItemId id = 0; id < model.size(); ++id) {
      Accumulator& acc = totals[model.ItemOf(id)];
      acc.sum += expected[id];
      ++acc.count;
    }
  }
  std::vector<ItemStat> stats =
      Finalize(totals, instance.session_count(), /*divide_by_all=*/false);
  std::stable_sort(stats.begin(), stats.end(),
                   [](const ItemStat& a, const ItemStat& b) {
                     return a.value < b.value;
                   });
  return stats;
}

std::vector<db::Value> CrossSessionConsensus(
    const RimPreferenceInstance& instance) {
  std::vector<db::Value> order;
  for (const ItemStat& stat : MeanExpectedPositions(instance)) {
    order.push_back(stat.item);
  }
  return order;
}

}  // namespace ppref::ppd
