/// \file possible_worlds.h
/// \brief Exhaustive possible-world semantics for RIM-PPDs — §3.2/§3.3.
///
/// Enumerates every possible world (one ranking per session, independently)
/// with its probability, materializing each world as a deterministic
/// preference database. Exponential in the number and size of sessions;
/// serves as the evaluation oracle for tests and for exhibiting the
/// dichotomy's hard side (bench E7).

#ifndef PPREF_PPD_POSSIBLE_WORLDS_H_
#define PPREF_PPD_POSSIBLE_WORLDS_H_

#include <cstdint>
#include <functional>

#include "ppref/ppd/evaluator.h"
#include "ppref/ppd/ppd.h"
#include "ppref/query/cq.h"

namespace ppref::ppd {

/// Number of possible worlds: Π over sessions of (items!)... as a double
/// (counts overflow 64 bits quickly).
double WorldCount(const RimPpd& ppd);

/// Invokes `visit(world, probability)` for every possible world.
/// PPREF_CHECKs that the world count does not exceed `max_worlds`.
void ForEachWorld(const RimPpd& ppd, double max_worlds,
                  const std::function<void(const db::Database&, double)>& visit);

/// conf_Q([E]) by brute-force enumeration; works for *any* CQ (itemwise or
/// not). Default cap: one million worlds.
double EvaluateBooleanByEnumeration(const RimPpd& ppd,
                                    const query::ConjunctiveQuery& query,
                                    double max_worlds = 1e6);

/// Q(E) by brute-force enumeration: all answers with positive confidence,
/// sorted by decreasing confidence.
std::vector<Answer> EvaluateQueryByEnumeration(
    const RimPpd& ppd, const query::ConjunctiveQuery& query,
    double max_worlds = 1e6);

}  // namespace ppref::ppd

#endif  // PPREF_PPD_POSSIBLE_WORLDS_H_
