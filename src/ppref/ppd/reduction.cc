#include "ppref/ppd/reduction.h"

#include <algorithm>
#include <map>

#include "ppref/common/check.h"
#include "ppref/infer/labeled_rim.h"
#include "ppref/infer/top_prob.h"
#include "ppref/obs/metrics.h"
#include "ppref/query/classify.h"
#include "ppref/query/eval.h"

namespace ppref::ppd {
namespace {

using query::Atom;
using query::ConjunctiveQuery;
using query::Term;

/// Unifies the p-atoms' session terms with a session tuple. Returns false on
/// mismatch; otherwise fills `binding` with the variable assignments.
bool MatchSession(const std::vector<Term>& session_terms,
                  const db::Tuple& session, query::Binding& binding) {
  PPREF_CHECK(session_terms.size() == session.size());
  for (std::size_t i = 0; i < session_terms.size(); ++i) {
    const Term& term = session_terms[i];
    if (!term.is_variable()) {
      if (term.constant() != session[i]) return false;
      continue;
    }
    const auto it = binding.find(term.variable());
    if (it != binding.end()) {
      if (it->second != session[i]) return false;
    } else {
      binding.emplace(term.variable(), session[i]);
    }
  }
  return true;
}

/// Connected components of the o-atoms under shared variables. Returns, per
/// component, the atom list and the set of variables it mentions.
struct OComponent {
  std::vector<Atom> atoms;
  std::vector<std::string> variables;
};

std::vector<OComponent> OComponents(const ConjunctiveQuery& query) {
  const std::vector<const Atom*> o_atoms = query.OAtoms();
  const std::size_t n = o_atoms.size();
  // Variables per atom.
  std::vector<std::vector<std::string>> atom_vars(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const Term& term : o_atoms[i]->terms) {
      if (term.is_variable()) atom_vars[i].push_back(term.variable());
    }
  }
  // Union-find over atoms.
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool shares = std::any_of(
          atom_vars[i].begin(), atom_vars[i].end(), [&](const std::string& v) {
            return std::find(atom_vars[j].begin(), atom_vars[j].end(), v) !=
                   atom_vars[j].end();
          });
      if (shares) parent[find(i)] = find(j);
    }
  }
  std::map<std::size_t, OComponent> by_root;
  for (std::size_t i = 0; i < n; ++i) {
    OComponent& component = by_root[find(i)];
    component.atoms.push_back(*o_atoms[i]);
    for (const std::string& v : atom_vars[i]) {
      if (std::find(component.variables.begin(), component.variables.end(),
                    v) == component.variables.end()) {
        component.variables.push_back(v);
      }
    }
  }
  std::vector<OComponent> components;
  for (auto& [root, component] : by_root) {
    components.push_back(std::move(component));
  }
  return components;
}

/// A stable key for an item term: variables by name, constants by rendered
/// value (kinds disambiguated by Value::ToString quoting).
std::string TermKey(const Term& term) {
  return term.is_variable() ? "var:" + term.variable()
                            : "const:" + term.constant().ToString();
}

}  // namespace

std::vector<SessionReduction> ReduceItemwise(const RimPpd& ppd,
                                             const ConjunctiveQuery& query) {
  if (!query.IsBoolean()) {
    throw SchemaError("ReduceItemwise expects a Boolean query; substitute the "
                      "head variables first");
  }
  if (query.PAtoms().empty()) {
    throw SchemaError("ReduceItemwise expects at least one p-atom");
  }
  if (!query::IsItemwise(query)) {
    throw SchemaError("query is not itemwise: " + query.ToString());
  }

  const Atom& first_p = *query.PAtoms().front();
  const std::vector<Term> session_terms = first_p.SessionTerms();
  const RimPreferenceInstance& instance = ppd.PInstance(first_p.symbol);

  std::vector<SessionReduction> reductions;
  for (const auto& [session, model] : instance.sessions()) {
    query::Binding binding;
    if (!MatchSession(session_terms, session, binding)) continue;

    // Q^s: the query with the session bound (Lemma 4.8).
    ConjunctiveQuery bound = query;
    for (const auto& [variable, value] : binding) {
      bound = bound.Substitute(variable, value);
    }

    SessionReduction reduction;
    reduction.session = session;
    reduction.model = &model;
    reduction.labeling = infer::ItemLabeling(model.size());

    // Item terms of the bound query, in first-occurrence order.
    std::vector<Term> item_terms;
    std::vector<std::string> item_keys;
    auto node_of_term = [&](const Term& term) {
      const std::string key = TermKey(term);
      const auto it = std::find(item_keys.begin(), item_keys.end(), key);
      if (it != item_keys.end()) {
        return static_cast<unsigned>(it - item_keys.begin());
      }
      item_terms.push_back(term);
      item_keys.push_back(key);
      reduction.node_terms.push_back(term.ToString());
      return reduction.pattern.AddNode(
          static_cast<infer::LabelId>(item_terms.size() - 1));
    };

    for (const Atom* p_atom : bound.PAtoms()) {
      const unsigned lhs = node_of_term(p_atom->Lhs());
      const unsigned rhs = node_of_term(p_atom->Rhs());
      if (lhs == rhs) {
        reduction.reflexive_preference = true;
        break;
      }
      reduction.pattern.AddEdge(lhs, rhs);
    }
    if (reduction.reflexive_preference) {
      reductions.push_back(std::move(reduction));
      continue;
    }

    // O-components: satisfiability for item-variable-free ones, potential
    // matches for the single item variable otherwise (Lemma 4.8 part 2).
    const std::vector<std::string> item_variables = bound.ItemVariables();
    std::vector<bool> term_resolved(item_terms.size(), false);
    for (const OComponent& component : OComponents(bound)) {
      // The component's item variables.
      std::vector<std::string> in_component;
      for (const std::string& v : component.variables) {
        if (std::find(item_variables.begin(), item_variables.end(), v) !=
            item_variables.end()) {
          in_component.push_back(v);
        }
      }
      PPREF_CHECK_MSG(in_component.size() <= 1,
                      "itemwise invariant violated: component with "
                          << in_component.size() << " item variables");
      const ConjunctiveQuery component_query({}, component.atoms);
      if (in_component.empty()) {
        if (!query::IsSatisfiable(component_query, ppd.ODatabase())) {
          reduction.satisfiable = false;
          break;
        }
        continue;
      }
      // Potential matches of the item variable against each session item.
      const std::string& x = in_component.front();
      const auto node = std::find(item_keys.begin(), item_keys.end(),
                                  "var:" + x);
      PPREF_CHECK(node != item_keys.end());
      const unsigned node_index =
          static_cast<unsigned>(node - item_keys.begin());
      term_resolved[node_index] = true;
      for (rim::ItemId id = 0; id < model.size(); ++id) {
        query::Binding item_binding;
        item_binding.emplace(x, model.ItemOf(id));
        if (query::IsSatisfiable(component_query, ppd.ODatabase(),
                                 item_binding)) {
          reduction.labeling.AddLabel(id, reduction.pattern.NodeLabel(node_index));
        }
      }
    }
    if (!reduction.satisfiable) {
      reductions.push_back(std::move(reduction));
      continue;
    }

    // Remaining terms: constants label their own item; item variables with
    // no o-atoms are matched by every item.
    for (unsigned node = 0; node < item_terms.size(); ++node) {
      if (term_resolved[node]) continue;
      const infer::LabelId label = reduction.pattern.NodeLabel(node);
      const Term& term = item_terms[node];
      if (term.is_variable()) {
        for (rim::ItemId id = 0; id < model.size(); ++id) {
          reduction.labeling.AddLabel(id, label);
        }
      } else if (const auto id = model.IdOf(term.constant()); id.has_value()) {
        reduction.labeling.AddLabel(*id, label);
      }
      // A constant absent from the session's items leaves its label empty,
      // making the pattern probability 0 — as required.
    }
    reductions.push_back(std::move(reduction));
  }
  return reductions;
}

double SessionProb(const SessionReduction& reduction,
                   const infer::PatternProbOptions& options) {
  PPREF_CHECK(reduction.model != nullptr);
  // Process-wide PPD workload counters: evaluated sessions, split by the
  // trivial short-circuit vs. the ones that reach the inference engine.
  static obs::Counter& sessions = obs::MetricsRegistry::Default().GetCounter(
      "ppref_ppd_sessions_total",
      "Session reductions evaluated via SessionProb");
  static obs::Counter& trivial = obs::MetricsRegistry::Default().GetCounter(
      "ppref_ppd_sessions_trivial_total",
      "Sessions short-circuited to 0 (unsatisfiable or reflexive)");
  sessions.Inc();
  if (!reduction.satisfiable || reduction.reflexive_preference) {
    trivial.Inc();
    return 0.0;
  }
  const infer::LabeledRimModel labeled(reduction.model->model(),
                                       reduction.labeling);
  return infer::PatternProb(labeled, reduction.pattern, options);
}

}  // namespace ppref::ppd
