/// \file io.h
/// \brief Text serialization of RIM-PPDs — the physical-representation
/// direction of the paper's §6 ("efficient physical representations of
/// preferences"): sessions are stored compactly as model parameters, never
/// as materialized pairwise tuples.
///
/// Format (line oriented; value rows use the CSV conventions of db/csv.h):
///
///   # comments and blank lines are ignored
///   osymbol Candidates candidate,party,sex,edu
///   psymbol Polls voter,date|lcand|rcand
///   facts Candidates
///   "Clinton","D","F","JD"
///   end
///   session Polls mallows 0.3
///   "Ann","Oct-5"                      <- session tuple (may be empty line
///   "Clinton","Sanders","Rubio","Trump"   for a zero-arity session part)
///   end
///   session Polls rim
///   "Bob","Oct-5"
///   "a","b","c"                        <- reference items
///   1                                  <- insertion rows, one per step
///   0.3,0.7
///   0.1,0.2,0.7
///   end

#ifndef PPREF_PPD_IO_H_
#define PPREF_PPD_IO_H_

#include <string>

#include "ppref/ppd/ppd.h"

namespace ppref::ppd {

/// Serializes the PPD (schema, o-instances, sessions with model
/// parameters). Mallows sessions round-trip via (reference, φ); other RIM
/// sessions via their full insertion table.
std::string WritePpd(const RimPpd& ppd);

/// Parses a PPD from `text`. Throws ParseError / SchemaError on malformed
/// input.
RimPpd ReadPpd(const std::string& text);

}  // namespace ppref::ppd

#endif  // PPREF_PPD_IO_H_
