/// \file formula.h
/// \brief Exact evaluation of arbitrary propositional combinations of
/// itemwise Boolean CQs — AND, OR, NOT — over a RIM-PPD.
///
/// Everything reduces to union confidences: by inclusion–exclusion,
///   Pr(∧_{i∈S} Q_i) = Σ_{∅≠T⊆S} (−1)^{|T|+1} Pr(∨_{i∈T} Q_i),
/// and the UCQ evaluator supplies every Pr(∨_T) exactly. A Möbius inversion
/// then yields the probability of each exact truth assignment, from which
/// any formula is summed. Cost: O(2^q) UCQ evaluations for q distinct
/// atoms — exponential only in the (fixed) formula size, polynomial in the
/// data, completing the "larger fragments of FO" direction of §6 for the
/// propositional closure of itemwise CQs.

#ifndef PPREF_PPD_FORMULA_H_
#define PPREF_PPD_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "ppref/ppd/ppd.h"
#include "ppref/query/cq.h"

namespace ppref::ppd {

/// A propositional formula whose atoms are Boolean CQs.
class QueryFormula {
 public:
  /// Leaf: a Boolean CQ (must be itemwise or p-atom free when evaluated).
  static QueryFormula Atom(query::ConjunctiveQuery query);
  static QueryFormula And(std::vector<QueryFormula> operands);
  static QueryFormula Or(std::vector<QueryFormula> operands);
  static QueryFormula Not(QueryFormula operand);

  /// The distinct atom queries, in first-occurrence order (syntactic
  /// deduplication by ToString).
  std::vector<query::ConjunctiveQuery> Atoms() const;

  /// Truth value under an assignment to Atoms() (parallel bit vector).
  bool Evaluate(const std::vector<bool>& assignment) const;

  std::string ToString() const;

 private:
  enum class Kind { kAtom, kAnd, kOr, kNot };

  void CollectAtoms(std::vector<query::ConjunctiveQuery>& atoms,
                    std::vector<std::string>& keys) const;
  bool EvaluateInternal(const std::vector<std::string>& keys,
                        const std::vector<bool>& assignment) const;

  Kind kind_ = Kind::kAtom;
  std::shared_ptr<const query::ConjunctiveQuery> query_;
  std::vector<QueryFormula> operands_;
};

/// Pr(the formula holds in a random possible world). Throws SchemaError
/// when some atom with p-atoms is not itemwise, or when the formula has
/// more than `max_atoms` distinct atoms (2^q blow-up guard).
double EvaluateFormula(const RimPpd& ppd, const QueryFormula& formula,
                       unsigned max_atoms = 12);

}  // namespace ppref::ppd

#endif  // PPREF_PPD_FORMULA_H_
