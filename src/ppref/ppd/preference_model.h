/// \file preference_model.h
/// \brief Probabilistic preference models for sessions — §3.2.
///
/// A `SessionModel` is one session's parametric distribution over rankings
/// of *named* items: a RIM model over dense ids plus the dictionary mapping
/// ids to database values. MAL(σ, φ) models remember their dispersion for
/// display and for benchmarks that sweep φ.

#ifndef PPREF_PPD_PREFERENCE_MODEL_H_
#define PPREF_PPD_PREFERENCE_MODEL_H_

#include <optional>
#include <string>
#include <vector>

#include "ppref/db/value.h"
#include "ppref/rim/rim_model.h"

namespace ppref::ppd {

/// A RIM-family distribution over the rankings of a session's items.
class SessionModel {
 public:
  /// MAL(σ, φ): `reference` lists the items from most to least preferred.
  /// Throws SchemaError on duplicate items.
  static SessionModel Mallows(std::vector<db::Value> reference, double phi);

  /// RIM(σ, Π) with an explicit insertion function. Throws SchemaError on
  /// duplicate items or an insertion table not sized to the reference.
  static SessionModel Rim(std::vector<db::Value> reference,
                          rim::InsertionFunction insertion);

  /// Number of items.
  unsigned size() const { return model_.size(); }

  /// The items; index = dense item id used by `model()`. The reference
  /// ranking of `model()` is the identity over these ids.
  const std::vector<db::Value>& items() const { return items_; }

  /// The underlying RIM model over ids 0..size()-1.
  const rim::RimModel& model() const { return model_; }

  /// Dense id of `item` if it belongs to the session.
  std::optional<rim::ItemId> IdOf(const db::Value& item) const;

  /// The item named by dense id `id`.
  const db::Value& ItemOf(rim::ItemId id) const;

  /// Dispersion parameter when the model was built as Mallows.
  std::optional<double> phi() const { return phi_; }

  /// Renders e.g. "MAL(<'Clinton', 'Sanders'>, phi=0.3)".
  std::string ToString() const;

 private:
  SessionModel(std::vector<db::Value> items, rim::RimModel model,
               std::optional<double> phi);

  std::vector<db::Value> items_;
  rim::RimModel model_;
  std::optional<double> phi_;
};

}  // namespace ppref::ppd

#endif  // PPREF_PPD_PREFERENCE_MODEL_H_
