#include "ppref/ppd/formula.h"

#include <algorithm>

#include "ppref/common/check.h"
#include "ppref/ppd/ucq_evaluator.h"
#include "ppref/query/ucq.h"

namespace ppref::ppd {

QueryFormula QueryFormula::Atom(query::ConjunctiveQuery query) {
  if (!query.IsBoolean()) {
    throw SchemaError("formula atoms must be Boolean queries");
  }
  QueryFormula formula;
  formula.kind_ = Kind::kAtom;
  formula.query_ =
      std::make_shared<const query::ConjunctiveQuery>(std::move(query));
  return formula;
}

QueryFormula QueryFormula::And(std::vector<QueryFormula> operands) {
  PPREF_CHECK_MSG(!operands.empty(), "AND needs at least one operand");
  QueryFormula formula;
  formula.kind_ = Kind::kAnd;
  formula.operands_ = std::move(operands);
  return formula;
}

QueryFormula QueryFormula::Or(std::vector<QueryFormula> operands) {
  PPREF_CHECK_MSG(!operands.empty(), "OR needs at least one operand");
  QueryFormula formula;
  formula.kind_ = Kind::kOr;
  formula.operands_ = std::move(operands);
  return formula;
}

QueryFormula QueryFormula::Not(QueryFormula operand) {
  QueryFormula formula;
  formula.kind_ = Kind::kNot;
  formula.operands_.push_back(std::move(operand));
  return formula;
}

void QueryFormula::CollectAtoms(std::vector<query::ConjunctiveQuery>& atoms,
                                std::vector<std::string>& keys) const {
  if (kind_ == Kind::kAtom) {
    const std::string key = query_->ToString();
    if (std::find(keys.begin(), keys.end(), key) == keys.end()) {
      keys.push_back(key);
      atoms.push_back(*query_);
    }
    return;
  }
  for (const QueryFormula& operand : operands_) {
    operand.CollectAtoms(atoms, keys);
  }
}

std::vector<query::ConjunctiveQuery> QueryFormula::Atoms() const {
  std::vector<query::ConjunctiveQuery> atoms;
  std::vector<std::string> keys;
  CollectAtoms(atoms, keys);
  return atoms;
}

bool QueryFormula::EvaluateInternal(
    const std::vector<std::string>& keys,
    const std::vector<bool>& assignment) const {
  switch (kind_) {
    case Kind::kAtom: {
      const auto it =
          std::find(keys.begin(), keys.end(), query_->ToString());
      PPREF_CHECK(it != keys.end());
      return assignment[static_cast<std::size_t>(it - keys.begin())];
    }
    case Kind::kAnd:
      return std::all_of(operands_.begin(), operands_.end(),
                         [&](const QueryFormula& operand) {
                           return operand.EvaluateInternal(keys, assignment);
                         });
    case Kind::kOr:
      return std::any_of(operands_.begin(), operands_.end(),
                         [&](const QueryFormula& operand) {
                           return operand.EvaluateInternal(keys, assignment);
                         });
    case Kind::kNot:
      return !operands_.front().EvaluateInternal(keys, assignment);
  }
  return false;
}

bool QueryFormula::Evaluate(const std::vector<bool>& assignment) const {
  std::vector<query::ConjunctiveQuery> atoms;
  std::vector<std::string> keys;
  CollectAtoms(atoms, keys);
  PPREF_CHECK(assignment.size() == keys.size());
  return EvaluateInternal(keys, assignment);
}

std::string QueryFormula::ToString() const {
  switch (kind_) {
    case Kind::kAtom:
      return "[" + query_->ToString() + "]";
    case Kind::kNot:
      return "NOT " + operands_.front().ToString();
    case Kind::kAnd:
    case Kind::kOr: {
      std::string out = "(";
      for (std::size_t i = 0; i < operands_.size(); ++i) {
        if (i > 0) out += kind_ == Kind::kAnd ? " AND " : " OR ";
        out += operands_[i].ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

double EvaluateFormula(const RimPpd& ppd, const QueryFormula& formula,
                       unsigned max_atoms) {
  const std::vector<query::ConjunctiveQuery> atoms = formula.Atoms();
  const unsigned q = static_cast<unsigned>(atoms.size());
  if (q > max_atoms) {
    throw SchemaError("formula has " + std::to_string(q) +
                      " distinct atoms; the 2^q expansion is capped at " +
                      std::to_string(max_atoms));
  }
  const std::size_t subsets = std::size_t{1} << q;

  // Pr(∨_T Q) per nonempty subset.
  std::vector<double> union_prob(subsets, 0.0);
  for (std::size_t mask = 1; mask < subsets; ++mask) {
    std::vector<query::ConjunctiveQuery> disjuncts;
    for (unsigned i = 0; i < q; ++i) {
      if (mask & (std::size_t{1} << i)) disjuncts.push_back(atoms[i]);
    }
    union_prob[mask] =
        EvaluateBooleanUnion(ppd, query::UnionQuery(std::move(disjuncts)));
  }

  // Pr(∧_S Q) by inclusion–exclusion over the unions.
  std::vector<double> and_prob(subsets, 0.0);
  and_prob[0] = 1.0;
  for (std::size_t mask = 1; mask < subsets; ++mask) {
    double total = 0.0;
    for (std::size_t sub = mask; sub != 0; sub = (sub - 1) & mask) {
      const bool odd = __builtin_popcountll(sub) % 2 == 1;
      total += (odd ? 1.0 : -1.0) * union_prob[sub];
    }
    and_prob[mask] = total;
  }

  // Möbius: Pr(exactly the atoms in T hold).
  std::vector<double> exact(subsets, 0.0);
  for (std::size_t t = 0; t < subsets; ++t) {
    double total = 0.0;
    for (std::size_t s = 0; s < subsets; ++s) {
      if ((s & t) != t) continue;  // need S ⊇ T
      const bool even = __builtin_popcountll(s ^ t) % 2 == 0;
      total += (even ? 1.0 : -1.0) * and_prob[s];
    }
    exact[t] = total;
  }

  double probability = 0.0;
  std::vector<bool> assignment(q, false);
  for (std::size_t t = 0; t < subsets; ++t) {
    for (unsigned i = 0; i < q; ++i) {
      assignment[i] = (t & (std::size_t{1} << i)) != 0;
    }
    if (formula.Evaluate(assignment)) probability += exact[t];
  }
  return std::clamp(probability, 0.0, 1.0);
}

}  // namespace ppref::ppd
