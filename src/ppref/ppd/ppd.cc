#include "ppref/ppd/ppd.h"

#include "ppref/common/check.h"

namespace ppref::ppd {

void RimPreferenceInstance::AddSession(db::Tuple session, SessionModel model) {
  // Session data is user input: violations throw rather than abort.
  if (session.size() != signature_.session_arity()) {
    throw SchemaError("session tuple " + db::ToString(session) +
                      " has arity " + std::to_string(session.size()) +
                      "; signature needs " +
                      std::to_string(signature_.session_arity()));
  }
  for (const auto& [existing, unused_model] : sessions_) {
    if (existing == session) {
      throw SchemaError("duplicate session " + db::ToString(session));
    }
  }
  sessions_.emplace_back(std::move(session), std::move(model));
}

RimPpd::RimPpd(db::PreferenceSchema schema)
    : schema_(schema), o_database_(schema) {
  for (const std::string& symbol : schema_.PSymbols()) {
    p_instances_.emplace(symbol,
                         RimPreferenceInstance(schema_.PSignature(symbol)));
  }
}

const db::Relation& RimPpd::OInstance(const std::string& symbol) const {
  if (!schema_.IsOSymbol(symbol)) {
    throw SchemaError("'" + symbol + "' is not an o-symbol");
  }
  return o_database_.Instance(symbol);
}

db::Relation& RimPpd::MutableOInstance(const std::string& symbol) {
  if (!schema_.IsOSymbol(symbol)) {
    throw SchemaError("'" + symbol + "' is not an o-symbol");
  }
  return o_database_.MutableInstance(symbol);
}

void RimPpd::AddFact(const std::string& symbol, db::Tuple tuple) {
  MutableOInstance(symbol).Add(std::move(tuple));
}

void RimPpd::AddFact(const std::string& symbol,
                     std::initializer_list<db::Value> values) {
  AddFact(symbol, db::Tuple(values));
}

const RimPreferenceInstance& RimPpd::PInstance(const std::string& symbol) const {
  const auto it = p_instances_.find(symbol);
  if (it == p_instances_.end()) {
    throw SchemaError("'" + symbol + "' is not a p-symbol");
  }
  return it->second;
}

void RimPpd::AddSession(const std::string& symbol, db::Tuple session,
                        SessionModel model) {
  const auto it = p_instances_.find(symbol);
  if (it == p_instances_.end()) {
    throw SchemaError("'" + symbol + "' is not a p-symbol");
  }
  it->second.AddSession(std::move(session), std::move(model));
}

RimPpd ElectionPpd() {
  RimPpd ppd(db::ElectionSchema());
  ppd.AddFact("Candidates", {"Clinton", "D", "F", "JD"});
  ppd.AddFact("Candidates", {"Sanders", "D", "M", "BS"});
  ppd.AddFact("Candidates", {"Rubio", "R", "M", "JD"});
  ppd.AddFact("Candidates", {"Trump", "R", "M", "BS"});
  ppd.AddFact("Voters", {"Ann", "BS", "F", 34});
  ppd.AddFact("Voters", {"Bob", "JD", "M", 51});
  ppd.AddFact("Voters", {"Dave", "BS", "M", 27});
  // Figure 2: (Ann, Oct-5) carries MAL(<Clinton, Sanders, Rubio, Trump>, 0.3).
  ppd.AddSession("Polls", {"Ann", "Oct-5"},
                 SessionModel::Mallows({"Clinton", "Sanders", "Rubio", "Trump"},
                                       0.3));
  ppd.AddSession("Polls", {"Bob", "Oct-5"},
                 SessionModel::Mallows({"Sanders", "Rubio", "Clinton", "Trump"},
                                       0.5));
  ppd.AddSession("Polls", {"Dave", "Nov-5"},
                 SessionModel::Mallows({"Clinton", "Rubio", "Sanders", "Trump"},
                                       0.3));
  return ppd;
}

}  // namespace ppref::ppd
