#include "ppref/ppd/io.h"

#include <cctype>
#include <cstdio>
#include <optional>
#include <sstream>

#include "ppref/common/check.h"
#include "ppref/db/csv.h"

namespace ppref::ppd {
namespace {

/// Splits comma-separated attribute names (no quoting in schema lines).
std::vector<std::string> SplitAttributes(const std::string& text) {
  std::vector<std::string> names;
  std::string current;
  for (char c : text) {
    if (c == ',') {
      names.push_back(current);
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      current += c;
    }
  }
  if (!current.empty()) names.push_back(current);
  return names;
}

std::string JoinAttributes(const std::vector<std::string>& names) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ",";
    out += names[i];
  }
  return out;
}

/// One CSV row serialized on a single line.
std::string RowToCsv(const db::Tuple& tuple) {
  db::Relation scratch(db::RelationSignature([&] {
    std::vector<std::string> names;
    for (std::size_t i = 0; i < tuple.size(); ++i) {
      names.push_back("c" + std::to_string(i));
    }
    return names;
  }()));
  scratch.Add(tuple);
  std::string csv = db::WriteCsv(scratch);
  if (!csv.empty() && csv.back() == '\n') csv.pop_back();
  return csv;
}

db::Tuple RowFromCsv(const std::string& line) {
  const auto rows = db::ParseCsv(line);
  if (rows.size() != 1) {
    throw ParseError("expected one CSV row, got: " + line);
  }
  return rows[0];
}

/// Line-cursor over the input with comment/blank skipping.
class LineReader {
 public:
  explicit LineReader(const std::string& text) {
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      lines_.push_back(line);
    }
  }

  /// Next significant line, or nullopt at end.
  std::optional<std::string> Next() {
    while (index_ < lines_.size()) {
      const std::string& line = lines_[index_++];
      std::size_t first = line.find_first_not_of(" \t");
      if (first == std::string::npos) continue;
      if (line[first] == '#') continue;
      return line;
    }
    return std::nullopt;
  }

  /// Next raw line (still skipping blanks/comments) or throws.
  std::string Require(const std::string& what) {
    auto line = Next();
    if (!line.has_value()) {
      throw ParseError("unexpected end of PPD text: expected " + what);
    }
    return *line;
  }

 private:
  std::vector<std::string> lines_;
  std::size_t index_ = 0;
};

}  // namespace

std::string WritePpd(const RimPpd& ppd) {
  std::ostringstream out;
  out << "# ppref probabilistic preference database v1\n";
  for (const std::string& symbol : ppd.schema().OSymbols()) {
    out << "osymbol " << symbol << " "
        << JoinAttributes(ppd.schema().OSignature(symbol).attributes())
        << "\n";
  }
  for (const std::string& symbol : ppd.schema().PSymbols()) {
    const db::PreferenceSignature& signature = ppd.schema().PSignature(symbol);
    out << "psymbol " << symbol << " "
        << JoinAttributes(signature.session().attributes()) << "|"
        << signature.lhs() << "|" << signature.rhs() << "\n";
  }
  for (const std::string& symbol : ppd.schema().OSymbols()) {
    const db::Relation& instance = ppd.OInstance(symbol);
    if (instance.empty()) continue;
    out << "facts " << symbol << "\n" << db::WriteCsv(instance) << "end\n";
  }
  for (const std::string& symbol : ppd.schema().PSymbols()) {
    for (const auto& [session, model] : ppd.PInstance(symbol).sessions()) {
      if (model.phi().has_value()) {
        char phi_text[32];
        std::snprintf(phi_text, sizeof(phi_text), "%.17g", *model.phi());
        out << "session " << symbol << " mallows " << phi_text << "\n";
      } else {
        out << "session " << symbol << " rim\n";
      }
      out << RowToCsv(session) << "\n";
      out << RowToCsv(model.items()) << "\n";
      if (!model.phi().has_value()) {
        for (unsigned t = 0; t < model.size(); ++t) {
          const auto& row = model.model().insertion().Row(t);
          for (unsigned j = 0; j <= t; ++j) {
            if (j > 0) out << ",";
            char cell[32];
            std::snprintf(cell, sizeof(cell), "%.17g", row[j]);
            out << cell;
          }
          out << "\n";
        }
      }
      out << "end\n";
    }
  }
  return out.str();
}

RimPpd ReadPpd(const std::string& text) {
  LineReader reader(text);
  db::PreferenceSchema schema;
  struct FactsBlock {
    std::string symbol;
    std::vector<db::Tuple> rows;
  };
  struct SessionBlock {
    std::string symbol;
    db::Tuple session;
    SessionModel model = SessionModel::Mallows({db::Value(0)}, 1.0);
  };
  std::vector<FactsBlock> facts;
  std::vector<SessionBlock> sessions;

  while (auto line_opt = reader.Next()) {
    std::istringstream line(*line_opt);
    std::string keyword;
    line >> keyword;
    if (keyword == "osymbol") {
      std::string name, attrs;
      line >> name >> attrs;
      schema.AddOSymbol(name, db::RelationSignature(SplitAttributes(attrs)));
    } else if (keyword == "psymbol") {
      std::string name, spec;
      line >> name >> spec;
      const std::size_t bar1 = spec.find('|');
      const std::size_t bar2 = spec.find('|', bar1 + 1);
      if (bar1 == std::string::npos || bar2 == std::string::npos) {
        throw ParseError("psymbol spec must be session|lhs|rhs, got: " + spec);
      }
      schema.AddPSymbol(
          name, db::PreferenceSignature(
                    db::RelationSignature(SplitAttributes(spec.substr(0, bar1))),
                    spec.substr(bar1 + 1, bar2 - bar1 - 1),
                    spec.substr(bar2 + 1)));
    } else if (keyword == "facts") {
      FactsBlock block;
      line >> block.symbol;
      while (true) {
        const std::string row = reader.Require("a fact row or 'end'");
        if (row == "end") break;
        block.rows.push_back(RowFromCsv(row));
      }
      facts.push_back(std::move(block));
    } else if (keyword == "session") {
      SessionBlock block;
      std::string family;
      line >> block.symbol >> family;
      const unsigned session_arity =
          schema.PSignature(block.symbol).session_arity();
      block.session = session_arity == 0
                          ? db::Tuple{}
                          : RowFromCsv(reader.Require("session tuple"));
      std::vector<db::Value> items =
          RowFromCsv(reader.Require("reference items"));
      if (family == "mallows") {
        double phi = 0.0;
        line >> phi;
        block.model = SessionModel::Mallows(std::move(items), phi);
      } else if (family == "rim") {
        std::vector<std::vector<double>> rows;
        for (std::size_t t = 0; t < items.size(); ++t) {
          const db::Tuple row = RowFromCsv(reader.Require("insertion row"));
          std::vector<double> probabilities;
          for (const db::Value& cell : row) {
            probabilities.push_back(cell.kind() == db::Value::Kind::kInt
                                        ? static_cast<double>(cell.AsInt())
                                        : cell.AsDouble());
          }
          rows.push_back(std::move(probabilities));
        }
        block.model = SessionModel::Rim(
            std::move(items), rim::InsertionFunction(std::move(rows)));
      } else {
        throw ParseError("unknown session family '" + family + "'");
      }
      if (reader.Require("'end'") != "end") {
        throw ParseError("session block must close with 'end'");
      }
      sessions.push_back(std::move(block));
    } else {
      throw ParseError("unknown PPD directive '" + keyword + "'");
    }
  }

  RimPpd ppd(std::move(schema));
  for (FactsBlock& block : facts) {
    for (db::Tuple& row : block.rows) {
      ppd.AddFact(block.symbol, std::move(row));
    }
  }
  for (SessionBlock& block : sessions) {
    ppd.AddSession(block.symbol, std::move(block.session),
                   std::move(block.model));
  }
  return ppd;
}

}  // namespace ppref::ppd
