#include "ppref/hard/consensus.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <vector>

#include "ppref/common/check.h"
#include "ppref/hard/estimator.h"
#include "ppref/hard/sampler.h"
#include "ppref/rim/kendall.h"
#include "ppref/rim/sampler.h"

namespace ppref::hard {
namespace {

constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

}  // namespace

std::vector<unsigned> MinCostAssignment(
    const std::vector<std::vector<std::int64_t>>& cost,
    const RunControl* control) {
  const std::size_t n = cost.size();
  PPREF_CHECK(n > 0);
  for (const auto& row : cost) PPREF_CHECK(row.size() == n);

  // Hungarian algorithm with potentials, 1-indexed internal arrays; the
  // classic O(n³) shortest-augmenting-path formulation. Every tie breaks to
  // the smallest column index, so the assignment is deterministic.
  std::vector<std::int64_t> u(n + 1, 0);
  std::vector<std::int64_t> v(n + 1, 0);
  std::vector<std::size_t> match(n + 1, 0);  // column -> assigned row
  std::vector<std::size_t> way(n + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    if (control != nullptr) control->Check();
    match[0] = i;
    std::size_t j0 = 0;
    std::vector<std::int64_t> minv(n + 1, kInf);
    std::vector<char> used(n + 1, 0);
    do {
      used[j0] = 1;
      const std::size_t i0 = match[j0];
      std::int64_t delta = kInf;
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j] != 0) continue;
        const std::int64_t reduced = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (reduced < minv[j]) {
          minv[j] = reduced;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j] != 0) {
          u[match[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (match[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      match[j0] = match[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<unsigned> assignment(n, 0);
  for (std::size_t j = 1; j <= n; ++j) {
    assignment[match[j] - 1] = static_cast<unsigned>(j - 1);
  }
  return assignment;
}

ConsensusResult ConsensusRanking(const rim::RimModel& model,
                                 const ConsensusOptions& options) {
  PPREF_CHECK(options.samples > 0);
  PPREF_CHECK(options.block_samples > 0);
  const unsigned m = model.size();
  const unsigned blocks =
      SeededBlockCount(options.samples, options.block_samples);

  // Pass 1: per-block position-count matrices counts[i][p], merged in block
  // order (integer adds — thread-count invariant).
  std::vector<std::vector<std::uint64_t>> counts(
      m, std::vector<std::uint64_t>(m, 0));
  {
    std::vector<std::vector<std::uint32_t>> block_counts(
        blocks, std::vector<std::uint32_t>(std::size_t{m} * m, 0));
    RunSeededBlocks(0, blocks, options.samples, options.block_samples,
                    options.seed, options.threads, options.control,
                    [&](const SampleBlock& block, Rng& rng) {
                      std::vector<std::uint32_t>& local =
                          block_counts[block.index];
                      for (unsigned s = block.begin; s < block.end; ++s) {
                        const rim::Ranking tau = rim::SampleRanking(model, rng);
                        for (unsigned p = 0; p < m; ++p) {
                          ++local[std::size_t{tau.At(p)} * m + p];
                        }
                      }
                    });
    for (const auto& local : block_counts) {
      for (unsigned i = 0; i < m; ++i) {
        for (unsigned p = 0; p < m; ++p) {
          counts[i][p] += local[std::size_t{i} * m + p];
        }
      }
    }
  }

  // Footrule-optimal consensus = min-cost assignment of items to positions
  // with cost(i, j) = Σ_p counts[i][p]·|p − j|. Bounded: Σ_p counts[i][p] is
  // the sample count, so each cell is ≤ samples · (m−1) — far inside int64.
  std::vector<std::vector<std::int64_t>> cost(
      m, std::vector<std::int64_t>(m, 0));
  for (unsigned i = 0; i < m; ++i) {
    for (unsigned j = 0; j < m; ++j) {
      std::int64_t total = 0;
      for (unsigned p = 0; p < m; ++p) {
        if (counts[i][p] == 0) continue;
        total += static_cast<std::int64_t>(counts[i][p]) *
                 std::abs(static_cast<std::int64_t>(p) -
                          static_cast<std::int64_t>(j));
      }
      cost[i][j] = total;
    }
  }
  const std::vector<unsigned> position_of =
      MinCostAssignment(cost, options.control);
  std::vector<rim::ItemId> order(m, 0);
  for (unsigned i = 0; i < m; ++i) {
    order[position_of[i]] = static_cast<rim::ItemId>(i);
  }
  const rim::Ranking consensus(order);

  // Pass 2: replay the identical worlds (same per-block seeds) and Welford
  // the two distances to the consensus, merging accumulators in block order.
  struct BlockStats {
    WelfordAccumulator footrule;
    WelfordAccumulator kendall;
  };
  std::vector<BlockStats> block_stats(blocks);
  RunSeededBlocks(
      0, blocks, options.samples, options.block_samples, options.seed,
      options.threads, options.control,
      [&](const SampleBlock& block, Rng& rng) {
        BlockStats& stats = block_stats[block.index];
        for (unsigned s = block.begin; s < block.end; ++s) {
          const rim::Ranking tau = rim::SampleRanking(model, rng);
          std::uint64_t footrule = 0;
          for (unsigned i = 0; i < m; ++i) {
            const auto item = static_cast<rim::ItemId>(i);
            const std::int64_t diff =
                static_cast<std::int64_t>(tau.PositionOf(item)) -
                static_cast<std::int64_t>(consensus.PositionOf(item));
            footrule += static_cast<std::uint64_t>(std::abs(diff));
          }
          stats.footrule.Add(static_cast<double>(footrule));
          stats.kendall.Add(
              static_cast<double>(rim::KendallTau(tau, consensus)));
        }
      });
  WelfordAccumulator footrule;
  WelfordAccumulator kendall;
  for (const BlockStats& stats : block_stats) {
    footrule.Merge(stats.footrule);
    kendall.Merge(stats.kendall);
  }

  ConsensusResult result;
  result.ranking = std::move(order);
  result.mean_footrule = footrule.mean();
  result.footrule_std_error = footrule.std_error();
  result.mean_kendall = kendall.mean();
  result.kendall_std_error = kendall.std_error();
  result.n_samples = footrule.count();
  return result;
}

}  // namespace ppref::hard
