/// \file sampler.h
/// \brief `ppref::hard` — the seeded block-sampling core shared by every
/// Monte-Carlo estimator in the tree.
///
/// All sampling in this codebase follows one discipline, and this header is
/// its single implementation point: draws are partitioned into fixed-size
/// blocks, block `b` runs on a private `Rng(HashCombine(seed, b))` stream,
/// blocks execute in parallel but reduce in block-index order. An estimate
/// is therefore a pure function of (seed, sample budget, block size) — never
/// of the thread count — which is what lets caches replay it, lets the
/// adaptive estimator (estimator.h) stop at any block boundary without
/// perturbing the draws before it, and lets the world pool (world_pool.h)
/// prove its answers bit-identical to per-query sampling.
///
/// `infer/monte_carlo` (block size 1024, ranking worlds) and
/// `ppd/monte_carlo_evaluator` (block size 256, database worlds) both run on
/// this core, so there is exactly one thread-invariance proof point.

#ifndef PPREF_HARD_SAMPLER_H_
#define PPREF_HARD_SAMPLER_H_

#include <cstdint>
#include <functional>

#include "ppref/common/deadline.h"
#include "ppref/common/hash.h"
#include "ppref/common/parallel.h"
#include "ppref/common/random.h"

namespace ppref::hard {

/// One block of the sample space: absolute block index plus the half-open
/// sample range it covers under the run's total budget.
struct SampleBlock {
  unsigned index = 0;
  unsigned begin = 0;
  unsigned end = 0;
};

/// Number of blocks a budget of `samples` draws occupies at `block_samples`
/// per block (the final block may be short).
inline unsigned SeededBlockCount(unsigned samples, unsigned block_samples) {
  return (samples + block_samples - 1) / block_samples;
}

/// The sample range of absolute block `b` under a total budget of `samples`.
inline SampleBlock SeededBlockAt(unsigned b, unsigned samples,
                                 unsigned block_samples) {
  SampleBlock block;
  block.index = b;
  block.begin = b * block_samples;
  const unsigned end = block.begin + block_samples;
  block.end = end < samples ? end : samples;
  return block;
}

/// Runs blocks [first_block, first_block + block_count) in parallel, each on
/// its own `Rng(HashCombine(seed, b))` stream. `body(block, rng)` must write
/// its reduction state into a slot owned by `block.index` — the caller
/// merges slots in index order, which is what keeps the reduction
/// thread-count-invariant. `control`, when non-null, is polled once per
/// block (throwing Check()).
template <typename Body>
void RunSeededBlocks(unsigned first_block, unsigned block_count,
                     unsigned samples, unsigned block_samples,
                     std::uint64_t seed, unsigned threads,
                     const RunControl* control, Body&& body) {
  ParallelFor(block_count, ClampThreads(threads), [&](std::size_t i) {
    if (control != nullptr) control->Check();
    const unsigned b = first_block + static_cast<unsigned>(i);
    const SampleBlock block = SeededBlockAt(b, samples, block_samples);
    Rng rng(HashCombine(seed, b));
    body(block, rng);
  });
}

/// The fixed-budget Bernoulli reduction both `infer::PatternProbMonteCarlo`
/// and `ppd`'s world sampler are built on: every block counts its hits via
/// `block_hits(rng, begin, end)`, and the counts sum in block-index order.
unsigned SeededBlockHits(
    unsigned samples, unsigned block_samples, std::uint64_t seed,
    unsigned threads, const RunControl* control,
    const std::function<unsigned(Rng&, unsigned, unsigned)>& block_hits);

}  // namespace ppref::hard

#endif  // PPREF_HARD_SAMPLER_H_
