#include "ppref/hard/world_pool.h"

#include <algorithm>
#include <vector>

#include "ppref/common/check.h"
#include "ppref/hard/sampler.h"
#include "ppref/infer/matching.h"
#include "ppref/rim/sampler.h"

namespace ppref::hard {

std::vector<AdaptiveEstimate> EstimatePatternProbsPooled(
    const infer::LabeledRimModel& model,
    const std::vector<const infer::LabelPattern*>& patterns,
    const AdaptiveOptions& options) {
  PPREF_CHECK(options.max_samples > 0);
  PPREF_CHECK(options.block_samples > 0);
  const std::size_t q_count = patterns.size();
  std::vector<AdaptiveEstimate> out(q_count);
  if (q_count == 0) return out;

  const unsigned total_blocks =
      SeededBlockCount(options.max_samples, options.block_samples);
  std::vector<std::uint64_t> hits(q_count, 0);
  // Which queries still evaluate incoming worlds. Written only between
  // rounds; the parallel block bodies read it.
  std::vector<char> active(q_count, 1);
  std::size_t active_count = q_count;

  unsigned next_block = 0;
  unsigned round = 0;
  while (next_block < total_blocks && active_count > 0) {
    const unsigned count =
        std::min(AdaptiveRoundBlocks(round), total_blocks - next_block);
    // round_hits[i][q]: query q's hits in the round's i-th block.
    std::vector<std::vector<unsigned>> round_hits(
        count, std::vector<unsigned>(q_count, 0));
    RunSeededBlocks(
        next_block, count, options.max_samples, options.block_samples,
        options.seed, options.threads, options.control,
        [&](const SampleBlock& block, Rng& rng) {
          std::vector<unsigned>& local = round_hits[block.index - next_block];
          for (unsigned s = block.begin; s < block.end; ++s) {
            // One world for the whole batch; evaluation consumes no
            // randomness, so the stream matches a per-query run exactly.
            const rim::Ranking tau = rim::SampleRanking(model.model(), rng);
            for (std::size_t q = 0; q < q_count; ++q) {
              if (active[q] != 0 &&
                  infer::Matches(*patterns[q], model.labeling(), tau)) {
                ++local[q];
              }
            }
          }
        });
    next_block += count;
    ++round;
    const std::uint64_t n =
        SeededBlockAt(next_block - 1, options.max_samples,
                      options.block_samples)
            .end;

    const bool budget_expired = next_block < total_blocks &&
                                options.budget != nullptr &&
                                options.budget->Expired();
    for (std::size_t q = 0; q < q_count; ++q) {
      if (active[q] == 0) continue;
      for (const std::vector<unsigned>& block : round_hits) {
        hits[q] += block[q];
      }
      const BernoulliEstimate point = EstimateFromBernoulliCount(hits[q], n);
      out[q].estimate = point.estimate;
      out[q].std_error = point.std_error;
      out[q].n_samples = n;
      if (options.target_half_width > 0.0 && n >= options.min_samples &&
          options.z * point.std_error <= options.target_half_width) {
        out[q].target_met = true;
        active[q] = 0;
        --active_count;
      } else if (budget_expired) {
        out[q].deadline_limited = true;
      }
    }
    if (budget_expired) break;
  }
  return out;
}

}  // namespace ppref::hard
