/// \file consensus.h
/// \brief `ppref::hard` — consensus top-k rankings from sampled worlds,
/// after Li & Deshpande ("Consensus Answers for Queries over Probabilistic
/// Databases").
///
/// The consensus ranking minimizes the *expected distance* to a random
/// world of the model. Under Spearman's footrule
/// `d_F(τ, c) = Σ_i |τ(i) − c(i)|` the minimizer over the sampled empirical
/// distribution has a classic exact form (Dwork et al.): it is a min-cost
/// perfect matching of items to positions with costs
/// `cost(i, j) = Σ_p counts[i][p] · |p − j|`, where `counts[i][p]` is how
/// many sampled worlds put item i at position p. The matching is solved
/// exactly (Hungarian, O(m³) on integer costs, fully deterministic), so the
/// consensus is the true footrule minimizer of the sample — no heuristic.
/// Footrule is a 2-approximation of the (NP-hard to optimize) Kendall
/// median by Diaconis–Graham, so both distances are reported.
///
/// Sampling is seeded and block-reduced (sampler.h): pass 1 accumulates the
/// position-count matrix, pass 2 replays the identical worlds to Welford
/// the footrule and Kendall-tau distances of each world to the consensus —
/// honest std_errors without storing any world. Everything is a pure
/// function of (model, seed, samples), bit-identical across thread counts.

#ifndef PPREF_HARD_CONSENSUS_H_
#define PPREF_HARD_CONSENSUS_H_

#include <cstdint>
#include <vector>

#include "ppref/common/deadline.h"
#include "ppref/rim/ranking.h"
#include "ppref/rim/rim_model.h"

namespace ppref::hard {

struct ConsensusOptions {
  /// Worlds to sample. Fixed (not adaptive): the consensus is an argmin, not
  /// a mean, so the budget is part of the cache key rather than a stop rule.
  unsigned samples = 4096;
  unsigned block_samples = 1024;
  /// Worker threads over blocks (0 = auto); answer identical for all values.
  unsigned threads = 1;
  std::uint64_t seed = 1;
  /// Throwing cancel/deadline checks, polled per block and per Hungarian row.
  const RunControl* control = nullptr;
};

struct ConsensusResult {
  /// The footrule-optimal consensus order, best item first (full length m;
  /// callers truncate to their k).
  std::vector<rim::ItemId> ranking;
  /// Mean footrule distance of a sampled world to the consensus, with the
  /// standard error of that mean.
  double mean_footrule = 0.0;
  double footrule_std_error = 0.0;
  /// Same statistics under Kendall's tau distance.
  double mean_kendall = 0.0;
  double kendall_std_error = 0.0;
  std::uint64_t n_samples = 0;
};

/// Exact min-cost assignment (Hungarian with potentials, O(n³)): returns for
/// each row the column it is assigned. `cost` must be square and non-empty.
/// Deterministic; exposed for tests and reusable as a generic primitive.
std::vector<unsigned> MinCostAssignment(
    const std::vector<std::vector<std::int64_t>>& cost,
    const RunControl* control = nullptr);

/// Samples `options.samples` worlds of `model` and returns the
/// footrule-optimal consensus ranking with its distance statistics.
ConsensusResult ConsensusRanking(const rim::RimModel& model,
                                 const ConsensusOptions& options);

}  // namespace ppref::hard

#endif  // PPREF_HARD_CONSENSUS_H_
