/// \file world_pool.h
/// \brief `ppref::hard` — shared world pools: amortize RIM sampling across a
/// batch of hard queries against the same model.
///
/// Sampling a ranking world is O(m²); evaluating one pattern against a
/// drawn world is O(k·m). A batch of hard queries over one model therefore
/// wastes almost all of its time re-drawing the same worlds. The pool runs
/// the adaptive round schedule of estimator.h once, draws each world once,
/// and evaluates every still-active query against it.
///
/// ## The sharing rule (what makes pooled answers provably bit-identical)
/// A drawn world consumes the block's RNG stream; evaluating queries against
/// it consumes nothing. So block b of a pooled run contains *exactly* the
/// worlds block b of a per-query run would draw, every query sees identical
/// per-block hit counts, and — because the round schedule and the stopping
/// rule are query-local functions of (options, own hits) — every query
/// stops at the same round with the same (estimate, std_error, n_samples)
/// as a solo adaptive run at the same seed. A query whose precision target
/// is met simply leaves the evaluation set; the worlds keep flowing for the
/// others.

#ifndef PPREF_HARD_WORLD_POOL_H_
#define PPREF_HARD_WORLD_POOL_H_

#include <vector>

#include "ppref/hard/estimator.h"
#include "ppref/infer/labeled_rim.h"
#include "ppref/infer/pattern.h"

namespace ppref::hard {

/// Adaptive estimates of Pr(g_q | σ, Π, λ) for every pattern in `patterns`,
/// from one shared stream of sampled worlds. Options apply per query (each
/// query has its own stopping decision); `options.budget` expiry marks every
/// still-unconverged query `deadline_limited`. Result order = input order.
std::vector<AdaptiveEstimate> EstimatePatternProbsPooled(
    const infer::LabeledRimModel& model,
    const std::vector<const infer::LabelPattern*>& patterns,
    const AdaptiveOptions& options);

}  // namespace ppref::hard

#endif  // PPREF_HARD_WORLD_POOL_H_
