#include "ppref/hard/sampler.h"

#include <vector>

namespace ppref::hard {

unsigned SeededBlockHits(
    unsigned samples, unsigned block_samples, std::uint64_t seed,
    unsigned threads, const RunControl* control,
    const std::function<unsigned(Rng&, unsigned, unsigned)>& block_hits) {
  const unsigned blocks = SeededBlockCount(samples, block_samples);
  std::vector<unsigned> hits(blocks, 0);
  RunSeededBlocks(0, blocks, samples, block_samples, seed, threads, control,
                  [&](const SampleBlock& block, Rng& rng) {
                    hits[block.index] = block_hits(rng, block.begin, block.end);
                  });
  unsigned total = 0;
  for (const unsigned h : hits) total += h;
  return total;
}

}  // namespace ppref::hard
