/// \file estimator.h
/// \brief `ppref::hard` — variance-adaptive Monte-Carlo estimation with
/// early stopping, following Ping/Stoyanovich/Kimelfeld ("Supporting Hard
/// Queries over Probabilistic Preferences").
///
/// The estimator samples in *rounds* of seeded blocks (sampler.h) and
/// evaluates its stopping rule only at round boundaries, on the cumulative
/// prefix of blocks. The round schedule — 1, 1, 2, 4, … blocks, capped —
/// is a pure function of the sample budget, so which draws contribute to an
/// early-stopped estimate depends only on (seed, target, budget), never on
/// thread count or wall clock. Three stop conditions:
///
///  1. **Precision**: the CI half-width `z · std_error` reaches the target
///     (`target_met`). Deterministic; such answers are cacheable.
///  2. **Budget cap**: `max_samples` exhausted. Also deterministic.
///  3. **Deadline**: the optional `budget` deadline expired between rounds
///     (`deadline_limited`). Honest — the answer reports the wider
///     std_error it actually achieved — but wall-clock dependent, so
///     callers must never cache it.
///
/// A disabled target (`target_half_width <= 0`) never stops early, which
/// makes the adaptive path reduce *bit-exactly* to the fixed-budget seeded
/// estimate over the same block decomposition — the property the serve
/// layer's degradation fallback relies on.

#ifndef PPREF_HARD_ESTIMATOR_H_
#define PPREF_HARD_ESTIMATOR_H_

#include <cstdint>
#include <functional>

#include "ppref/common/deadline.h"
#include "ppref/common/random.h"

namespace ppref::hard {

/// A Bernoulli point estimate: hits/n with the binomial standard error
/// sqrt(p(1-p)/n) — the one formula every MC estimator in the tree shares.
struct BernoulliEstimate {
  double estimate = 0.0;
  double std_error = 0.0;
};

/// hits/samples with its standard error. `samples` must be positive.
BernoulliEstimate EstimateFromBernoulliCount(std::uint64_t hits,
                                             std::uint64_t samples);

/// Numerically stable running mean/variance (Welford), mergeable in block
/// order (Chan's pairwise update) so block-parallel accumulation reduces to
/// the same bits as a serial pass in block-index order.
class WelfordAccumulator {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  /// Folds `other` (sampled after this accumulator's draws) in; the merge
  /// order is part of the determinism contract.
  void Merge(const WelfordAccumulator& other);

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two draws.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  /// Standard error of the mean: sqrt(variance / n); 0 for n < 2.
  double std_error() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

/// Controls for one adaptive run.
struct AdaptiveOptions {
  /// Stop once `z * std_error <= target_half_width` (after `min_samples`).
  /// <= 0 disables the precision stop: the run always spends `max_samples`.
  double target_half_width = 0.0;
  /// Normal quantile of the confidence interval (default: two-sided 95%).
  double z = 1.959963984540054;
  /// The precision stop is not evaluated below this many samples — a
  /// handful of lucky draws must not fake convergence.
  unsigned min_samples = 256;
  /// Hard sample cap; also fixes the block decomposition.
  unsigned max_samples = 1u << 18;
  /// Samples per seeded block (see sampler.h).
  unsigned block_samples = 1024;
  /// Worker threads over the blocks of one round (0 = auto). The estimate
  /// is identical for every value.
  unsigned threads = 1;
  std::uint64_t seed = 1;
  /// Throwing cancel/deadline checks, polled once per block.
  const RunControl* control = nullptr;
  /// Non-throwing deadline polled between rounds: expiry stops the run with
  /// `deadline_limited = true` and whatever precision was reached.
  const Deadline* budget = nullptr;
};

/// What an adaptive run returned and what it paid for it.
struct AdaptiveEstimate {
  double estimate = 0.0;
  double std_error = 0.0;
  std::uint64_t n_samples = 0;
  /// The precision target was reached (implies a cacheable answer).
  bool target_met = false;
  /// The deadline budget stopped sampling first; never cache such answers.
  bool deadline_limited = false;
};

/// Number of blocks in adaptive round `round`: 1, 1, 2, 4, …, capped at 32.
/// Small early rounds give early-stop resolution; doubling keeps the number
/// of stopping-rule evaluations logarithmic in the budget.
unsigned AdaptiveRoundBlocks(unsigned round);

/// Runs the adaptive loop over `block_hits(rng, begin, end)` (the same
/// block-body shape as sampler.h's SeededBlockHits — count the draws in
/// [begin, end) that hit).
AdaptiveEstimate EstimateBernoulliAdaptive(
    const AdaptiveOptions& options,
    const std::function<unsigned(Rng&, unsigned, unsigned)>& block_hits);

}  // namespace ppref::hard

#endif  // PPREF_HARD_ESTIMATOR_H_
