#include "ppref/hard/estimator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "ppref/common/check.h"
#include "ppref/hard/sampler.h"

namespace ppref::hard {

BernoulliEstimate EstimateFromBernoulliCount(std::uint64_t hits,
                                             std::uint64_t samples) {
  PPREF_CHECK(samples > 0);
  BernoulliEstimate result;
  const double p =
      static_cast<double>(hits) / static_cast<double>(samples);
  result.estimate = p;
  result.std_error = std::sqrt(p * (1.0 - p) / static_cast<double>(samples));
  return result;
}

void WelfordAccumulator::Merge(const WelfordAccumulator& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n_a = static_cast<double>(count_);
  const double n_b = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n_a + n_b;
  mean_ += delta * (n_b / total);
  m2_ += other.m2_ + delta * delta * (n_a * n_b / total);
  count_ += other.count_;
}

double WelfordAccumulator::std_error() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(variance() / static_cast<double>(count_));
}

unsigned AdaptiveRoundBlocks(unsigned round) {
  if (round == 0) return 1;
  const unsigned doubling = round - 1 < 5 ? 1u << (round - 1) : 32u;
  return doubling;
}

AdaptiveEstimate EstimateBernoulliAdaptive(
    const AdaptiveOptions& options,
    const std::function<unsigned(Rng&, unsigned, unsigned)>& block_hits) {
  PPREF_CHECK(options.max_samples > 0);
  PPREF_CHECK(options.block_samples > 0);
  const unsigned total_blocks =
      SeededBlockCount(options.max_samples, options.block_samples);

  AdaptiveEstimate out;
  std::uint64_t hits = 0;
  unsigned next_block = 0;
  unsigned round = 0;
  while (next_block < total_blocks) {
    const unsigned count =
        std::min(AdaptiveRoundBlocks(round), total_blocks - next_block);
    std::vector<unsigned> round_hits(count, 0);
    RunSeededBlocks(next_block, count, options.max_samples,
                    options.block_samples, options.seed, options.threads,
                    options.control,
                    [&](const SampleBlock& block, Rng& rng) {
                      round_hits[block.index - next_block] =
                          block_hits(rng, block.begin, block.end);
                    });
    for (const unsigned h : round_hits) hits += h;
    next_block += count;
    ++round;

    const std::uint64_t n =
        SeededBlockAt(next_block - 1, options.max_samples,
                      options.block_samples)
            .end;
    const BernoulliEstimate point = EstimateFromBernoulliCount(hits, n);
    out.estimate = point.estimate;
    out.std_error = point.std_error;
    out.n_samples = n;

    if (options.target_half_width > 0.0 && n >= options.min_samples &&
        options.z * point.std_error <= options.target_half_width) {
      out.target_met = true;
      break;
    }
    if (next_block < total_blocks && options.budget != nullptr &&
        options.budget->Expired()) {
      out.deadline_limited = true;
      break;
    }
  }
  return out;
}

}  // namespace ppref::hard
