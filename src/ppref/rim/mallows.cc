#include "ppref/rim/mallows.h"

#include <cmath>

#include "ppref/common/check.h"
#include "ppref/rim/kendall.h"

namespace ppref::rim {

MallowsModel::MallowsModel(Ranking reference, double phi)
    : phi_(phi),
      rim_(RimModel(reference,
                    InsertionFunction::Mallows(reference.size(), phi))) {
  PPREF_CHECK_MSG(phi > 0.0 && phi <= 1.0,
                  "Mallows dispersion must be in (0, 1], got " << phi);
}

double MallowsModel::NormalizationConstant() const {
  double z = 1.0;
  for (unsigned i = 1; i <= size(); ++i) {
    double term = 0.0;
    for (unsigned k = 0; k < i; ++k) term += std::pow(phi_, static_cast<double>(k));
    z *= term;
  }
  return z;
}

double MallowsModel::Probability(const Ranking& tau) const {
  const auto distance = KendallTau(tau, reference());
  return std::pow(phi_, static_cast<double>(distance)) / NormalizationConstant();
}

}  // namespace ppref::rim
