#include "ppref/rim/sampler.h"

namespace ppref::rim {

Ranking SampleRanking(const RimModel& model, Rng& rng) {
  std::vector<ItemId> order;
  order.reserve(model.size());
  for (unsigned t = 0; t < model.size(); ++t) {
    const auto slot =
        static_cast<std::ptrdiff_t>(rng.NextWeighted(model.insertion().Row(t)));
    order.insert(order.begin() + slot, model.reference().At(t));
  }
  return Ranking(std::move(order));
}

}  // namespace ppref::rim
