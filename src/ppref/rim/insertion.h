/// \file insertion.h
/// \brief RIM insertion probability functions Π — §2.4 of the paper.
///
/// The paper's Π maps pairs (i, j), 1 <= j <= i <= m, to probabilities with
/// Σ_j Π(i, j) = 1 for every i. In code everything is 0-based: when the t-th
/// reference item (t in [0, m)) is inserted, it picks a slot j in [0, t],
/// so row t has t+1 entries. Hence `Prob(t, j)` here equals the paper's
/// Π(t+1, j+1).

#ifndef PPREF_RIM_INSERTION_H_
#define PPREF_RIM_INSERTION_H_

#include <vector>

#include "ppref/rim/ranking.h"

namespace ppref {
class Rng;
}

namespace ppref::rim {

/// A lower-triangular table of insertion probabilities.
class InsertionFunction {
 public:
  /// Builds from explicit rows; `rows[t]` must have t+1 non-negative entries
  /// summing to 1 (within `kRowSumTolerance`).
  explicit InsertionFunction(std::vector<std::vector<double>> rows);

  /// The uniform insertion function over m items: Prob(t, j) = 1/(t+1).
  /// Under this function RIM(σ, Π) is the uniform distribution over
  /// rankings — the same as MAL(σ, 1) (used in the Lemma 4.6 reduction).
  static InsertionFunction Uniform(unsigned m);

  /// Doignon's insertion probabilities for the Mallows model MAL(σ, φ):
  /// paper Π(i, j) = φ^{i-j} / (1 + φ + ... + φ^{i-1}), φ in (0, 1].
  static InsertionFunction Mallows(unsigned m, double phi);

  /// Generalized-Mallows / multistage-style insertion: a separate dispersion
  /// φ_t in (0, 1] per reference position (phis.size() = m).
  static InsertionFunction GeneralizedMallows(const std::vector<double>& phis);

  /// A random insertion function (each row normalized from uniform draws);
  /// exercises RIM beyond the Mallows family in tests and benchmarks.
  static InsertionFunction Random(unsigned m, Rng& rng);

  /// Number of items m.
  unsigned size() const { return static_cast<unsigned>(rows_.size()); }

  /// Probability that reference item t (0-based) is inserted into slot j,
  /// 0 <= j <= t. Equals the paper's Π(t+1, j+1).
  double Prob(unsigned t, unsigned j) const;

  /// Full row for reference item t (t+1 entries).
  const std::vector<double>& Row(unsigned t) const;

  /// Tolerance for row-sum validation.
  static constexpr double kRowSumTolerance = 1e-9;

 private:
  std::vector<std::vector<double>> rows_;
};

}  // namespace ppref::rim

#endif  // PPREF_RIM_INSERTION_H_
