#include "ppref/rim/insertion.h"

#include <cmath>

#include "ppref/common/check.h"
#include "ppref/common/random.h"

namespace ppref::rim {
namespace {

/// Row of Doignon insertion probabilities for dispersion `phi` at reference
/// step t (0-based): slot j gets φ^{t-j} / (1 + φ + ... + φ^t).
std::vector<double> MallowsRow(unsigned t, double phi) {
  std::vector<double> row(t + 1);
  double z = 0.0;
  for (unsigned j = 0; j <= t; ++j) z += std::pow(phi, static_cast<double>(j));
  for (unsigned j = 0; j <= t; ++j) {
    row[j] = std::pow(phi, static_cast<double>(t - j)) / z;
  }
  return row;
}

}  // namespace

InsertionFunction::InsertionFunction(std::vector<std::vector<double>> rows)
    : rows_(std::move(rows)) {
  for (std::size_t t = 0; t < rows_.size(); ++t) {
    PPREF_CHECK_MSG(rows_[t].size() == t + 1,
                    "row " << t << " must have " << t + 1 << " entries, has "
                           << rows_[t].size());
    double sum = 0.0;
    for (double p : rows_[t]) {
      PPREF_CHECK_MSG(p >= 0.0, "negative insertion probability " << p);
      sum += p;
    }
    PPREF_CHECK_MSG(std::abs(sum - 1.0) <= kRowSumTolerance,
                    "row " << t << " sums to " << sum);
  }
}

InsertionFunction InsertionFunction::Uniform(unsigned m) {
  std::vector<std::vector<double>> rows(m);
  for (unsigned t = 0; t < m; ++t) {
    rows[t].assign(t + 1, 1.0 / static_cast<double>(t + 1));
  }
  return InsertionFunction(std::move(rows));
}

InsertionFunction InsertionFunction::Mallows(unsigned m, double phi) {
  PPREF_CHECK_MSG(phi > 0.0 && phi <= 1.0, "Mallows dispersion must be in (0, 1], got "
                                               << phi);
  std::vector<std::vector<double>> rows(m);
  for (unsigned t = 0; t < m; ++t) rows[t] = MallowsRow(t, phi);
  return InsertionFunction(std::move(rows));
}

InsertionFunction InsertionFunction::GeneralizedMallows(
    const std::vector<double>& phis) {
  std::vector<std::vector<double>> rows(phis.size());
  for (unsigned t = 0; t < phis.size(); ++t) {
    PPREF_CHECK_MSG(phis[t] > 0.0 && phis[t] <= 1.0,
                    "dispersion phi[" << t << "] = " << phis[t]
                                      << " must be in (0, 1]");
    rows[t] = MallowsRow(t, phis[t]);
  }
  return InsertionFunction(std::move(rows));
}

InsertionFunction InsertionFunction::Random(unsigned m, Rng& rng) {
  std::vector<std::vector<double>> rows(m);
  for (unsigned t = 0; t < m; ++t) {
    rows[t].resize(t + 1);
    double sum = 0.0;
    for (unsigned j = 0; j <= t; ++j) {
      // Strictly positive draws keep every ranking reachable.
      rows[t][j] = 0.05 + rng.NextUnit();
      sum += rows[t][j];
    }
    for (unsigned j = 0; j <= t; ++j) rows[t][j] /= sum;
  }
  return InsertionFunction(std::move(rows));
}

double InsertionFunction::Prob(unsigned t, unsigned j) const {
  PPREF_CHECK(t < rows_.size());
  PPREF_CHECK_MSG(j <= t, "slot " << j << " out of range for step " << t);
  return rows_[t][j];
}

const std::vector<double>& InsertionFunction::Row(unsigned t) const {
  PPREF_CHECK(t < rows_.size());
  return rows_[t];
}

}  // namespace ppref::rim
