#include "ppref/rim/ranking.h"

#include <numeric>
#include <sstream>

#include "ppref/common/check.h"

namespace ppref::rim {

Ranking::Ranking(std::vector<ItemId> items) : order_(std::move(items)) {
  RebuildPositions();
}

Ranking::Ranking(std::initializer_list<ItemId> items)
    : Ranking(std::vector<ItemId>(items)) {}

Ranking Ranking::Identity(unsigned m) {
  std::vector<ItemId> order(m);
  std::iota(order.begin(), order.end(), 0u);
  return Ranking(std::move(order));
}

void Ranking::RebuildPositions() {
  const auto m = order_.size();
  position_.assign(m, static_cast<Position>(m));
  for (std::size_t p = 0; p < m; ++p) {
    PPREF_CHECK_MSG(order_[p] < m, "item id " << order_[p] << " out of range "
                                              << m);
    PPREF_CHECK_MSG(position_[order_[p]] == m,
                    "item " << order_[p] << " occurs twice");
    position_[order_[p]] = static_cast<Position>(p);
  }
}

ItemId Ranking::At(Position position) const {
  PPREF_CHECK(position < order_.size());
  return order_[position];
}

Position Ranking::PositionOf(ItemId item) const {
  PPREF_CHECK(item < position_.size());
  return position_[item];
}

bool Ranking::Prefers(ItemId left, ItemId right) const {
  return PositionOf(left) < PositionOf(right);
}

Ranking Ranking::Inserted(ItemId item, Position position) const {
  PPREF_CHECK_MSG(item == size(), "RIM insertion must append item id "
                                      << size() << ", got " << item);
  PPREF_CHECK(position <= size());
  std::vector<ItemId> order = order_;
  order.insert(order.begin() + position, item);
  return Ranking(std::move(order));
}

std::string Ranking::ToString() const {
  std::ostringstream out;
  out << "<";
  for (std::size_t p = 0; p < order_.size(); ++p) {
    if (p > 0) out << ", ";
    out << order_[p];
  }
  out << ">";
  return out.str();
}

}  // namespace ppref::rim
