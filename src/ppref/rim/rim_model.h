/// \file rim_model.h
/// \brief The Repeated Insertion Model RIM(σ, Π) — §2.4 of the paper.
///
/// A `RimModel` couples a reference ranking σ with an insertion function Π
/// and exposes the distribution it defines over rnk(items(σ)): exact pmf,
/// exhaustive enumeration (for oracles), and support for the inference
/// algorithms in `ppref/infer/`.

#ifndef PPREF_RIM_RIM_MODEL_H_
#define PPREF_RIM_RIM_MODEL_H_

#include <functional>
#include <vector>

#include "ppref/rim/insertion.h"
#include "ppref/rim/ranking.h"

namespace ppref::rim {

/// RIM(σ, Π): a probability distribution over the rankings of items(σ).
class RimModel {
 public:
  /// `reference.size()` must equal `insertion.size()`.
  RimModel(Ranking reference, InsertionFunction insertion);

  /// Number of items m.
  unsigned size() const { return reference_.size(); }

  /// The reference ranking σ.
  const Ranking& reference() const { return reference_; }

  /// The insertion function Π.
  const InsertionFunction& insertion() const { return insertion_; }

  /// Exact probability of `tau` under the model: the product of the
  /// insertion probabilities of the unique insertion sequence generating
  /// `tau` (every insertion sequence yields a distinct ranking — §2.4).
  double Probability(const Ranking& tau) const;

  /// Reconstructs the insertion slots of `tau`: result[t] is the 0-based
  /// slot the t-th reference item was inserted into — i.e. the number of
  /// reference items σ_0..σ_{t-1} that `tau` places before σ_t.
  std::vector<unsigned> InsertionSlots(const Ranking& tau) const;

  /// Invokes `visit(tau, Probability(tau))` for all m! rankings. Exhaustive;
  /// intended for test oracles and small benchmarks (m <= ~10).
  void ForEachRanking(
      const std::function<void(const Ranking&, double)>& visit) const;

 private:
  Ranking reference_;
  InsertionFunction insertion_;
};

}  // namespace ppref::rim

#endif  // PPREF_RIM_RIM_MODEL_H_
