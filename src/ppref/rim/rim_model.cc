#include "ppref/rim/rim_model.h"

#include "ppref/common/check.h"
#include "ppref/common/combinatorics.h"

namespace ppref::rim {

RimModel::RimModel(Ranking reference, InsertionFunction insertion)
    : reference_(std::move(reference)), insertion_(std::move(insertion)) {
  PPREF_CHECK_MSG(reference_.size() == insertion_.size(),
                  "reference ranking has " << reference_.size()
                                           << " items but insertion function has "
                                           << insertion_.size() << " rows");
}

std::vector<unsigned> RimModel::InsertionSlots(const Ranking& tau) const {
  PPREF_CHECK(tau.size() == size());
  std::vector<unsigned> slots(size());
  for (unsigned t = 0; t < size(); ++t) {
    const ItemId item = reference_.At(t);
    // Slot = number of earlier-reference items that tau ranks above `item`.
    unsigned slot = 0;
    for (unsigned s = 0; s < t; ++s) {
      if (tau.PositionOf(reference_.At(s)) < tau.PositionOf(item)) ++slot;
    }
    slots[t] = slot;
  }
  return slots;
}

double RimModel::Probability(const Ranking& tau) const {
  double probability = 1.0;
  const std::vector<unsigned> slots = InsertionSlots(tau);
  for (unsigned t = 0; t < size(); ++t) {
    probability *= insertion_.Prob(t, slots[t]);
  }
  return probability;
}

void RimModel::ForEachRanking(
    const std::function<void(const Ranking&, double)>& visit) const {
  ForEachPermutation(size(), [&](const std::vector<unsigned>& perm) {
    std::vector<ItemId> order(perm.begin(), perm.end());
    Ranking tau(std::move(order));
    visit(tau, Probability(tau));
  });
}

}  // namespace ppref::rim
