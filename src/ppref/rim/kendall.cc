#include "ppref/rim/kendall.h"

#include <vector>

#include "ppref/common/check.h"

namespace ppref::rim {
namespace {

/// Counts inversions of `values` in O(n log n) with merge sort.
std::uint64_t CountInversions(std::vector<Position>& values) {
  const std::size_t n = values.size();
  if (n < 2) return 0;
  std::vector<Position> buffer(n);
  std::uint64_t inversions = 0;
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo + width < n; lo += 2 * width) {
      const std::size_t mid = lo + width;
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::size_t i = lo, j = mid, k = lo;
      while (i < mid && j < hi) {
        if (values[i] <= values[j]) {
          buffer[k++] = values[i++];
        } else {
          inversions += mid - i;  // values[i..mid) all exceed values[j]
          buffer[k++] = values[j++];
        }
      }
      while (i < mid) buffer[k++] = values[i++];
      while (j < hi) buffer[k++] = values[j++];
      for (std::size_t p = lo; p < hi; ++p) values[p] = buffer[p];
    }
  }
  return inversions;
}

}  // namespace

std::uint64_t KendallTau(const Ranking& tau, const Ranking& sigma) {
  PPREF_CHECK(tau.size() == sigma.size());
  // Walk sigma's order and record each item's position in tau; the number of
  // inversions in that sequence is exactly the number of disagreeing pairs.
  std::vector<Position> tau_positions(sigma.size());
  for (Position p = 0; p < sigma.size(); ++p) {
    tau_positions[p] = tau.PositionOf(sigma.At(p));
  }
  return CountInversions(tau_positions);
}

std::uint64_t KendallTauQuadratic(const Ranking& tau, const Ranking& sigma) {
  PPREF_CHECK(tau.size() == sigma.size());
  std::uint64_t disagreements = 0;
  for (Position i = 0; i < sigma.size(); ++i) {
    for (Position j = i + 1; j < sigma.size(); ++j) {
      const ItemId a = sigma.At(i);
      const ItemId b = sigma.At(j);
      if (tau.PositionOf(b) < tau.PositionOf(a)) ++disagreements;
    }
  }
  return disagreements;
}

}  // namespace ppref::rim
