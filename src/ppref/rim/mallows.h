/// \file mallows.h
/// \brief The Mallows model MAL(σ, φ) — §2.4.1 of the paper.
///
/// MAL(σ, φ) assigns Pr(τ) = φ^{d(τ,σ)} / Z with d the Kendall tau distance
/// and Z = Π_{i=1..m} (1 + φ + ... + φ^{i-1}). Doignon showed Mallows is the
/// RIM model with Π(i, j) = φ^{i-j} / (1 + ... + φ^{i-1}); `MallowsModel`
/// exposes both views and they agree exactly (tested).

#ifndef PPREF_RIM_MALLOWS_H_
#define PPREF_RIM_MALLOWS_H_

#include "ppref/rim/rim_model.h"

namespace ppref::rim {

/// Convenience wrapper: a Mallows model with its closed-form pmf, plus the
/// equivalent RIM model.
class MallowsModel {
 public:
  /// `phi` must lie in (0, 1]; φ = 1 is the uniform distribution.
  MallowsModel(Ranking reference, double phi);

  /// Number of items m.
  unsigned size() const { return rim_.size(); }

  /// The dispersion parameter φ.
  double phi() const { return phi_; }

  /// The reference ranking σ.
  const Ranking& reference() const { return rim_.reference(); }

  /// The equivalent RIM(σ, Π) model with Doignon's insertion function.
  const RimModel& rim() const { return rim_; }

  /// The normalization constant Z(m, φ) = Π_{i=1..m} (1 + φ + … + φ^{i-1}).
  double NormalizationConstant() const;

  /// Closed-form probability φ^{d(τ, σ)} / Z.
  double Probability(const Ranking& tau) const;

 private:
  double phi_;
  RimModel rim_;
};

}  // namespace ppref::rim

#endif  // PPREF_RIM_MALLOWS_H_
