/// \file ranking.h
/// \brief Rankings (linear orders) over a finite item universe — §2.3 of the
/// paper.
///
/// Items are dense integer ids `ItemId` in [0, m). Layers that deal with
/// named items (the database layer) keep their own id <-> value dictionaries;
/// the inference core works purely over ids.
///
/// A `Ranking` stores the linear order <σ_0, ..., σ_{m-1}> (most preferred
/// first) together with the inverse permutation for O(1) position lookups,
/// mirroring the paper's σ(τ) notation (positions here are 0-based).

#ifndef PPREF_RIM_RANKING_H_
#define PPREF_RIM_RANKING_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ppref::rim {

/// Dense item identifier. Rankings over m items use ids 0..m-1.
using ItemId = std::uint32_t;

/// Position of an item within a ranking (0 = most preferred).
using Position = std::uint32_t;

/// A ranking (strict linear order) over items {0, ..., m-1}.
class Ranking {
 public:
  /// Empty ranking over zero items.
  Ranking() = default;

  /// Builds a ranking from the order vector `items[p]` = item at position p.
  /// The vector must be a permutation of {0, ..., items.size()-1}.
  explicit Ranking(std::vector<ItemId> items);

  /// Convenience list constructor: `Ranking({2, 0, 1})`.
  Ranking(std::initializer_list<ItemId> items);

  /// The identity ranking <0, 1, ..., m-1>.
  static Ranking Identity(unsigned m);

  /// Number of items.
  unsigned size() const { return static_cast<unsigned>(order_.size()); }

  /// Item at position `position` (0 = most preferred).
  ItemId At(Position position) const;

  /// Position of `item`; the paper's σ(item), 0-based.
  Position PositionOf(ItemId item) const;

  /// True iff `left` is preferred to `right` (left ≻ right): left appears
  /// strictly earlier in the ranking.
  bool Prefers(ItemId left, ItemId right) const;

  /// The underlying order vector, most preferred first.
  const std::vector<ItemId>& order() const { return order_; }

  /// Returns a copy with `item` inserted so that it lands at position
  /// `position`, shifting later items back (the RIM insertion step).
  /// `item` must equal the current size (items are appended by id), and
  /// `position <= size()`.
  Ranking Inserted(ItemId item, Position position) const;

  /// Renders as e.g. "<2, 0, 1>" for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Ranking& a, const Ranking& b) {
    return a.order_ == b.order_;
  }
  friend bool operator!=(const Ranking& a, const Ranking& b) { return !(a == b); }

 private:
  void RebuildPositions();

  std::vector<ItemId> order_;       // order_[p] = item at position p
  std::vector<Position> position_;  // position_[item] = p
};

}  // namespace ppref::rim

#endif  // PPREF_RIM_RANKING_H_
