/// \file kendall.h
/// \brief Kendall's tau distance between rankings — §2.4.1, Eq. for d(τ, σ).
///
/// d(τ, σ) counts the item pairs on which the two rankings disagree. The
/// library provides an O(m log m) merge-sort implementation and an O(m²)
/// reference used by tests.

#ifndef PPREF_RIM_KENDALL_H_
#define PPREF_RIM_KENDALL_H_

#include <cstdint>

#include "ppref/rim/ranking.h"

namespace ppref::rim {

/// Kendall's tau distance in O(m log m) via inversion counting.
/// Both rankings must be over the same number of items.
std::uint64_t KendallTau(const Ranking& tau, const Ranking& sigma);

/// Quadratic reference implementation (pairwise disagreement count),
/// exactly the paper's definition; used to validate KendallTau.
std::uint64_t KendallTauQuadratic(const Ranking& tau, const Ranking& sigma);

}  // namespace ppref::rim

#endif  // PPREF_RIM_KENDALL_H_
