/// \file sampler.h
/// \brief Sampling random rankings from RIM(σ, Π) by running the generative
/// insertion process of §2.4.

#ifndef PPREF_RIM_SAMPLER_H_
#define PPREF_RIM_SAMPLER_H_

#include "ppref/common/random.h"
#include "ppref/rim/rim_model.h"

namespace ppref::rim {

/// Draws one ranking from the model by inserting reference items in order,
/// each into a slot drawn from the corresponding Π row. O(m²) per sample
/// (vector insertions dominate), which is fine for the model sizes the exact
/// algorithms target.
Ranking SampleRanking(const RimModel& model, Rng& rng);

}  // namespace ppref::rim

#endif  // PPREF_RIM_SAMPLER_H_
