/// \file election_polls.cc
/// \brief The paper's running example end to end: the Figure 1/2 election
/// MAL-PPD, the queries Q1–Q4 of Example 3.6, their classification
/// (Example 4.3), the §4.4 reduction on Ann's session (Example 4.9), and
/// exact evaluation cross-checked against possible-world enumeration.
///
/// Run: ./build/examples/election_polls

#include <cstdio>

#include "ppref/ppd/evaluator.h"
#include "ppref/ppd/monte_carlo_evaluator.h"
#include "ppref/ppd/possible_worlds.h"
#include "ppref/ppd/reduction.h"
#include "ppref/query/classify.h"
#include "ppref/query/parser.h"

namespace {

constexpr const char* kQueries[] = {
    // Q1: a BS voter prefers a male Democrat to a female Democrat.
    "Q() :- Polls(v, _; l; r), Voters(v, 'BS', _, _), "
    "Candidates(l, 'D', 'M', _), Candidates(r, 'D', 'F', _)",
    // Q2: a voter prefers a male candidate to a same-party female candidate.
    "Q() :- Polls(_, _; l; r), Candidates(l, p, 'M', _), "
    "Candidates(r, p, 'F', _)",
    // Q3: a voter prefers a female candidate to both Trump and Sanders.
    "Q() :- Polls(v, d; l; 'Trump'), Polls(v, d; l; 'Sanders'), "
    "Candidates(l, _, 'F', _)",
    // Q4: a voter prefers an own-gender candidate to an own-education one.
    "Q() :- Polls(v, _; l; r), Voters(v, _, s, _), Voters(v, e, _, _), "
    "Candidates(l, _, s, _), Candidates(r, _, _, e)",
};

}  // namespace

int main() {
  using namespace ppref;
  const ppd::RimPpd ppd = ppd::ElectionPpd();

  std::printf("=== The MAL-PPD of Figure 2 ===\n");
  for (const auto& [session, model] : ppd.PInstance("Polls").sessions()) {
    std::printf("  session %-18s -> %s\n", db::ToString(session).c_str(),
                model.ToString().c_str());
  }

  std::printf("\n=== Queries Q1-Q4 (Example 3.6) ===\n");
  for (int i = 0; i < 4; ++i) {
    const auto q = query::ParseQuery(kQueries[i], ppd.schema());
    const auto complexity = query::Classify(q);
    std::printf("\nQ%d: %s\n", i + 1, q.ToString().c_str());
    std::printf("  sessionwise: %s  itemwise: %s  complexity: %s\n",
                query::IsSessionwise(q) ? "yes" : "no",
                query::IsItemwise(q) ? "yes" : "no",
                query::ToString(complexity).c_str());
    const double brute = ppd::EvaluateBooleanByEnumeration(ppd, q);
    if (query::IsItemwise(q)) {
      const double exact = ppd::EvaluateBoolean(ppd, q);
      std::printf("  conf (TopProb reduction)   = %.9f\n", exact);
      std::printf("  conf (world enumeration)   = %.9f   |diff| = %.2e\n",
                  brute, std::abs(exact - brute));
    } else {
      Rng rng(42);
      const auto mc = ppd::EstimateBoolean(ppd, q, 50000, rng);
      std::printf("  conf (world enumeration)   = %.9f\n", brute);
      std::printf("  conf (Monte Carlo, 50k)    = %.9f +- %.5f\n", mc.estimate,
                  mc.std_error);
    }
  }

  std::printf("\n=== The Section 4.4 reduction on Q3 (Example 4.9) ===\n");
  const auto q3 = query::ParseQuery(kQueries[2], ppd.schema());
  for (const auto& reduction : ppd::ReduceItemwise(ppd, q3)) {
    std::printf("session %s:\n", db::ToString(reduction.session).c_str());
    if (!reduction.satisfiable) {
      std::printf("  o-atoms unsatisfiable -> Pr = 0\n");
      continue;
    }
    for (unsigned node = 0; node < reduction.pattern.NodeCount(); ++node) {
      std::printf("  node %u (term %s): lambda items {", node,
                  reduction.node_terms[node].c_str());
      bool first = true;
      for (rim::ItemId id :
           reduction.labeling.ItemsWith(reduction.pattern.NodeLabel(node))) {
        std::printf("%s%s", first ? "" : ", ",
                    reduction.model->ItemOf(id).ToString().c_str());
        first = false;
      }
      std::printf("}\n");
    }
    std::printf("  pattern: %s\n", reduction.pattern.ToString().c_str());
    std::printf("  Pr(session matches) = %.9f\n", ppd::SessionProb(reduction));
  }

  std::printf("\n=== Non-Boolean query: whom does Ann rank above Trump? ===\n");
  const auto ranked = query::ParseQuery(
      "Q(l) :- Polls('Ann', 'Oct-5'; l; 'Trump')", ppd.schema());
  for (const auto& answer : ppd::EvaluateQuery(ppd, ranked)) {
    std::printf("  %-12s confidence %.6f\n",
                db::ToString(answer.tuple).c_str(), answer.confidence);
  }
  return 0;
}
