/// \file movie_recommendations.cc
/// \brief Diversity-aware recommendation queries over a probabilistic
/// ranking of movies — the §1/§5.5 motivation ("the probability that a
/// Hitchcock movie is ranked high, and every comedy beats every horror").
///
/// A streaming service models a user's taste as a Mallows distribution over
/// a catalog; genre labels let us ask about *groups* of movies, which
/// item-level inference (pairwise marginals) cannot express.
///
/// Run: ./build/examples/movie_recommendations

#include <cstdio>

#include "ppref/infer/labeled_rim.h"
#include "ppref/infer/monte_carlo.h"
#include "ppref/infer/top_prob.h"
#include "ppref/infer/top_prob_minmax.h"
#include "ppref/rim/mallows.h"

int main() {
  using namespace ppref;

  // The catalog, in the service's editorial order (the Mallows reference).
  const char* catalog[] = {
      "Vertigo",       // 0: thriller, classic
      "Airplane!",     // 1: comedy, classic
      "Psycho",        // 2: thriller, horror, classic
      "The Thing",     // 3: horror
      "Superbad",      // 4: comedy
      "Get Out",       // 5: horror, thriller
      "Paddington 2",  // 6: comedy, family
      "Coco",          // 7: family
  };
  const unsigned m = 8;
  enum : infer::LabelId { kThriller, kComedy, kHorror, kClassic, kFamily };
  infer::ItemLabeling labeling(m);
  labeling.AddLabel(0, kThriller);
  labeling.AddLabel(0, kClassic);
  labeling.AddLabel(1, kComedy);
  labeling.AddLabel(1, kClassic);
  labeling.AddLabel(2, kThriller);
  labeling.AddLabel(2, kHorror);
  labeling.AddLabel(2, kClassic);
  labeling.AddLabel(3, kHorror);
  labeling.AddLabel(4, kComedy);
  labeling.AddLabel(5, kHorror);
  labeling.AddLabel(5, kThriller);
  labeling.AddLabel(6, kComedy);
  labeling.AddLabel(6, kFamily);
  labeling.AddLabel(7, kFamily);

  std::printf("User taste model: Mallows over %u movies; queries below are\n"
              "exact (TopProb / TopProbMinMax), cross-checked by sampling.\n\n",
              m);

  std::printf("%-6s %-22s %-22s %-22s\n", "phi", "Pr(comedy>horror chain)",
              "Pr(family in top 3)", "Pr(all comedies above all horrors)");
  for (double phi : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const rim::MallowsModel mallows(rim::Ranking::Identity(m), phi);
    const infer::LabeledRimModel model(mallows.rim(), labeling);

    // Pattern: some comedy above some horror above some classic.
    infer::LabelPattern pattern;
    const unsigned c = pattern.AddNode(kComedy);
    const unsigned h = pattern.AddNode(kHorror);
    const unsigned k = pattern.AddNode(kClassic);
    pattern.AddEdge(c, h);
    pattern.AddEdge(h, k);
    const double chain = infer::PatternProb(model, pattern);

    // Min/max events over tracked labels {comedy, horror, family}.
    const std::vector<infer::LabelId> tracked = {kComedy, kHorror, kFamily};
    const double family_top3 =
        infer::MinMaxProb(model, tracked, infer::TopK(2, 3));
    const double diversity =
        infer::MinMaxProb(model, tracked, infer::AllBefore(0, 1));

    std::printf("%-6.1f %-22.6f %-22.6f %-22.6f\n", phi, chain, family_top3,
                diversity);
  }

  // Joint pattern + condition: a classic thriller leads the ranking region
  // while every family movie stays in the top half — a "safe homepage" mix.
  std::printf("\nJoint query at phi = 0.5:\n");
  const rim::MallowsModel mallows(rim::Ranking::Identity(m), 0.5);
  const infer::LabeledRimModel model(mallows.rim(), labeling);
  infer::LabelPattern pattern;
  const unsigned thriller = pattern.AddNode(kThriller);
  const unsigned comedy = pattern.AddNode(kComedy);
  pattern.AddEdge(thriller, comedy);
  const std::vector<infer::LabelId> tracked = {kFamily};
  const auto condition = [](const infer::MinMaxValues& v) {
    return v.max_position[0].has_value() && *v.max_position[0] <= 5;
  };
  const double joint =
      infer::PatternMinMaxProb(model, pattern, tracked, condition);
  Rng rng(7);
  const auto mc = infer::PatternMinMaxProbMonteCarlo(model, pattern, tracked,
                                                     condition, 200000, rng);
  std::printf("  Pr(thriller above a comedy AND every family movie in "
              "top 6)\n    exact      = %.6f\n    sampled    = %.6f +- %.5f\n",
              joint, mc.estimate, mc.std_error);
  (void)catalog;
  return 0;
}
