/// \file crowd_rankings.cc
/// \brief Aggregating probabilistic preferences across a crowd of sessions:
/// non-Boolean CQ answers ranked by confidence, per-item winner
/// probabilities, and a pairwise-marginal consensus matrix.
///
/// Models a design jury: each juror's noisy ranking of four proposals is a
/// Mallows session in one Ratings p-instance; queries aggregate across the
/// jury under the PPD semantics (§3.3).
///
/// Run: ./build/examples/crowd_rankings

#include <cstdio>

#include "ppref/infer/marginals.h"
#include "ppref/ppd/evaluator.h"
#include "ppref/ppd/possible_worlds.h"
#include "ppref/query/parser.h"

int main() {
  using namespace ppref;

  db::PreferenceSchema schema;
  schema.AddOSymbol("Proposals",
                    db::RelationSignature({"proposal", "team", "budget"}));
  schema.AddPSymbol("Ratings", db::PreferenceSignature(
                                   db::RelationSignature({"juror"}), "lp",
                                   "rp"));
  ppd::RimPpd ppd(std::move(schema));
  ppd.AddFact("Proposals", {"Atrium", "north", 120});
  ppd.AddFact("Proposals", {"Bridge", "north", 250});
  ppd.AddFact("Proposals", {"Cupola", "south", 180});
  ppd.AddFact("Proposals", {"Dome", "south", 90});

  // Five jurors with individual reference orders and noise levels.
  struct Juror {
    const char* name;
    std::vector<db::Value> order;
    double phi;
  };
  const Juror jury[] = {
      {"j1", {"Atrium", "Bridge", "Cupola", "Dome"}, 0.3},
      {"j2", {"Bridge", "Atrium", "Dome", "Cupola"}, 0.5},
      {"j3", {"Cupola", "Bridge", "Atrium", "Dome"}, 0.4},
      {"j4", {"Atrium", "Cupola", "Bridge", "Dome"}, 0.7},
      {"j5", {"Dome", "Atrium", "Bridge", "Cupola"}, 0.6},
  };
  for (const Juror& juror : jury) {
    ppd.AddSession("Ratings", {juror.name},
                   ppd::SessionModel::Mallows(juror.order, juror.phi));
  }

  // Which north-team proposal does some juror rank above every south one?
  // (Itemwise: l is the only item variable with o-atoms.)
  std::printf("=== Pr(some juror ranks north proposal l above both south "
              "proposals) ===\n");
  const auto q = query::ParseQuery(
      "Q(l) :- Ratings(j; l; 'Cupola'), Ratings(j; l; 'Dome'), "
      "Proposals(l, 'north', _)",
      ppd.schema());
  for (const auto& answer : ppd::EvaluateQuery(ppd, q)) {
    std::printf("  %-10s confidence %.6f\n", db::ToString(answer.tuple).c_str(),
                answer.confidence);
  }

  // Per-juror winner distribution for one proposal, via the position DP.
  std::printf("\n=== Pr(juror ranks 'Atrium' first) ===\n");
  for (const auto& [session, model] : ppd.PInstance("Ratings").sessions()) {
    const auto id = model.IdOf(db::Value("Atrium"));
    std::printf("  juror %-4s %.6f\n", session[0].AsString().c_str(),
                infer::TopKProb(model.model(), *id, 1));
  }

  // Consensus matrix: average pairwise marginal across jurors.
  std::printf("\n=== Crowd consensus Pr(row beats column), jury average ===\n");
  const char* names[] = {"Atrium", "Bridge", "Cupola", "Dome"};
  std::printf("%10s", "");
  for (const char* name : names) std::printf("%10s", name);
  std::printf("\n");
  for (const char* row : names) {
    std::printf("%10s", row);
    for (const char* col : names) {
      if (std::string(row) == col) {
        std::printf("%10s", "-");
        continue;
      }
      double total = 0.0;
      for (const auto& [session, model] : ppd.PInstance("Ratings").sessions()) {
        total += infer::PairwiseMarginal(model.model(),
                                         *model.IdOf(db::Value(row)),
                                         *model.IdOf(db::Value(col)));
      }
      std::printf("%10.4f", total / 5.0);
    }
    std::printf("\n");
  }

  // Sanity: the headline query against exhaustive enumeration ((4!)^5 worlds
  // is too many; restrict to the first two jurors).
  std::printf("\n=== Cross-check on a 2-juror sub-jury ===\n");
  ppd::RimPpd small(ppd.schema());
  small.AddFact("Proposals", {"Atrium", "north", 120});
  small.AddFact("Proposals", {"Bridge", "north", 250});
  small.AddFact("Proposals", {"Cupola", "south", 180});
  small.AddFact("Proposals", {"Dome", "south", 90});
  for (int i = 0; i < 2; ++i) {
    small.AddSession("Ratings", {jury[i].name},
                     ppd::SessionModel::Mallows(jury[i].order, jury[i].phi));
  }
  const auto boolean = query::ParseQuery(
      "Q() :- Ratings(j; 'Atrium'; 'Cupola'), Ratings(j; 'Atrium'; 'Dome')",
      small.schema());
  std::printf("  exact       = %.9f\n", ppd::EvaluateBoolean(small, boolean));
  std::printf("  enumeration = %.9f\n",
              ppd::EvaluateBooleanByEnumeration(small, boolean));
  return 0;
}
