/// \file quickstart.cc
/// \brief Minimal tour of the ppref inference API: build a Mallows model,
/// label its items, and ask exact probabilistic questions about a random
/// ranking — no database machinery required.
///
/// Run: ./build/examples/quickstart

#include <cstdio>

#include "ppref/infer/labeled_rim.h"
#include "ppref/infer/marginals.h"
#include "ppref/infer/top_prob.h"
#include "ppref/infer/top_prob_minmax.h"
#include "ppref/rim/mallows.h"

int main() {
  using namespace ppref;

  // A Mallows model over five candidates. Ids double as names here:
  // 0=Sanders, 1=Clinton, 2=Rubio, 3=Trump, 4=Stein (Example 4.7's σ).
  const char* names[] = {"Sanders", "Clinton", "Rubio", "Trump", "Stein"};
  const rim::MallowsModel mallows(rim::Ranking::Identity(5), /*phi=*/0.5);

  // Label the items: party and education (the paper's l_R, l_F, l_B).
  enum : infer::LabelId { kRepublican = 0, kFemale = 1, kBs = 2 };
  infer::ItemLabeling labeling(5);
  labeling.AddLabel(2, kRepublican);  // Rubio
  labeling.AddLabel(3, kRepublican);  // Trump
  labeling.AddLabel(1, kFemale);      // Clinton
  labeling.AddLabel(4, kFemale);      // Stein
  labeling.AddLabel(3, kBs);          // Trump
  const infer::LabeledRimModel model(mallows.rim(), labeling);

  // Pattern of Figure 4a: a Republican above a BS holder above a Female.
  infer::LabelPattern pattern;
  const unsigned rep = pattern.AddNode(kRepublican);
  const unsigned bs = pattern.AddNode(kBs);
  const unsigned female = pattern.AddNode(kFemale);
  pattern.AddEdge(rep, bs);
  pattern.AddEdge(bs, female);

  std::printf("Pr(Republican > BS-holder > Female)    = %.6f\n",
              infer::PatternProb(model, pattern));

  // Pairwise marginal and position queries via the dedicated DPs.
  std::printf("Pr(%s beats %s)              = %.6f\n", names[0], names[3],
              infer::PairwiseMarginal(mallows.rim(), 0, 3));
  std::printf("Pr(%s in top 3)                = %.6f\n", names[1],
              infer::TopKProb(mallows.rim(), 1, 3));

  // A min/max event (§5.5): every Female above every Republican.
  const std::vector<infer::LabelId> tracked = {kFemale, kRepublican};
  std::printf("Pr(every Female above every Republican) = %.6f\n",
              infer::MinMaxProb(model, tracked, infer::AllBefore(0, 1)));
  return 0;
}
