/// \file gene_pathways.cc
/// \brief Bioinformatics motivation from §1: relative gene-expression
/// rankings as probabilistic preferences, with pathway labels.
///
/// Each tissue sample yields a noisy ranking of genes by expression level,
/// modeled as a Mallows session loaded from CSV; pathway annotations are
/// labels. Queries: "is the stress pathway activated above the housekeeping
/// baseline?" (pattern + CQ), the marginal position distribution of a
/// pathway (LabelPositions), and expression-consensus aggregation.
///
/// Run: ./build/examples/gene_pathways

#include <cstdio>

#include "ppref/db/csv.h"
#include "ppref/infer/aggregates.h"
#include "ppref/infer/label_distributions.h"
#include "ppref/infer/top_prob.h"
#include "ppref/ppd/evaluator.h"
#include "ppref/ppd/ucq_evaluator.h"
#include "ppref/query/parser.h"

int main() {
  using namespace ppref;

  // Schema: gene annotations plus one p-symbol of expression rankings.
  db::PreferenceSchema schema;
  schema.AddOSymbol("Genes", db::RelationSignature({"gene", "pathway"}));
  schema.AddPSymbol("Expr", db::PreferenceSignature(
                                db::RelationSignature({"sample"}), "hi",
                                "lo"));
  ppd::RimPpd ppd(std::move(schema));

  // Gene/pathway annotations ingested from CSV (the practical path).
  const char* kAnnotations =
      "# gene, pathway\n"
      "\"HSPA1\",\"stress\"\n"
      "\"HSPB1\",\"stress\"\n"
      "\"DNAJB1\",\"stress\"\n"
      "\"ACTB\",\"housekeeping\"\n"
      "\"GAPDH\",\"housekeeping\"\n"
      "\"TP53\",\"apoptosis\"\n"
      "\"BAX\",\"apoptosis\"\n"
      "\"MYC\",\"growth\"\n";
  db::LoadCsv(ppd.MutableOInstance("Genes"), kAnnotations);
  std::printf("Loaded %zu gene annotations from CSV.\n",
              ppd.OInstance("Genes").size());

  // Three tissue samples; reference = measured expression order, phi =
  // measurement noise.
  const std::vector<db::Value> heat_shock = {"HSPA1",  "HSPB1", "DNAJB1",
                                             "MYC",    "ACTB",  "GAPDH",
                                             "TP53",   "BAX"};
  const std::vector<db::Value> control = {"ACTB", "GAPDH", "MYC",   "TP53",
                                          "HSPA1", "BAX",  "HSPB1", "DNAJB1"};
  const std::vector<db::Value> drug = {"TP53",  "BAX",   "HSPA1", "ACTB",
                                       "GAPDH", "HSPB1", "DNAJB1", "MYC"};
  ppd.AddSession("Expr", {"heat"}, ppd::SessionModel::Mallows(heat_shock, 0.4));
  ppd.AddSession("Expr", {"ctrl"}, ppd::SessionModel::Mallows(control, 0.4));
  ppd.AddSession("Expr", {"drug"}, ppd::SessionModel::Mallows(drug, 0.5));

  // CQ: is there a sample where some stress gene is expressed above every...
  // here: above some housekeeping gene AND above MYC (chain via two p-atoms).
  const auto activated = query::ParseQuery(
      "Q(s) :- Expr(s; g; h), Expr(s; g; 'MYC'), Genes(g, 'stress'), "
      "Genes(h, 'housekeeping')",
      ppd.schema());
  std::printf("\nPr(sample shows a stress gene above a housekeeping gene and "
              "above MYC):\n");
  for (const auto& answer : ppd::EvaluateQuery(ppd, activated)) {
    std::printf("  sample %-6s %.6f\n", db::ToString(answer.tuple).c_str(),
                answer.confidence);
  }

  // UCQ: stress OR apoptosis response in the drug sample.
  const auto response = query::ParseUnionQuery(
      "Q() :- Expr('drug'; g; 'ACTB'), Genes(g, 'stress') UNION "
      "Q() :- Expr('drug'; g; 'ACTB'), Genes(g, 'apoptosis')",
      ppd.schema());
  std::printf("\nPr(drug sample: stress or apoptosis gene above ACTB) = "
              "%.6f\n",
              ppd::EvaluateBooleanUnion(ppd, response));

  // Label-position distribution of the stress pathway in the heat sample.
  const auto& heat = ppd.PInstance("Expr").sessions()[0].second;
  infer::ItemLabeling labeling(heat.size());
  for (rim::ItemId id = 0; id < heat.size(); ++id) {
    for (const db::Tuple& row : ppd.OInstance("Genes")) {
      if (row[0] == heat.ItemOf(id) && row[1] == db::Value("stress")) {
        labeling.AddLabel(id, 0);
      }
    }
  }
  const infer::LabeledRimModel labeled(heat.model(), labeling);
  const auto dist = infer::LabelPositions(labeled, 0);
  std::printf("\nHeat sample: Pr(top stress gene at position p):\n  ");
  for (unsigned p = 0; p < heat.size(); ++p) {
    std::printf("p%u=%.3f ", p, dist.min_marginal[p]);
  }
  std::printf("\n");

  // Consensus expression order per sample (aggregation).
  std::printf("\nConsensus (expected-position) order, heat sample:\n  ");
  const rim::Ranking consensus =
      infer::ConsensusByExpectedPosition(heat.model());
  for (rim::Position p = 0; p < consensus.size(); ++p) {
    std::printf("%s ", heat.ItemOf(consensus.At(p)).ToString().c_str());
  }
  std::printf("\n");
  return 0;
}
