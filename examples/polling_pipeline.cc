/// \file polling_pipeline.cc
/// \brief The full system pipeline: raw ballots -> fitted session models ->
/// a serialized PPD -> probabilistic queries. What a polling organization
/// would actually run.
///
/// 1. Each respondent submits several (noisy) complete ballots over a week.
/// 2. Per respondent, a Mallows model is fitted from their ballots.
/// 3. The fitted models populate a RIM-PPD, saved/reloaded via the text
///    format (ppd/io.h).
/// 4. Election questions are answered exactly (itemwise CQs) with EXPLAIN
///    output for the analysts.
///
/// Run: ./build/examples/polling_pipeline

#include <cstdio>

#include "ppref/fit/mallows_fit.h"
#include "ppref/ppd/evaluator.h"
#include "ppref/ppd/explain.h"
#include "ppref/ppd/io.h"
#include "ppref/query/parser.h"
#include "ppref/rim/sampler.h"

int main() {
  using namespace ppref;

  const std::vector<db::Value> candidates = {"Clinton", "Sanders", "Rubio",
                                             "Trump"};
  // --- 1. Simulate raw ballots: each respondent has a true latent model.
  struct Respondent {
    const char* name;
    rim::Ranking true_reference;
    double true_phi;
  };
  const Respondent respondents[] = {
      {"Ann", rim::Ranking({0, 1, 2, 3}), 0.3},
      {"Bob", rim::Ranking({1, 2, 0, 3}), 0.5},
      {"Cruz", rim::Ranking({3, 2, 1, 0}), 0.4},
  };
  Rng rng(11);
  std::printf("=== 1. Collecting ballots (12 per respondent) ===\n");
  std::vector<std::vector<rim::Ranking>> ballots(3);
  for (unsigned r = 0; r < 3; ++r) {
    const rim::MallowsModel latent(respondents[r].true_reference,
                                   respondents[r].true_phi);
    for (int b = 0; b < 12; ++b) {
      ballots[r].push_back(rim::SampleRanking(latent.rim(), rng));
    }
    std::printf("  %-5s first ballot: ", respondents[r].name);
    for (rim::Position p = 0; p < 4; ++p) {
      std::printf("%s ",
                  candidates[ballots[r][0].At(p)].AsString().c_str());
    }
    std::printf("\n");
  }

  // --- 2. Fit a Mallows model per respondent.
  std::printf("\n=== 2. Fitted session models ===\n");
  ppd::RimPpd ppd(db::ElectionSchema());
  ppd.AddFact("Candidates", {"Clinton", "D", "F", "JD"});
  ppd.AddFact("Candidates", {"Sanders", "D", "M", "BS"});
  ppd.AddFact("Candidates", {"Rubio", "R", "M", "JD"});
  ppd.AddFact("Candidates", {"Trump", "R", "M", "BS"});
  for (unsigned r = 0; r < 3; ++r) {
    ppd.AddFact("Voters", {respondents[r].name, "BS", "F", 30});
    const fit::MallowsFitResult fitted = fit::FitMallows(ballots[r]);
    std::vector<db::Value> reference;
    for (rim::Position p = 0; p < 4; ++p) {
      reference.push_back(candidates[fitted.reference.At(p)]);
    }
    std::printf("  %-5s fitted phi = %.3f (true %.1f), reference: ",
                respondents[r].name, fitted.phi, respondents[r].true_phi);
    for (const auto& c : reference) std::printf("%s ", c.AsString().c_str());
    std::printf("\n");
    ppd.AddSession("Polls", {respondents[r].name, "Oct-5"},
                   ppd::SessionModel::Mallows(std::move(reference),
                                              fitted.phi));
  }

  // --- 3. Serialize and reload (what a nightly job would persist).
  const std::string saved = ppd::WritePpd(ppd);
  const ppd::RimPpd reloaded = ppd::ReadPpd(saved);
  std::printf("\n=== 3. Serialized PPD: %zu bytes; reloaded %zu sessions ===\n",
              saved.size(), reloaded.PInstance("Polls").session_count());

  // --- 4. Ask election questions with EXPLAIN.
  std::printf("\n=== 4. Query with EXPLAIN ===\n");
  const auto q = query::ParseQuery(
      "Q() :- Polls(v, d; l; 'Trump'), Polls(v, d; l; 'Rubio'), "
      "Candidates(l, 'D', _, _)",
      reloaded.schema());
  std::printf("%s", ppd::ExplainQuery(reloaded, q).c_str());

  const auto per_voter = query::ParseQuery(
      "Q(v) :- Polls(v, d; 'Clinton'; 'Trump')", reloaded.schema());
  std::printf("\nPr(voter ranks Clinton above Trump), per voter:\n");
  for (const auto& answer : ppd::EvaluateQuery(reloaded, per_voter)) {
    std::printf("  %-10s %.6f\n", db::ToString(answer.tuple).c_str(),
                answer.confidence);
  }
  return 0;
}
