file(REMOVE_RECURSE
  "CMakeFiles/gene_pathways.dir/gene_pathways.cc.o"
  "CMakeFiles/gene_pathways.dir/gene_pathways.cc.o.d"
  "gene_pathways"
  "gene_pathways.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gene_pathways.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
