# Empty dependencies file for gene_pathways.
# This may be replaced when dependencies are built.
