file(REMOVE_RECURSE
  "CMakeFiles/polling_pipeline.dir/polling_pipeline.cc.o"
  "CMakeFiles/polling_pipeline.dir/polling_pipeline.cc.o.d"
  "polling_pipeline"
  "polling_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polling_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
