# Empty dependencies file for polling_pipeline.
# This may be replaced when dependencies are built.
