# Empty compiler generated dependencies file for election_polls.
# This may be replaced when dependencies are built.
