file(REMOVE_RECURSE
  "CMakeFiles/election_polls.dir/election_polls.cc.o"
  "CMakeFiles/election_polls.dir/election_polls.cc.o.d"
  "election_polls"
  "election_polls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/election_polls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
