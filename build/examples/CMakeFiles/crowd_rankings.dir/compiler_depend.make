# Empty compiler generated dependencies file for crowd_rankings.
# This may be replaced when dependencies are built.
