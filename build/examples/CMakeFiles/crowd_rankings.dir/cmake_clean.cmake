file(REMOVE_RECURSE
  "CMakeFiles/crowd_rankings.dir/crowd_rankings.cc.o"
  "CMakeFiles/crowd_rankings.dir/crowd_rankings.cc.o.d"
  "crowd_rankings"
  "crowd_rankings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crowd_rankings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
