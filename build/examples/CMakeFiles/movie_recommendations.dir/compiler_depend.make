# Empty compiler generated dependencies file for movie_recommendations.
# This may be replaced when dependencies are built.
