file(REMOVE_RECURSE
  "CMakeFiles/movie_recommendations.dir/movie_recommendations.cc.o"
  "CMakeFiles/movie_recommendations.dir/movie_recommendations.cc.o.d"
  "movie_recommendations"
  "movie_recommendations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/movie_recommendations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
