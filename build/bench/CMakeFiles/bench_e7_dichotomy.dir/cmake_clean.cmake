file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_dichotomy.dir/bench_e7_dichotomy.cc.o"
  "CMakeFiles/bench_e7_dichotomy.dir/bench_e7_dichotomy.cc.o.d"
  "bench_e7_dichotomy"
  "bench_e7_dichotomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_dichotomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
