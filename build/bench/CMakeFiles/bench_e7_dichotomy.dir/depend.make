# Empty dependencies file for bench_e7_dichotomy.
# This may be replaced when dependencies are built.
