# Empty dependencies file for bench_e16_splitting.
# This may be replaced when dependencies are built.
