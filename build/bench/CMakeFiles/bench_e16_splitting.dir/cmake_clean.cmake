file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_splitting.dir/bench_e16_splitting.cc.o"
  "CMakeFiles/bench_e16_splitting.dir/bench_e16_splitting.cc.o.d"
  "bench_e16_splitting"
  "bench_e16_splitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_splitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
