file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_linear_extensions.dir/bench_e6_linear_extensions.cc.o"
  "CMakeFiles/bench_e6_linear_extensions.dir/bench_e6_linear_extensions.cc.o.d"
  "bench_e6_linear_extensions"
  "bench_e6_linear_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_linear_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
