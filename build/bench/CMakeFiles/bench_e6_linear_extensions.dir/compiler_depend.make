# Empty compiler generated dependencies file for bench_e6_linear_extensions.
# This may be replaced when dependencies are built.
