# Empty compiler generated dependencies file for bench_e4_cq_sessions.
# This may be replaced when dependencies are built.
