file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_cq_sessions.dir/bench_e4_cq_sessions.cc.o"
  "CMakeFiles/bench_e4_cq_sessions.dir/bench_e4_cq_sessions.cc.o.d"
  "bench_e4_cq_sessions"
  "bench_e4_cq_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_cq_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
