file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_micro_rim.dir/bench_e9_micro_rim.cc.o"
  "CMakeFiles/bench_e9_micro_rim.dir/bench_e9_micro_rim.cc.o.d"
  "bench_e9_micro_rim"
  "bench_e9_micro_rim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_micro_rim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
