# Empty compiler generated dependencies file for bench_e15_parallel_index.
# This may be replaced when dependencies are built.
