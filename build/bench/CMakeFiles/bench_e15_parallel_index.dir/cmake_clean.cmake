file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_parallel_index.dir/bench_e15_parallel_index.cc.o"
  "CMakeFiles/bench_e15_parallel_index.dir/bench_e15_parallel_index.cc.o.d"
  "bench_e15_parallel_index"
  "bench_e15_parallel_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_parallel_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
