file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_mc_convergence.dir/bench_e3_mc_convergence.cc.o"
  "CMakeFiles/bench_e3_mc_convergence.dir/bench_e3_mc_convergence.cc.o.d"
  "bench_e3_mc_convergence"
  "bench_e3_mc_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_mc_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
