# Empty dependencies file for bench_e3_mc_convergence.
# This may be replaced when dependencies are built.
