# Empty dependencies file for bench_e2_exact_vs_brute.
# This may be replaced when dependencies are built.
