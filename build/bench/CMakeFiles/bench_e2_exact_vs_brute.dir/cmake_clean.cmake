file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_exact_vs_brute.dir/bench_e2_exact_vs_brute.cc.o"
  "CMakeFiles/bench_e2_exact_vs_brute.dir/bench_e2_exact_vs_brute.cc.o.d"
  "bench_e2_exact_vs_brute"
  "bench_e2_exact_vs_brute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_exact_vs_brute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
