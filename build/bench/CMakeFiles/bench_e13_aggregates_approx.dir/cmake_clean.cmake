file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_aggregates_approx.dir/bench_e13_aggregates_approx.cc.o"
  "CMakeFiles/bench_e13_aggregates_approx.dir/bench_e13_aggregates_approx.cc.o.d"
  "bench_e13_aggregates_approx"
  "bench_e13_aggregates_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_aggregates_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
