# Empty dependencies file for bench_e13_aggregates_approx.
# This may be replaced when dependencies are built.
