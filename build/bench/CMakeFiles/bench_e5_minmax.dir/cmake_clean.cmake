file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_minmax.dir/bench_e5_minmax.cc.o"
  "CMakeFiles/bench_e5_minmax.dir/bench_e5_minmax.cc.o.d"
  "bench_e5_minmax"
  "bench_e5_minmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_minmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
