# Empty dependencies file for bench_e5_minmax.
# This may be replaced when dependencies are built.
