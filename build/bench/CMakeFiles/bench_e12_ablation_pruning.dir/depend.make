# Empty dependencies file for bench_e12_ablation_pruning.
# This may be replaced when dependencies are built.
