file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_ucq.dir/bench_e11_ucq.cc.o"
  "CMakeFiles/bench_e11_ucq.dir/bench_e11_ucq.cc.o.d"
  "bench_e11_ucq"
  "bench_e11_ucq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_ucq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
