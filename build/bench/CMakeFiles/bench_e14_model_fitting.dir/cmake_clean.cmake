file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_model_fitting.dir/bench_e14_model_fitting.cc.o"
  "CMakeFiles/bench_e14_model_fitting.dir/bench_e14_model_fitting.cc.o.d"
  "bench_e14_model_fitting"
  "bench_e14_model_fitting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_model_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
