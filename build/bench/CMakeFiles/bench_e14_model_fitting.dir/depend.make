# Empty dependencies file for bench_e14_model_fitting.
# This may be replaced when dependencies are built.
