# Empty compiler generated dependencies file for bench_e8_dispersion_sweep.
# This may be replaced when dependencies are built.
