# Empty compiler generated dependencies file for bench_e10_running_example.
# This may be replaced when dependencies are built.
