
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ppref/common/check.cc" "src/CMakeFiles/ppref.dir/ppref/common/check.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/common/check.cc.o.d"
  "/root/repo/src/ppref/common/combinatorics.cc" "src/CMakeFiles/ppref.dir/ppref/common/combinatorics.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/common/combinatorics.cc.o.d"
  "/root/repo/src/ppref/common/parallel.cc" "src/CMakeFiles/ppref.dir/ppref/common/parallel.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/common/parallel.cc.o.d"
  "/root/repo/src/ppref/common/random.cc" "src/CMakeFiles/ppref.dir/ppref/common/random.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/common/random.cc.o.d"
  "/root/repo/src/ppref/db/csv.cc" "src/CMakeFiles/ppref.dir/ppref/db/csv.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/db/csv.cc.o.d"
  "/root/repo/src/ppref/db/database.cc" "src/CMakeFiles/ppref.dir/ppref/db/database.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/db/database.cc.o.d"
  "/root/repo/src/ppref/db/preference_instance.cc" "src/CMakeFiles/ppref.dir/ppref/db/preference_instance.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/db/preference_instance.cc.o.d"
  "/root/repo/src/ppref/db/relation.cc" "src/CMakeFiles/ppref.dir/ppref/db/relation.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/db/relation.cc.o.d"
  "/root/repo/src/ppref/db/schema.cc" "src/CMakeFiles/ppref.dir/ppref/db/schema.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/db/schema.cc.o.d"
  "/root/repo/src/ppref/db/signature.cc" "src/CMakeFiles/ppref.dir/ppref/db/signature.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/db/signature.cc.o.d"
  "/root/repo/src/ppref/db/value.cc" "src/CMakeFiles/ppref.dir/ppref/db/value.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/db/value.cc.o.d"
  "/root/repo/src/ppref/fit/mallows_fit.cc" "src/CMakeFiles/ppref.dir/ppref/fit/mallows_fit.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/fit/mallows_fit.cc.o.d"
  "/root/repo/src/ppref/infer/aggregates.cc" "src/CMakeFiles/ppref.dir/ppref/infer/aggregates.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/aggregates.cc.o.d"
  "/root/repo/src/ppref/infer/brute_force.cc" "src/CMakeFiles/ppref.dir/ppref/infer/brute_force.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/brute_force.cc.o.d"
  "/root/repo/src/ppref/infer/conjunction.cc" "src/CMakeFiles/ppref.dir/ppref/infer/conjunction.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/conjunction.cc.o.d"
  "/root/repo/src/ppref/infer/internal/dp_engine.cc" "src/CMakeFiles/ppref.dir/ppref/infer/internal/dp_engine.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/internal/dp_engine.cc.o.d"
  "/root/repo/src/ppref/infer/label_distributions.cc" "src/CMakeFiles/ppref.dir/ppref/infer/label_distributions.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/label_distributions.cc.o.d"
  "/root/repo/src/ppref/infer/labeled_rim.cc" "src/CMakeFiles/ppref.dir/ppref/infer/labeled_rim.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/labeled_rim.cc.o.d"
  "/root/repo/src/ppref/infer/labeling.cc" "src/CMakeFiles/ppref.dir/ppref/infer/labeling.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/labeling.cc.o.d"
  "/root/repo/src/ppref/infer/linear_extensions.cc" "src/CMakeFiles/ppref.dir/ppref/infer/linear_extensions.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/linear_extensions.cc.o.d"
  "/root/repo/src/ppref/infer/marginals.cc" "src/CMakeFiles/ppref.dir/ppref/infer/marginals.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/marginals.cc.o.d"
  "/root/repo/src/ppref/infer/matching.cc" "src/CMakeFiles/ppref.dir/ppref/infer/matching.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/matching.cc.o.d"
  "/root/repo/src/ppref/infer/minmax_condition.cc" "src/CMakeFiles/ppref.dir/ppref/infer/minmax_condition.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/minmax_condition.cc.o.d"
  "/root/repo/src/ppref/infer/monte_carlo.cc" "src/CMakeFiles/ppref.dir/ppref/infer/monte_carlo.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/monte_carlo.cc.o.d"
  "/root/repo/src/ppref/infer/pattern.cc" "src/CMakeFiles/ppref.dir/ppref/infer/pattern.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/pattern.cc.o.d"
  "/root/repo/src/ppref/infer/top_prob.cc" "src/CMakeFiles/ppref.dir/ppref/infer/top_prob.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/top_prob.cc.o.d"
  "/root/repo/src/ppref/infer/top_prob_minmax.cc" "src/CMakeFiles/ppref.dir/ppref/infer/top_prob_minmax.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/top_prob_minmax.cc.o.d"
  "/root/repo/src/ppref/infer/uniform_extensions.cc" "src/CMakeFiles/ppref.dir/ppref/infer/uniform_extensions.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/infer/uniform_extensions.cc.o.d"
  "/root/repo/src/ppref/ppd/analytics.cc" "src/CMakeFiles/ppref.dir/ppref/ppd/analytics.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/ppd/analytics.cc.o.d"
  "/root/repo/src/ppref/ppd/approx.cc" "src/CMakeFiles/ppref.dir/ppref/ppd/approx.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/ppd/approx.cc.o.d"
  "/root/repo/src/ppref/ppd/conditional.cc" "src/CMakeFiles/ppref.dir/ppref/ppd/conditional.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/ppd/conditional.cc.o.d"
  "/root/repo/src/ppref/ppd/evaluator.cc" "src/CMakeFiles/ppref.dir/ppref/ppd/evaluator.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/ppd/evaluator.cc.o.d"
  "/root/repo/src/ppref/ppd/explain.cc" "src/CMakeFiles/ppref.dir/ppref/ppd/explain.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/ppd/explain.cc.o.d"
  "/root/repo/src/ppref/ppd/formula.cc" "src/CMakeFiles/ppref.dir/ppref/ppd/formula.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/ppd/formula.cc.o.d"
  "/root/repo/src/ppref/ppd/io.cc" "src/CMakeFiles/ppref.dir/ppref/ppd/io.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/ppd/io.cc.o.d"
  "/root/repo/src/ppref/ppd/monte_carlo_evaluator.cc" "src/CMakeFiles/ppref.dir/ppref/ppd/monte_carlo_evaluator.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/ppd/monte_carlo_evaluator.cc.o.d"
  "/root/repo/src/ppref/ppd/possible_worlds.cc" "src/CMakeFiles/ppref.dir/ppref/ppd/possible_worlds.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/ppd/possible_worlds.cc.o.d"
  "/root/repo/src/ppref/ppd/ppd.cc" "src/CMakeFiles/ppref.dir/ppref/ppd/ppd.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/ppd/ppd.cc.o.d"
  "/root/repo/src/ppref/ppd/preference_model.cc" "src/CMakeFiles/ppref.dir/ppref/ppd/preference_model.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/ppd/preference_model.cc.o.d"
  "/root/repo/src/ppref/ppd/reduction.cc" "src/CMakeFiles/ppref.dir/ppref/ppd/reduction.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/ppd/reduction.cc.o.d"
  "/root/repo/src/ppref/ppd/splitting.cc" "src/CMakeFiles/ppref.dir/ppref/ppd/splitting.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/ppd/splitting.cc.o.d"
  "/root/repo/src/ppref/ppd/ucq_evaluator.cc" "src/CMakeFiles/ppref.dir/ppref/ppd/ucq_evaluator.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/ppd/ucq_evaluator.cc.o.d"
  "/root/repo/src/ppref/query/classify.cc" "src/CMakeFiles/ppref.dir/ppref/query/classify.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/query/classify.cc.o.d"
  "/root/repo/src/ppref/query/cq.cc" "src/CMakeFiles/ppref.dir/ppref/query/cq.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/query/cq.cc.o.d"
  "/root/repo/src/ppref/query/eval.cc" "src/CMakeFiles/ppref.dir/ppref/query/eval.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/query/eval.cc.o.d"
  "/root/repo/src/ppref/query/gaifman.cc" "src/CMakeFiles/ppref.dir/ppref/query/gaifman.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/query/gaifman.cc.o.d"
  "/root/repo/src/ppref/query/parser.cc" "src/CMakeFiles/ppref.dir/ppref/query/parser.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/query/parser.cc.o.d"
  "/root/repo/src/ppref/query/ucq.cc" "src/CMakeFiles/ppref.dir/ppref/query/ucq.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/query/ucq.cc.o.d"
  "/root/repo/src/ppref/rim/insertion.cc" "src/CMakeFiles/ppref.dir/ppref/rim/insertion.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/rim/insertion.cc.o.d"
  "/root/repo/src/ppref/rim/kendall.cc" "src/CMakeFiles/ppref.dir/ppref/rim/kendall.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/rim/kendall.cc.o.d"
  "/root/repo/src/ppref/rim/mallows.cc" "src/CMakeFiles/ppref.dir/ppref/rim/mallows.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/rim/mallows.cc.o.d"
  "/root/repo/src/ppref/rim/ranking.cc" "src/CMakeFiles/ppref.dir/ppref/rim/ranking.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/rim/ranking.cc.o.d"
  "/root/repo/src/ppref/rim/rim_model.cc" "src/CMakeFiles/ppref.dir/ppref/rim/rim_model.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/rim/rim_model.cc.o.d"
  "/root/repo/src/ppref/rim/sampler.cc" "src/CMakeFiles/ppref.dir/ppref/rim/sampler.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/rim/sampler.cc.o.d"
  "/root/repo/src/ppref/shell/shell.cc" "src/CMakeFiles/ppref.dir/ppref/shell/shell.cc.o" "gcc" "src/CMakeFiles/ppref.dir/ppref/shell/shell.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
