file(REMOVE_RECURSE
  "libppref.a"
)
