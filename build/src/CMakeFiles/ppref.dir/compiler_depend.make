# Empty compiler generated dependencies file for ppref.
# This may be replaced when dependencies are built.
