# Empty dependencies file for rim_test.
# This may be replaced when dependencies are built.
