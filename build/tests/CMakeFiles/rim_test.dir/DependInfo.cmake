
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rim/generalized_mallows_test.cc" "tests/CMakeFiles/rim_test.dir/rim/generalized_mallows_test.cc.o" "gcc" "tests/CMakeFiles/rim_test.dir/rim/generalized_mallows_test.cc.o.d"
  "/root/repo/tests/rim/insertion_test.cc" "tests/CMakeFiles/rim_test.dir/rim/insertion_test.cc.o" "gcc" "tests/CMakeFiles/rim_test.dir/rim/insertion_test.cc.o.d"
  "/root/repo/tests/rim/kendall_test.cc" "tests/CMakeFiles/rim_test.dir/rim/kendall_test.cc.o" "gcc" "tests/CMakeFiles/rim_test.dir/rim/kendall_test.cc.o.d"
  "/root/repo/tests/rim/mallows_test.cc" "tests/CMakeFiles/rim_test.dir/rim/mallows_test.cc.o" "gcc" "tests/CMakeFiles/rim_test.dir/rim/mallows_test.cc.o.d"
  "/root/repo/tests/rim/ranking_test.cc" "tests/CMakeFiles/rim_test.dir/rim/ranking_test.cc.o" "gcc" "tests/CMakeFiles/rim_test.dir/rim/ranking_test.cc.o.d"
  "/root/repo/tests/rim/rim_model_test.cc" "tests/CMakeFiles/rim_test.dir/rim/rim_model_test.cc.o" "gcc" "tests/CMakeFiles/rim_test.dir/rim/rim_model_test.cc.o.d"
  "/root/repo/tests/rim/sampler_test.cc" "tests/CMakeFiles/rim_test.dir/rim/sampler_test.cc.o" "gcc" "tests/CMakeFiles/rim_test.dir/rim/sampler_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppref.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
