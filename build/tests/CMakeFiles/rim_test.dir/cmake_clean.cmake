file(REMOVE_RECURSE
  "CMakeFiles/rim_test.dir/rim/generalized_mallows_test.cc.o"
  "CMakeFiles/rim_test.dir/rim/generalized_mallows_test.cc.o.d"
  "CMakeFiles/rim_test.dir/rim/insertion_test.cc.o"
  "CMakeFiles/rim_test.dir/rim/insertion_test.cc.o.d"
  "CMakeFiles/rim_test.dir/rim/kendall_test.cc.o"
  "CMakeFiles/rim_test.dir/rim/kendall_test.cc.o.d"
  "CMakeFiles/rim_test.dir/rim/mallows_test.cc.o"
  "CMakeFiles/rim_test.dir/rim/mallows_test.cc.o.d"
  "CMakeFiles/rim_test.dir/rim/ranking_test.cc.o"
  "CMakeFiles/rim_test.dir/rim/ranking_test.cc.o.d"
  "CMakeFiles/rim_test.dir/rim/rim_model_test.cc.o"
  "CMakeFiles/rim_test.dir/rim/rim_model_test.cc.o.d"
  "CMakeFiles/rim_test.dir/rim/sampler_test.cc.o"
  "CMakeFiles/rim_test.dir/rim/sampler_test.cc.o.d"
  "rim_test"
  "rim_test.pdb"
  "rim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
