# Empty compiler generated dependencies file for ppd_test.
# This may be replaced when dependencies are built.
