
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ppd/analytics_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/analytics_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/analytics_test.cc.o.d"
  "/root/repo/tests/ppd/approx_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/approx_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/approx_test.cc.o.d"
  "/root/repo/tests/ppd/conditional_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/conditional_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/conditional_test.cc.o.d"
  "/root/repo/tests/ppd/evaluator_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/evaluator_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/evaluator_test.cc.o.d"
  "/root/repo/tests/ppd/explain_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/explain_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/explain_test.cc.o.d"
  "/root/repo/tests/ppd/formula_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/formula_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/formula_test.cc.o.d"
  "/root/repo/tests/ppd/golden_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/golden_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/golden_test.cc.o.d"
  "/root/repo/tests/ppd/io_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/io_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/io_test.cc.o.d"
  "/root/repo/tests/ppd/monte_carlo_evaluator_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/monte_carlo_evaluator_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/monte_carlo_evaluator_test.cc.o.d"
  "/root/repo/tests/ppd/multi_psymbol_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/multi_psymbol_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/multi_psymbol_test.cc.o.d"
  "/root/repo/tests/ppd/possible_worlds_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/possible_worlds_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/possible_worlds_test.cc.o.d"
  "/root/repo/tests/ppd/ppd_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/ppd_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/ppd_test.cc.o.d"
  "/root/repo/tests/ppd/preference_model_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/preference_model_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/preference_model_test.cc.o.d"
  "/root/repo/tests/ppd/reduction_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/reduction_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/reduction_test.cc.o.d"
  "/root/repo/tests/ppd/splitting_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/splitting_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/splitting_test.cc.o.d"
  "/root/repo/tests/ppd/ucq_evaluator_test.cc" "tests/CMakeFiles/ppd_test.dir/ppd/ucq_evaluator_test.cc.o" "gcc" "tests/CMakeFiles/ppd_test.dir/ppd/ucq_evaluator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppref.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
