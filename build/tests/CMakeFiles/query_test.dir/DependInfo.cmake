
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/query/classify_test.cc" "tests/CMakeFiles/query_test.dir/query/classify_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/classify_test.cc.o.d"
  "/root/repo/tests/query/cq_test.cc" "tests/CMakeFiles/query_test.dir/query/cq_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/cq_test.cc.o.d"
  "/root/repo/tests/query/eval_property_test.cc" "tests/CMakeFiles/query_test.dir/query/eval_property_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/eval_property_test.cc.o.d"
  "/root/repo/tests/query/eval_test.cc" "tests/CMakeFiles/query_test.dir/query/eval_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/eval_test.cc.o.d"
  "/root/repo/tests/query/gaifman_test.cc" "tests/CMakeFiles/query_test.dir/query/gaifman_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/gaifman_test.cc.o.d"
  "/root/repo/tests/query/parser_test.cc" "tests/CMakeFiles/query_test.dir/query/parser_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/parser_test.cc.o.d"
  "/root/repo/tests/query/ucq_test.cc" "tests/CMakeFiles/query_test.dir/query/ucq_test.cc.o" "gcc" "tests/CMakeFiles/query_test.dir/query/ucq_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppref.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
