# Empty dependencies file for infer_extensions_test.
# This may be replaced when dependencies are built.
