file(REMOVE_RECURSE
  "CMakeFiles/infer_extensions_test.dir/infer/conjunction_test.cc.o"
  "CMakeFiles/infer_extensions_test.dir/infer/conjunction_test.cc.o.d"
  "CMakeFiles/infer_extensions_test.dir/infer/label_distributions_test.cc.o"
  "CMakeFiles/infer_extensions_test.dir/infer/label_distributions_test.cc.o.d"
  "CMakeFiles/infer_extensions_test.dir/infer/uniform_extensions_test.cc.o"
  "CMakeFiles/infer_extensions_test.dir/infer/uniform_extensions_test.cc.o.d"
  "infer_extensions_test"
  "infer_extensions_test.pdb"
  "infer_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infer_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
