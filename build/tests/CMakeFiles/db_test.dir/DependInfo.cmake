
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/db/csv_test.cc" "tests/CMakeFiles/db_test.dir/db/csv_test.cc.o" "gcc" "tests/CMakeFiles/db_test.dir/db/csv_test.cc.o.d"
  "/root/repo/tests/db/database_test.cc" "tests/CMakeFiles/db_test.dir/db/database_test.cc.o" "gcc" "tests/CMakeFiles/db_test.dir/db/database_test.cc.o.d"
  "/root/repo/tests/db/preference_instance_test.cc" "tests/CMakeFiles/db_test.dir/db/preference_instance_test.cc.o" "gcc" "tests/CMakeFiles/db_test.dir/db/preference_instance_test.cc.o.d"
  "/root/repo/tests/db/relation_test.cc" "tests/CMakeFiles/db_test.dir/db/relation_test.cc.o" "gcc" "tests/CMakeFiles/db_test.dir/db/relation_test.cc.o.d"
  "/root/repo/tests/db/schema_test.cc" "tests/CMakeFiles/db_test.dir/db/schema_test.cc.o" "gcc" "tests/CMakeFiles/db_test.dir/db/schema_test.cc.o.d"
  "/root/repo/tests/db/signature_test.cc" "tests/CMakeFiles/db_test.dir/db/signature_test.cc.o" "gcc" "tests/CMakeFiles/db_test.dir/db/signature_test.cc.o.d"
  "/root/repo/tests/db/value_test.cc" "tests/CMakeFiles/db_test.dir/db/value_test.cc.o" "gcc" "tests/CMakeFiles/db_test.dir/db/value_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppref.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
