file(REMOVE_RECURSE
  "CMakeFiles/infer_basics_test.dir/infer/aggregates_test.cc.o"
  "CMakeFiles/infer_basics_test.dir/infer/aggregates_test.cc.o.d"
  "CMakeFiles/infer_basics_test.dir/infer/labeling_test.cc.o"
  "CMakeFiles/infer_basics_test.dir/infer/labeling_test.cc.o.d"
  "CMakeFiles/infer_basics_test.dir/infer/linear_extensions_test.cc.o"
  "CMakeFiles/infer_basics_test.dir/infer/linear_extensions_test.cc.o.d"
  "CMakeFiles/infer_basics_test.dir/infer/marginals_test.cc.o"
  "CMakeFiles/infer_basics_test.dir/infer/marginals_test.cc.o.d"
  "CMakeFiles/infer_basics_test.dir/infer/matching_test.cc.o"
  "CMakeFiles/infer_basics_test.dir/infer/matching_test.cc.o.d"
  "CMakeFiles/infer_basics_test.dir/infer/pattern_test.cc.o"
  "CMakeFiles/infer_basics_test.dir/infer/pattern_test.cc.o.d"
  "infer_basics_test"
  "infer_basics_test.pdb"
  "infer_basics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infer_basics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
