
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/infer/aggregates_test.cc" "tests/CMakeFiles/infer_basics_test.dir/infer/aggregates_test.cc.o" "gcc" "tests/CMakeFiles/infer_basics_test.dir/infer/aggregates_test.cc.o.d"
  "/root/repo/tests/infer/labeling_test.cc" "tests/CMakeFiles/infer_basics_test.dir/infer/labeling_test.cc.o" "gcc" "tests/CMakeFiles/infer_basics_test.dir/infer/labeling_test.cc.o.d"
  "/root/repo/tests/infer/linear_extensions_test.cc" "tests/CMakeFiles/infer_basics_test.dir/infer/linear_extensions_test.cc.o" "gcc" "tests/CMakeFiles/infer_basics_test.dir/infer/linear_extensions_test.cc.o.d"
  "/root/repo/tests/infer/marginals_test.cc" "tests/CMakeFiles/infer_basics_test.dir/infer/marginals_test.cc.o" "gcc" "tests/CMakeFiles/infer_basics_test.dir/infer/marginals_test.cc.o.d"
  "/root/repo/tests/infer/matching_test.cc" "tests/CMakeFiles/infer_basics_test.dir/infer/matching_test.cc.o" "gcc" "tests/CMakeFiles/infer_basics_test.dir/infer/matching_test.cc.o.d"
  "/root/repo/tests/infer/pattern_test.cc" "tests/CMakeFiles/infer_basics_test.dir/infer/pattern_test.cc.o" "gcc" "tests/CMakeFiles/infer_basics_test.dir/infer/pattern_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppref.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
