# Empty dependencies file for infer_basics_test.
# This may be replaced when dependencies are built.
