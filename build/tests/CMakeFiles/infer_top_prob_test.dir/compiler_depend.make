# Empty compiler generated dependencies file for infer_top_prob_test.
# This may be replaced when dependencies are built.
