file(REMOVE_RECURSE
  "CMakeFiles/infer_top_prob_test.dir/infer/monte_carlo_test.cc.o"
  "CMakeFiles/infer_top_prob_test.dir/infer/monte_carlo_test.cc.o.d"
  "CMakeFiles/infer_top_prob_test.dir/infer/top_prob_minmax_test.cc.o"
  "CMakeFiles/infer_top_prob_test.dir/infer/top_prob_minmax_test.cc.o.d"
  "CMakeFiles/infer_top_prob_test.dir/infer/top_prob_test.cc.o"
  "CMakeFiles/infer_top_prob_test.dir/infer/top_prob_test.cc.o.d"
  "infer_top_prob_test"
  "infer_top_prob_test.pdb"
  "infer_top_prob_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infer_top_prob_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
