# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/rim_test[1]_include.cmake")
include("/root/repo/build/tests/infer_basics_test[1]_include.cmake")
include("/root/repo/build/tests/infer_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/infer_top_prob_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/ppd_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/fit_test[1]_include.cmake")
include("/root/repo/build/tests/shell_test[1]_include.cmake")
