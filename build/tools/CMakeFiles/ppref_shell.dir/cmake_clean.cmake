file(REMOVE_RECURSE
  "CMakeFiles/ppref_shell.dir/ppref_shell.cc.o"
  "CMakeFiles/ppref_shell.dir/ppref_shell.cc.o.d"
  "ppref_shell"
  "ppref_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppref_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
