# Empty compiler generated dependencies file for ppref_shell.
# This may be replaced when dependencies are built.
